"""Deterministic fault injection for the simulated network (the chaos plane).

The E3 resilience experiment models failure as a single global i.i.d.
``loss_rate`` plus binary online/offline peers.  Production failure is
richer: lossy *links*, gray-failing peers that answer errors, stragglers
that answer slowly, partitions that open and close, and publishers that
die halfway through a multi-step publish.  This module provides those as
composable **fault rules** evaluated inside the network's send path.

Determinism contract
--------------------
* Every probabilistic rule draws from the plane's own forked RNG stream
  (``simulator.fork_rng("faults")``), so installing or removing rules
  never perturbs the latency/loss streams the rest of the simulation
  consumes — and two runs at the same seed see the identical fault
  schedule.
* A plane with no rules is inert: zero RNG draws, zero clock charges,
  zero per-message overhead beyond one ``bool`` check in the network.
* The plane keeps a rolling SHA-256 digest of every injected fault
  (time, verdict, endpoints, message type).  ``schedule_digest()`` is the
  cheap way for a benchmark to assert "same seed → same fault schedule".

Rules are consulted in insertion order and the first verdict wins, so a
counting rule (:class:`CrashWindow`) should be installed before any
probabilistic ones it must observe through.

Verdicts
--------
``BLOCK``
    The destination is unreachable (crash window, partition window).  The
    network raises :class:`~repro.errors.NodeUnreachableError` without
    charging the clock — mirroring how an offline peer fails today.
``DROP``
    The message is lost in flight.  The network charges the drop cost
    (the configured ``rpc_timeout``, or a sampled round trip) and raises
    :class:`~repro.errors.NetworkError`.
``FLAKY``
    The destination answers, but with an error response: a full round
    trip is charged and the caller sees a non-ok :class:`Response`.
    This is the gray-failure mode a liveness oracle cannot see.

Latency inflation (:class:`Straggler`) is not a verdict: matching rules
multiply each sampled one-way latency instead, which slows a peer down
without consuming any extra randomness.
"""

from __future__ import annotations

import hashlib
import math
import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (network imports us)
    from repro.net.message import Message
    from repro.sim.simulator import Simulator

# Verdict constants — what FaultPlane.intercept may return.
BLOCK = "block"
DROP = "drop"
FLAKY = "flaky"


def _matches(pattern: Optional[str], address: str) -> bool:
    """``None`` matches everything; otherwise exact match or address prefix.

    Prefix matching is what lets one rule cover all of a peer's planes:
    the pattern ``"peer-003"`` matches both ``peer-003:dht`` and
    ``peer-003:store``.
    """
    if pattern is None:
        return True
    return address == pattern or address.startswith(pattern)


class FaultRule:
    """Base class for fault rules; subclasses override one of two hooks.

    ``intercept`` may return a verdict (:data:`BLOCK` / :data:`DROP` /
    :data:`FLAKY`) or ``None`` to pass; ``latency_factor`` returns a
    multiplier applied to each sampled one-way latency.
    """

    def intercept(
        self, message: "Message", now: float, rng: random.Random
    ) -> Optional[str]:
        return None

    def latency_factor(self, src: str, dst: str, now: float) -> float:
        return 1.0

    def describe(self) -> str:
        return type(self).__name__


@dataclass
class LinkLoss(FaultRule):
    """Drop messages on a (src, dst) link with the given probability.

    Either endpoint may be ``None`` (wildcard) or an address prefix, so
    this expresses global loss, per-peer ingress loss, and single-link
    loss with one rule type.
    """

    probability: float
    src: Optional[str] = None
    dst: Optional[str] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"loss probability must be in [0, 1], got {self.probability!r}")

    def intercept(self, message, now, rng):
        if not _matches(self.src, message.sender) or not _matches(self.dst, message.recipient):
            return None
        if rng.random() < self.probability:
            return DROP
        return None


@dataclass
class PeerLoss(FaultRule):
    """Drop messages touching one peer (as sender *or* recipient)."""

    peer: str
    probability: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"loss probability must be in [0, 1], got {self.probability!r}")

    def intercept(self, message, now, rng):
        if not (_matches(self.peer, message.sender) or _matches(self.peer, message.recipient)):
            return None
        if rng.random() < self.probability:
            return DROP
        return None


@dataclass
class Straggler(FaultRule):
    """Inflate the latency of messages touching one peer during a window.

    Models a slow disk / overloaded box / gray-failing NIC: the peer
    still answers correctly, just ``factor`` times slower.  No RNG is
    consumed — the inflation multiplies the latencies the network would
    have sampled anyway.
    """

    peer: str
    factor: float
    start: float = 0.0
    end: float = math.inf

    def __post_init__(self) -> None:
        if self.factor < 1.0:
            raise ValueError(f"straggler factor must be >= 1, got {self.factor!r}")

    def latency_factor(self, src, dst, now):
        if not self.start <= now < self.end:
            return 1.0
        if _matches(self.peer, src) or _matches(self.peer, dst):
            return self.factor
        return 1.0


@dataclass
class FlakyPeer(FaultRule):
    """Make a peer answer with error responses at the given probability.

    The caller pays a full round trip and gets a non-ok response: the
    gray failure a global liveness oracle reports as "online".
    """

    peer: str
    probability: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"flaky probability must be in [0, 1], got {self.probability!r}")

    def intercept(self, message, now, rng):
        if not _matches(self.peer, message.recipient):
            return None
        if rng.random() < self.probability:
            return FLAKY
        return None


@dataclass
class PartitionWindow(FaultRule):
    """Block cross-group messages during ``[start, end)``.

    Group members may be full addresses or peer prefixes.  Semantics
    mirror :meth:`SimulatedNetwork.partition`: addresses not in any group
    form their own implicit side and cannot reach the named groups.
    Because the window is evaluated per message against the simulated
    clock, it needs no event-queue processing to open or close — it works
    even on the query-driven clock where no events run.  (A partition
    that must also stop *gossip* rounds goes through the network's real
    ``partition()`` instead, which :meth:`GossipPlane.run_round` honours.)
    """

    groups: Sequence[Sequence[str]]
    start: float = 0.0
    end: float = math.inf

    def _group_of(self, address: str) -> int:
        for index, group in enumerate(self.groups):
            for member in group:
                if _matches(member, address):
                    return index
        return -1

    def intercept(self, message, now, rng):
        if not self.start <= now < self.end:
            return None
        if self._group_of(message.sender) != self._group_of(message.recipient):
            return BLOCK
        return None


@dataclass
class CrashWindow(FaultRule):
    """Let ``after_sends`` matching messages through, then block everything.

    Models a node dying mid-operation — most importantly a publisher
    dying halfway through ``publish_term``'s multi-step write sequence.
    The countdown is over *messages observed*, not probability, so a
    benchmark can sweep the crash point deterministically.  ``heal()``
    restores connectivity (the node came back).
    """

    after_sends: int
    src: Optional[str] = None

    sends_seen: int = field(default=0, init=False)
    healed: bool = field(default=False, init=False)

    def __post_init__(self) -> None:
        if self.after_sends < 0:
            raise ValueError(f"after_sends must be >= 0, got {self.after_sends!r}")

    @property
    def tripped(self) -> bool:
        return not self.healed and self.sends_seen >= self.after_sends

    def heal(self) -> None:
        self.healed = True

    def intercept(self, message, now, rng):
        if self.healed or not _matches(self.src, message.sender):
            return None
        if self.sends_seen >= self.after_sends:
            return BLOCK
        self.sends_seen += 1
        return None


@dataclass
class FaultStats:
    """Counters over every fault the plane injected."""

    blocked: int = 0
    dropped: int = 0
    flaky: int = 0

    @property
    def injected(self) -> int:
        return self.blocked + self.dropped + self.flaky

    def reset(self) -> None:
        self.blocked = 0
        self.dropped = 0
        self.flaky = 0


class FaultPlane:
    """The rule registry the network consults on every send (when active).

    Created lazily by :attr:`SimulatedNetwork.faults`; a never-touched
    network carries no plane at all, and an empty plane short-circuits
    before any rule evaluation, so the happy path stays bit-identical.
    """

    def __init__(self, simulator: "Simulator") -> None:
        self.simulator = simulator
        self.rules: List[FaultRule] = []
        self.stats = FaultStats()
        self._rng = simulator.fork_rng("faults")
        self._schedule = hashlib.sha256()

    @property
    def active(self) -> bool:
        return bool(self.rules)

    def add(self, rule: FaultRule) -> FaultRule:
        """Install ``rule`` (consulted after any already-installed rules)."""
        self.rules.append(rule)
        return rule

    def extend(self, rules: Sequence[FaultRule]) -> None:
        for rule in rules:
            self.add(rule)

    def remove(self, rule: FaultRule) -> None:
        self.rules.remove(rule)

    def clear(self) -> None:
        """Remove every rule (the schedule digest keeps accumulating)."""
        self.rules.clear()

    # -- the two hooks the network calls ------------------------------------

    def intercept(self, message: "Message") -> Optional[str]:
        """First verdict from the rule list, or ``None`` to deliver."""
        now = self.simulator.now
        for rule in self.rules:
            verdict = rule.intercept(message, now, self._rng)
            if verdict is None:
                continue
            if verdict == BLOCK:
                self.stats.blocked += 1
            elif verdict == DROP:
                self.stats.dropped += 1
            else:
                self.stats.flaky += 1
            self._schedule.update(
                f"{now:.6f}|{verdict}|{message.sender}|{message.recipient}|{message.msg_type}\n".encode("utf-8")
            )
            return verdict
        return None

    def latency_factor(self, src: str, dst: str) -> float:
        """Product of every matching rule's inflation for this link."""
        now = self.simulator.now
        factor = 1.0
        for rule in self.rules:
            factor *= rule.latency_factor(src, dst, now)
        return factor

    # -- reproducibility ------------------------------------------------------

    def schedule_digest(self) -> str:
        """SHA-256 over every injected fault so far; equal digests at the
        same seed prove the fault schedule reproduced exactly."""
        return self._schedule.hexdigest()

    def __repr__(self) -> str:
        return f"FaultPlane(rules={len(self.rules)}, injected={self.stats.injected})"
