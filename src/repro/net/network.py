"""The simulated peer-to-peer message layer.

Every distributed component (DHT nodes, storage peers, worker bees, the
centralized baseline's single server) registers a handler under a string
address.  RPCs are synchronous calls that advance the simulated clock by the
round-trip latency, so end-to-end operation latency falls out of the clock
rather than being estimated separately.

Resilience machinery (all inert by default, so the happy path is
bit-identical to the pre-resilience network):

* a :class:`~repro.net.faults.FaultPlane` (created lazily via
  :attr:`SimulatedNetwork.faults`) injects deterministic link loss, gray
  failures, stragglers, partitions, and crash windows into the send path;
* ``rpc_timeout`` makes lost-RPC time accounting uniform — both
  :meth:`rpc` and :meth:`rpc_parallel` charge the configured timeout on a
  drop instead of a sampled round trip;
* :class:`RetryPolicy` + :meth:`request_with_retry` add bounded retries
  with exponential backoff, deterministic jitter, and a per-operation
  deadline budget;
* :meth:`rpc_hedged` duplicates a tail-latency-critical read across
  providers and charges the clock only the winner's round trip;
* an attached :class:`~repro.net.detector.FailureDetector` is fed the
  transport outcome of every RPC, giving routing code a *local* liveness
  estimate instead of the global :meth:`is_online` oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import (
    NetworkError,
    NodeUnreachableError,
    RequestTimeoutError,
    RetriesExhaustedError,
)
from repro.net.detector import FailureDetector
from repro.net.faults import BLOCK, DROP, FLAKY, FaultPlane
from repro.net.latency import ConstantLatency, LatencyModel
from repro.net.message import Message, Response
from repro.sim.simulator import Simulator

Handler = Callable[[Message], Response]


@dataclass
class NetworkStats:
    """Aggregate traffic counters, reset per experiment phase as needed."""

    messages_sent: int = 0
    messages_dropped: int = 0
    bytes_sent: int = 0
    rpc_count: int = 0
    retries: int = 0
    hedges: int = 0
    per_type: Dict[str, int] = field(default_factory=dict)

    def record(self, message: Message, response: Optional[Response]) -> None:
        self.messages_sent += 1
        self.rpc_count += 1
        self.bytes_sent += message.size_bytes
        if response is not None:
            self.bytes_sent += response.size_bytes
        self.per_type[message.msg_type] = self.per_type.get(message.msg_type, 0) + 1

    def record_drop(self, message: Message) -> None:
        self.messages_dropped += 1
        self.per_type[message.msg_type] = self.per_type.get(message.msg_type, 0) + 1

    def reset(self) -> None:
        self.messages_sent = 0
        self.messages_dropped = 0
        self.bytes_sent = 0
        self.rpc_count = 0
        self.retries = 0
        self.hedges = 0
        self.per_type.clear()


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and deterministic jitter.

    The default policy (one attempt, no backoff, no deadline) makes
    :meth:`SimulatedNetwork.request_with_retry` behave exactly like a
    plain :meth:`~SimulatedNetwork.rpc` call — resilience is opt-in.

    Parameters
    ----------
    attempts:
        Total attempts (first try included); ``1`` means no retry.
    backoff_base:
        Ticks waited before the second attempt; each further attempt
        doubles it (``backoff_base * 2**(attempt-1)``).  ``0`` retries
        immediately.
    jitter:
        Fraction of the backoff randomized (``±jitter``), drawn from the
        network's dedicated retry RNG stream so jitter never perturbs the
        latency/loss streams.
    deadline:
        Per-operation budget in ticks; once the clock has advanced past
        it no further attempt is made and
        :class:`~repro.errors.RequestTimeoutError` is raised.  ``0``
        disables the budget.
    """

    attempts: int = 1
    backoff_base: float = 0.0
    jitter: float = 0.0
    deadline: float = 0.0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts!r}")
        if self.backoff_base < 0:
            raise ValueError(f"backoff_base must be >= 0, got {self.backoff_base!r}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter!r}")
        if self.deadline < 0:
            raise ValueError(f"deadline must be >= 0, got {self.deadline!r}")

    def backoff_delay(self, attempt: int, rng) -> float:
        """Backoff before ``attempt`` (attempt 1 is the first retry)."""
        if self.backoff_base <= 0:
            return 0.0
        delay = self.backoff_base * (2.0 ** (attempt - 1))
        if self.jitter > 0:
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return delay


class SimulatedNetwork:
    """A registry of peers plus the fault model connecting them.

    Parameters
    ----------
    simulator:
        Owns the clock advanced by each RPC and the RNG used for loss and
        latency sampling.
    latency:
        One-way delay model; defaults to a constant 20 ticks.
    loss_rate:
        Probability that any individual RPC is dropped (raises
        :class:`NetworkError`).
    rpc_timeout:
        When set, a dropped RPC charges exactly this many ticks — on both
        the single and the parallel path — instead of a sampled round
        trip.  ``None`` keeps the legacy sampled-round-trip accounting.
    detector:
        Optional :class:`FailureDetector` fed the transport outcome of
        every RPC this network delivers or fails to deliver.
    """

    def __init__(
        self,
        simulator: Simulator,
        latency: Optional[LatencyModel] = None,
        loss_rate: float = 0.0,
        rpc_timeout: Optional[float] = None,
        detector: Optional[FailureDetector] = None,
    ) -> None:
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {loss_rate!r}")
        if rpc_timeout is not None and rpc_timeout <= 0:
            raise ValueError(f"rpc_timeout must be positive, got {rpc_timeout!r}")
        self.simulator = simulator
        self.latency = latency or ConstantLatency()
        self.loss_rate = loss_rate
        self.rpc_timeout = rpc_timeout
        self.detector = detector
        self.retry_policy = RetryPolicy()
        self.stats = NetworkStats()
        self._handlers: Dict[str, Handler] = {}
        self._online: Set[str] = set()
        self._partition_of: Dict[str, int] = {}
        self._rng = simulator.fork_rng("network")
        self._retry_rng = simulator.fork_rng("network-retry")
        self._faults: Optional[FaultPlane] = None

    # -- fault plane ---------------------------------------------------------

    @property
    def faults(self) -> FaultPlane:
        """The fault-injection plane, created on first access.

        A network whose ``faults`` property is never touched carries no
        plane at all; an empty plane is inert (no RNG draws, no clock
        charges), so merely accessing this does not change behaviour.
        """
        if self._faults is None:
            self._faults = FaultPlane(self.simulator)
        return self._faults

    def _active_faults(self) -> Optional[FaultPlane]:
        if self._faults is not None and self._faults.active:
            return self._faults
        return None

    # -- membership ---------------------------------------------------------

    def register(self, address: str, handler: Handler) -> None:
        """Attach ``handler`` to ``address`` and bring the peer online."""
        self._handlers[address] = handler
        self._online.add(address)

    def unregister(self, address: str) -> None:
        """Remove a peer entirely (it stops being addressable)."""
        self._handlers.pop(address, None)
        self._online.discard(address)
        self._partition_of.pop(address, None)

    def addresses(self) -> List[str]:
        """All registered addresses, online or not."""
        return sorted(self._handlers)

    def online_addresses(self) -> List[str]:
        """Addresses currently online."""
        return sorted(self._online)

    def is_online(self, address: str) -> bool:
        return address in self._online

    def set_offline(self, address: str) -> None:
        """Simulate a crash or a DDoS-induced outage of one peer."""
        self._online.discard(address)

    def set_online(self, address: str) -> None:
        if address not in self._handlers:
            raise NetworkError(f"cannot bring unknown address {address!r} online")
        self._online.add(address)

    # -- partitions ---------------------------------------------------------

    def partition(self, groups: Sequence[Iterable[str]]) -> None:
        """Split the network: peers may only reach peers in their own group.

        Addresses not mentioned in any group keep full connectivity with each
        other but cannot reach any partitioned group.
        """
        self._partition_of.clear()
        for group_index, group in enumerate(groups):
            for address in group:
                self._partition_of[address] = group_index

    def heal_partition(self) -> None:
        """Restore full connectivity."""
        self._partition_of.clear()

    def can_reach(self, src: str, dst: str) -> bool:
        """Whether a message from ``src`` could currently reach ``dst``
        (destination registered, online, and on the same partition side).

        This is *topology* ground truth, which a real node does observe —
        its own links either work or they don't — unlike the per-peer
        liveness oracle :meth:`is_online` routing code must avoid.  The
        gossip plane uses it so partitions actually stop gossip exchange.
        """
        return self._can_reach(src, dst)

    def _can_reach(self, src: str, dst: str) -> bool:
        if dst not in self._online or dst not in self._handlers:
            return False
        if not self._partition_of:
            return True
        src_group = self._partition_of.get(src, -1)
        dst_group = self._partition_of.get(dst, -1)
        return src_group == dst_group

    # -- detector feed -------------------------------------------------------

    def _note_success(self, address: str) -> None:
        if self.detector is not None:
            self.detector.record_success(address)

    def _note_failure(self, address: str) -> None:
        if self.detector is not None:
            self.detector.record_failure(address)

    # -- RPC ----------------------------------------------------------------

    def _drop_cost(self, src: str, dst: str) -> float:
        """Ticks a lost request costs the sender.

        With ``rpc_timeout`` configured this is the timeout — uniform
        across the single and parallel paths; without it, the legacy
        sampled round trip (kept for bit-compatibility at default config).
        """
        if self.rpc_timeout is not None:
            return self.rpc_timeout
        return self.latency.sample(self._rng, src, dst) * 2

    def rpc(self, src: str, dst: str, msg_type: str, payload: Optional[dict] = None) -> Response:
        """Send a request and wait for the reply, charging round-trip latency.

        Raises :class:`NodeUnreachableError` if the destination is offline or
        partitioned away, and :class:`NetworkError` if the message is lost.
        """
        message = Message(sender=src, recipient=dst, msg_type=msg_type, payload=payload or {})
        if not self._can_reach(src, dst):
            self.stats.record_drop(message)
            self._note_failure(dst)
            raise NodeUnreachableError(f"{dst!r} is unreachable from {src!r}")
        plane = self._active_faults()
        verdict = plane.intercept(message) if plane is not None else None
        if verdict == BLOCK:
            self.stats.record_drop(message)
            self._note_failure(dst)
            raise NodeUnreachableError(
                f"{dst!r} is unreachable from {src!r} (injected fault)"
            )
        if verdict == DROP or (self.loss_rate and self._rng.random() < self.loss_rate):
            self.stats.record_drop(message)
            # A lost request still costs the sender a timeout's worth of waiting.
            self.simulator.clock.advance(self._drop_cost(src, dst))
            self._note_failure(dst)
            raise NetworkError(f"message {msg_type!r} from {src!r} to {dst!r} was lost")
        factor = plane.latency_factor(src, dst) if plane is not None else 1.0
        one_way = self.latency.sample(self._rng, src, dst) * factor
        self.simulator.clock.advance(one_way)
        if verdict == FLAKY:
            response = Response.failure(dst, msg_type, "injected fault: flaky responder")
        else:
            handler = self._handlers[dst]
            response = handler(message)
        self.simulator.clock.advance(self.latency.sample(self._rng, dst, src) * factor)
        self.stats.record(message, response)
        if verdict == FLAKY:
            # A gray failure: the peer "answered", but uselessly — that is a
            # failure observation (an app-level error from a real handler is
            # not; it proves the peer alive).
            self._note_failure(dst)
        else:
            self._note_success(dst)
        return response

    def request_with_retry(
        self,
        src: str,
        dst: str,
        msg_type: str,
        payload: Optional[dict] = None,
        policy: Optional[RetryPolicy] = None,
    ) -> Response:
        """An :meth:`rpc` with bounded retries under ``policy``.

        Transport failures (unreachable, lost) *and* non-ok responses are
        retried — a client cannot tell an injected gray failure from a real
        error, so it retries both.  Backoff advances the simulated clock;
        jitter draws from the dedicated retry RNG stream.  On exhaustion
        the last non-ok response is returned if any attempt got through,
        otherwise :class:`~repro.errors.RetriesExhaustedError` is raised;
        blowing the deadline raises :class:`~repro.errors.RequestTimeoutError`.

        With the default policy (or ``attempts=1`` and no deadline) this
        *is* :meth:`rpc` — same draws, same charges, same exceptions.
        """
        policy = policy if policy is not None else self.retry_policy
        if policy.attempts <= 1 and policy.deadline <= 0:
            return self.rpc(src, dst, msg_type, payload)
        deadline = (
            self.simulator.now + policy.deadline if policy.deadline > 0 else None
        )
        last_error: Optional[NetworkError] = None
        last_response: Optional[Response] = None
        for attempt in range(policy.attempts):
            if attempt > 0:
                delay = policy.backoff_delay(attempt, self._retry_rng)
                if delay > 0:
                    self.simulator.clock.advance(delay)
                if deadline is not None and self.simulator.now >= deadline:
                    raise RequestTimeoutError(
                        f"{msg_type!r} from {src!r} to {dst!r} blew its "
                        f"{policy.deadline}-tick deadline after {attempt} attempt(s)"
                    )
                self.stats.retries += 1
            try:
                response = self.rpc(src, dst, msg_type, payload)
            except NetworkError as exc:
                last_error = exc
                continue
            if response.ok:
                return response
            last_response = response
        if last_response is not None:
            return last_response
        raise RetriesExhaustedError(
            f"{msg_type!r} from {src!r} to {dst!r} failed all "
            f"{policy.attempts} attempt(s): {last_error}"
        ) from last_error

    def rpc_parallel(
        self,
        src: str,
        requests: Sequence[Tuple[str, str, dict]],
    ) -> List[Optional[Response]]:
        """Issue several RPCs "in parallel": the clock advances by the slowest
        round trip instead of the sum.

        ``requests`` is a sequence of ``(dst, msg_type, payload)``.  Failed
        requests yield ``None`` in the result list rather than raising, since
        parallel fan-outs (Kademlia's alpha lookups, block fetches) tolerate
        individual failures.
        """
        start = self.simulator.now
        plane = self._active_faults()
        results: List[Optional[Response]] = []
        slowest = 0.0
        for dst, msg_type, payload in requests:
            message = Message(sender=src, recipient=dst, msg_type=msg_type, payload=payload or {})
            if not self._can_reach(src, dst):
                self.stats.record_drop(message)
                self._note_failure(dst)
                results.append(None)
                continue
            verdict = plane.intercept(message) if plane is not None else None
            if verdict == BLOCK:
                self.stats.record_drop(message)
                self._note_failure(dst)
                results.append(None)
                continue
            if verdict == DROP or (self.loss_rate and self._rng.random() < self.loss_rate):
                self.stats.record_drop(message)
                results.append(None)
                slowest = max(slowest, self._drop_cost(src, dst))
                self._note_failure(dst)
                continue
            factor = plane.latency_factor(src, dst) if plane is not None else 1.0
            round_trip = (
                self.latency.sample(self._rng, src, dst)
                + self.latency.sample(self._rng, dst, src)
            ) * factor
            if verdict == FLAKY:
                response = Response.failure(dst, msg_type, "injected fault: flaky responder")
                self.stats.record(message, response)
                results.append(None)
                slowest = max(slowest, round_trip)
                self._note_failure(dst)
                continue
            handler = self._handlers[dst]
            response = handler(message)
            self.stats.record(message, response)
            results.append(response)
            slowest = max(slowest, round_trip)
            self._note_success(dst)
        self.simulator.clock.advance_to(start + slowest)
        return results

    def rpc_hedged(
        self,
        src: str,
        requests: Sequence[Tuple[str, str, dict]],
    ) -> Tuple[Optional[int], Optional[Response]]:
        """Send duplicate requests, keep the fastest useful answer.

        The tail-latency hedge: all requests are really sent (every one is
        counted in :class:`NetworkStats` and every reachable handler runs,
        so provider load counters reflect the duplicate work), but the
        clock advances only by the *winning* round trip — the client acts
        on the first ok response and abandons the rest in flight.  If no
        request succeeds the clock advances by the slowest failure (the
        client waited for all of them before giving up) and the fastest
        non-ok response, if any, is returned for diagnostics.

        Returns ``(index, response)`` of the winner, or ``(None, None)``
        when nothing came back at all.
        """
        start = self.simulator.now
        plane = self._active_faults()
        if len(requests) > 1:
            self.stats.hedges += len(requests) - 1
        best: Optional[Tuple[float, int, Response]] = None
        fallback: Optional[Tuple[float, int, Response]] = None
        slowest_failure = 0.0
        for index, (dst, msg_type, payload) in enumerate(requests):
            message = Message(sender=src, recipient=dst, msg_type=msg_type, payload=payload or {})
            if not self._can_reach(src, dst):
                self.stats.record_drop(message)
                self._note_failure(dst)
                continue
            verdict = plane.intercept(message) if plane is not None else None
            if verdict == BLOCK:
                self.stats.record_drop(message)
                self._note_failure(dst)
                continue
            if verdict == DROP or (self.loss_rate and self._rng.random() < self.loss_rate):
                self.stats.record_drop(message)
                slowest_failure = max(slowest_failure, self._drop_cost(src, dst))
                self._note_failure(dst)
                continue
            factor = plane.latency_factor(src, dst) if plane is not None else 1.0
            round_trip = (
                self.latency.sample(self._rng, src, dst)
                + self.latency.sample(self._rng, dst, src)
            ) * factor
            if verdict == FLAKY:
                response = Response.failure(dst, msg_type, "injected fault: flaky responder")
                self._note_failure(dst)
            else:
                handler = self._handlers[dst]
                response = handler(message)
                self._note_success(dst)
            self.stats.record(message, response)
            if response.ok:
                if best is None or round_trip < best[0]:
                    best = (round_trip, index, response)
            else:
                slowest_failure = max(slowest_failure, round_trip)
                if fallback is None or round_trip < fallback[0]:
                    fallback = (round_trip, index, response)
        if best is not None:
            self.simulator.clock.advance_to(start + best[0])
            return best[1], best[2]
        self.simulator.clock.advance_to(start + slowest_failure)
        if fallback is not None:
            return fallback[1], fallback[2]
        return None, None

    def broadcast(self, src: str, msg_type: str, payload: Optional[dict] = None) -> int:
        """Best-effort delivery to every online peer except the sender.

        Returns the number of peers that received the message.  Used by the
        blockchain substrate to announce new blocks.
        """
        delivered = 0
        requests = [
            (dst, msg_type, dict(payload or {}))
            for dst in self.online_addresses()
            if dst != src
        ]
        for response in self.rpc_parallel(src, requests):
            if response is not None and response.ok:
                delivered += 1
        return delivered
