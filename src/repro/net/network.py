"""The simulated peer-to-peer message layer.

Every distributed component (DHT nodes, storage peers, worker bees, the
centralized baseline's single server) registers a handler under a string
address.  RPCs are synchronous calls that advance the simulated clock by the
round-trip latency, so end-to-end operation latency falls out of the clock
rather than being estimated separately.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import NetworkError, NodeUnreachableError
from repro.net.latency import ConstantLatency, LatencyModel
from repro.net.message import Message, Response
from repro.sim.simulator import Simulator

Handler = Callable[[Message], Response]


@dataclass
class NetworkStats:
    """Aggregate traffic counters, reset per experiment phase as needed."""

    messages_sent: int = 0
    messages_dropped: int = 0
    bytes_sent: int = 0
    rpc_count: int = 0
    per_type: Dict[str, int] = field(default_factory=dict)

    def record(self, message: Message, response: Optional[Response]) -> None:
        self.messages_sent += 1
        self.rpc_count += 1
        self.bytes_sent += message.size_bytes
        if response is not None:
            self.bytes_sent += response.size_bytes
        self.per_type[message.msg_type] = self.per_type.get(message.msg_type, 0) + 1

    def record_drop(self, message: Message) -> None:
        self.messages_dropped += 1
        self.per_type[message.msg_type] = self.per_type.get(message.msg_type, 0) + 1

    def reset(self) -> None:
        self.messages_sent = 0
        self.messages_dropped = 0
        self.bytes_sent = 0
        self.rpc_count = 0
        self.per_type.clear()


class SimulatedNetwork:
    """A registry of peers plus the fault model connecting them.

    Parameters
    ----------
    simulator:
        Owns the clock advanced by each RPC and the RNG used for loss and
        latency sampling.
    latency:
        One-way delay model; defaults to a constant 20 ticks.
    loss_rate:
        Probability that any individual RPC is dropped (raises
        :class:`NetworkError`).
    """

    def __init__(
        self,
        simulator: Simulator,
        latency: Optional[LatencyModel] = None,
        loss_rate: float = 0.0,
    ) -> None:
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {loss_rate!r}")
        self.simulator = simulator
        self.latency = latency or ConstantLatency()
        self.loss_rate = loss_rate
        self.stats = NetworkStats()
        self._handlers: Dict[str, Handler] = {}
        self._online: Set[str] = set()
        self._partition_of: Dict[str, int] = {}
        self._rng = simulator.fork_rng("network")

    # -- membership ---------------------------------------------------------

    def register(self, address: str, handler: Handler) -> None:
        """Attach ``handler`` to ``address`` and bring the peer online."""
        self._handlers[address] = handler
        self._online.add(address)

    def unregister(self, address: str) -> None:
        """Remove a peer entirely (it stops being addressable)."""
        self._handlers.pop(address, None)
        self._online.discard(address)
        self._partition_of.pop(address, None)

    def addresses(self) -> List[str]:
        """All registered addresses, online or not."""
        return sorted(self._handlers)

    def online_addresses(self) -> List[str]:
        """Addresses currently online."""
        return sorted(self._online)

    def is_online(self, address: str) -> bool:
        return address in self._online

    def set_offline(self, address: str) -> None:
        """Simulate a crash or a DDoS-induced outage of one peer."""
        self._online.discard(address)

    def set_online(self, address: str) -> None:
        if address not in self._handlers:
            raise NetworkError(f"cannot bring unknown address {address!r} online")
        self._online.add(address)

    # -- partitions ---------------------------------------------------------

    def partition(self, groups: Sequence[Iterable[str]]) -> None:
        """Split the network: peers may only reach peers in their own group.

        Addresses not mentioned in any group keep full connectivity with each
        other but cannot reach any partitioned group.
        """
        self._partition_of.clear()
        for group_index, group in enumerate(groups):
            for address in group:
                self._partition_of[address] = group_index

    def heal_partition(self) -> None:
        """Restore full connectivity."""
        self._partition_of.clear()

    def _can_reach(self, src: str, dst: str) -> bool:
        if dst not in self._online or dst not in self._handlers:
            return False
        if not self._partition_of:
            return True
        src_group = self._partition_of.get(src, -1)
        dst_group = self._partition_of.get(dst, -1)
        return src_group == dst_group

    # -- RPC ----------------------------------------------------------------

    def rpc(self, src: str, dst: str, msg_type: str, payload: Optional[dict] = None) -> Response:
        """Send a request and wait for the reply, charging round-trip latency.

        Raises :class:`NodeUnreachableError` if the destination is offline or
        partitioned away, and :class:`NetworkError` if the message is lost.
        """
        message = Message(sender=src, recipient=dst, msg_type=msg_type, payload=payload or {})
        if not self._can_reach(src, dst):
            self.stats.record_drop(message)
            raise NodeUnreachableError(f"{dst!r} is unreachable from {src!r}")
        if self.loss_rate and self._rng.random() < self.loss_rate:
            self.stats.record_drop(message)
            # A lost request still costs the sender a timeout's worth of waiting.
            self.simulator.clock.advance(self.latency.sample(self._rng, src, dst) * 2)
            raise NetworkError(f"message {msg_type!r} from {src!r} to {dst!r} was lost")
        one_way = self.latency.sample(self._rng, src, dst)
        self.simulator.clock.advance(one_way)
        handler = self._handlers[dst]
        response = handler(message)
        self.simulator.clock.advance(self.latency.sample(self._rng, dst, src))
        self.stats.record(message, response)
        return response

    def rpc_parallel(
        self,
        src: str,
        requests: Sequence[Tuple[str, str, dict]],
    ) -> List[Optional[Response]]:
        """Issue several RPCs "in parallel": the clock advances by the slowest
        round trip instead of the sum.

        ``requests`` is a sequence of ``(dst, msg_type, payload)``.  Failed
        requests yield ``None`` in the result list rather than raising, since
        parallel fan-outs (Kademlia's alpha lookups, block fetches) tolerate
        individual failures.
        """
        start = self.simulator.now
        results: List[Optional[Response]] = []
        slowest = 0.0
        for dst, msg_type, payload in requests:
            message = Message(sender=src, recipient=dst, msg_type=msg_type, payload=payload or {})
            if not self._can_reach(src, dst):
                self.stats.record_drop(message)
                results.append(None)
                continue
            if self.loss_rate and self._rng.random() < self.loss_rate:
                self.stats.record_drop(message)
                results.append(None)
                slowest = max(slowest, self.latency.sample(self._rng, src, dst) * 2)
                continue
            round_trip = self.latency.sample(self._rng, src, dst) + self.latency.sample(
                self._rng, dst, src
            )
            handler = self._handlers[dst]
            response = handler(message)
            self.stats.record(message, response)
            results.append(response)
            slowest = max(slowest, round_trip)
        self.simulator.clock.advance_to(start + slowest)
        return results

    def broadcast(self, src: str, msg_type: str, payload: Optional[dict] = None) -> int:
        """Best-effort delivery to every online peer except the sender.

        Returns the number of peers that received the message.  Used by the
        blockchain substrate to announce new blocks.
        """
        delivered = 0
        requests = [
            (dst, msg_type, dict(payload or {}))
            for dst in self.online_addresses()
            if dst != src
        ]
        for response in self.rpc_parallel(src, requests):
            if response is not None and response.ok:
                delivered += 1
        return delivered
