"""Local failure detection from observed RPC outcomes.

``SimulatedNetwork.is_online`` is simulator ground truth — a global
liveness oracle no deployed peer possesses.  Routing decisions (which
replica to fetch a shard from, which providers to rank) must instead be
made from what a node can actually observe: whether its own RPCs to a
peer succeed or fail.  This module is that observation, distilled.

State machine (per peer)
------------------------
::

    ALIVE  --failure (suspicion += 1)-->  ALIVE        while suspicion < threshold
    ALIVE  --failure crosses threshold->  SUSPECTED
    SUSPECTED --probe_after ticks elapse-->  PROBATION  (is_alive answers True once
                                                         more so one request probes it)
    PROBATION --failure-->  SUSPECTED  (failure timestamp refreshed)
    any    --success (suspicion -= 1)-->  ... --> ALIVE  (decay-on-success)

Peers the detector has never heard about are presumed alive — on a
healthy network the detector is therefore indistinguishable from the
oracle, which is what keeps the happy-path experiments bit-identical.

The detector is deliberately *local and commutative*: updates are
counter increments/decrements, so feeding it from logically-parallel
branches of a ``parallel_region`` is order-insensitive and it needs no
shared-state instrumentation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.sim.simulator import Simulator


@dataclass
class DetectorStats:
    """Counters over everything the detector observed and decided."""

    successes: int = 0
    failures: int = 0
    suspicions_raised: int = 0
    probes_granted: int = 0

    def reset(self) -> None:
        self.successes = 0
        self.failures = 0
        self.suspicions_raised = 0
        self.probes_granted = 0


class FailureDetector:
    """Per-peer suspicion counters with decay-on-success and timed probes.

    Parameters
    ----------
    simulator:
        Supplies the clock for probe timing.
    suspicion_threshold:
        Consecutive-ish failures (net of decay) before a peer is avoided.
    probe_after:
        Ticks after the last observed failure at which a suspected peer is
        presumed alive again for one request, so recovery is discoverable
        without an oracle.  ``0`` disables probing (suspicion is then only
        cleared by successes observed through other paths).
    """

    def __init__(
        self,
        simulator: Simulator,
        suspicion_threshold: int = 3,
        probe_after: float = 2000.0,
    ) -> None:
        if suspicion_threshold < 1:
            raise ValueError(
                f"suspicion_threshold must be >= 1, got {suspicion_threshold!r}"
            )
        if probe_after < 0:
            raise ValueError(f"probe_after must be >= 0, got {probe_after!r}")
        self.simulator = simulator
        self.suspicion_threshold = suspicion_threshold
        self.probe_after = probe_after
        self.stats = DetectorStats()
        self._suspicion: Dict[str, int] = {}
        self._last_failure: Dict[str, float] = {}

    # -- observations ---------------------------------------------------------

    def record_success(self, address: str) -> None:
        """A transport-level success: the peer answered (even with an
        application error — an error response still proves liveness)."""
        self.stats.successes += 1
        suspicion = self._suspicion.get(address, 0)
        if suspicion <= 1:
            self._suspicion.pop(address, None)
            self._last_failure.pop(address, None)
        else:
            self._suspicion[address] = suspicion - 1

    def record_failure(self, address: str) -> None:
        """A transport-level failure: unreachable, lost, or injected-flaky."""
        self.stats.failures += 1
        suspicion = self._suspicion.get(address, 0) + 1
        self._suspicion[address] = suspicion
        self._last_failure[address] = self.simulator.now
        if suspicion == self.suspicion_threshold:
            self.stats.suspicions_raised += 1

    def forget(self, address: str) -> None:
        """Drop all state for a peer (it left the network)."""
        self._suspicion.pop(address, None)
        self._last_failure.pop(address, None)

    def reset(self) -> None:
        self._suspicion.clear()
        self._last_failure.clear()
        self.stats.reset()

    # -- verdicts -------------------------------------------------------------

    def is_alive(self, address: str) -> bool:
        """The routing verdict: unknown peers are presumed alive."""
        if self._suspicion.get(address, 0) < self.suspicion_threshold:
            return True
        if self.probe_after > 0:
            last = self._last_failure.get(address, 0.0)
            if self.simulator.now - last >= self.probe_after:
                self.stats.probes_granted += 1
                return True
        return False

    def suspicion_of(self, address: str) -> int:
        return self._suspicion.get(address, 0)

    def suspected(self) -> List[str]:
        """Currently-suspected peers (sorted for deterministic iteration)."""
        return sorted(
            address
            for address, suspicion in self._suspicion.items()
            if suspicion >= self.suspicion_threshold
        )

    def __repr__(self) -> str:
        return (
            f"FailureDetector(threshold={self.suspicion_threshold}, "
            f"suspected={len(self.suspected())})"
        )
