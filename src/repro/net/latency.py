"""Latency models for the simulated network.

One simulated tick is interpreted as one millisecond.  Models return the
one-way delay between a pair of peers; the network charges the delay twice
per RPC (request + response).
"""

from __future__ import annotations

import math
import random


class LatencyModel:
    """Base class: sample a one-way delay in ticks between two peers."""

    def sample(self, rng: random.Random, src: str, dst: str) -> float:
        raise NotImplementedError


class ConstantLatency(LatencyModel):
    """Every link has the same one-way delay."""

    def __init__(self, delay: float = 20.0) -> None:
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay!r}")
        self.delay = float(delay)

    def sample(self, rng: random.Random, src: str, dst: str) -> float:
        return self.delay


class UniformLatency(LatencyModel):
    """One-way delay drawn uniformly from ``[low, high]`` per message."""

    def __init__(self, low: float = 10.0, high: float = 60.0) -> None:
        if low < 0 or high < low:
            raise ValueError(f"invalid latency range [{low!r}, {high!r}]")
        self.low = float(low)
        self.high = float(high)

    def sample(self, rng: random.Random, src: str, dst: str) -> float:
        return rng.uniform(self.low, self.high)


class LogNormalLatency(LatencyModel):
    """Heavy-tailed delays, matching measured Internet RTT distributions.

    ``median`` is the median one-way delay; ``sigma`` controls tail weight.
    """

    def __init__(self, median: float = 25.0, sigma: float = 0.5, cap: float = 2000.0) -> None:
        if median <= 0:
            raise ValueError(f"median must be positive, got {median!r}")
        if sigma < 0:
            raise ValueError(f"sigma must be non-negative, got {sigma!r}")
        self.median = float(median)
        self.sigma = float(sigma)
        self.cap = float(cap)

    def sample(self, rng: random.Random, src: str, dst: str) -> float:
        mu = math.log(self.median)
        return min(rng.lognormvariate(mu, self.sigma), self.cap)
