"""The gossiped metadata plane: anti-entropy dissemination of soft state.

QueenBee's query path needs three pieces of *soft* metadata that are cheap
to be slightly stale about but expensive to fetch authoritatively on every
query: the per-term index-epoch feed (which generation of a term's shard
manifest is current), the pointer to the latest published rank vector, and
coarse per-peer serving-load hints used by replica routing.  In the shared
("idealized") metadata plane every frontend reads these straight off the
engine's in-process objects; this module is the deployment-faithful
alternative — peers hold per-node key/value stores and reconcile them with
periodic **anti-entropy push/pull gossip** over the simulated network, the
way YaCy-style peers and IPFS provider records propagate soft state.

Data model
----------
Every entry is a ``key -> (value, version)`` pair with a **monotonic
version**; reconciliation keeps, for each key, the entry with the highest
version.  Versions come from the publishing subsystem (term generation,
rank-vector version, quantized served-block count), so merges need no
clocks and entries can never regress: a node accepts an incoming entry only
when its version is strictly newer than what it holds.

Rounds
------
:meth:`GossipPlane.run_round` gives every online node ``fanout`` exchanges
with distinct random online peers.  An exchange is push/pull: both sides end
up with the union of their entries at the per-key max version.  Rounds are
normally scheduled as simulator events (``start()``; the engine drives this
from the ``metadata_plane="gossip"`` config) so propagation interleaves with
the workload; tests and benchmarks can also drive rounds synchronously via
:meth:`run_rounds` / :meth:`rounds_to_converge`.  A round's clock cost is
the slowest of its exchanges (they are logically concurrent), sampled from
the network's latency model; offline peers neither initiate nor receive.

Staleness and correctness
-------------------------
Gossip is *advisory*: the DHT record remains authoritative for every key
the plane mirrors.  Consumers use gossip to decide whether locally cached
state is still current (epoch feed), which replica to prefer (load hints),
or when to re-fetch a published artifact (rank head, statistics head).  A
lagging entry therefore costs extra fetches or looser pruning — never a
wrong answer (see the consuming modules for the per-key argument).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.net.network import SimulatedNetwork
from repro.sim import monitor as state_monitor
from repro.sim.simulator import Simulator

# Key layout of the plane (one flat namespace, prefix-typed).
EPOCH_PREFIX = "epoch:"
LOAD_PREFIX = "load:"
RANK_HEAD_KEY = "rank:head"
STATS_HEAD_KEY = "stats:head"
# Head of the banded rank-vector publication (value = the band manifest
# JSON, version = rank version).  The DHT copy under the same name stays
# authoritative; the gossiped manifest only saves the lookup round trip.
RANK_BANDS_KEY = "rank:bands"
# Per-term rank-version hint: ``rv:<term>`` carries (as a JSON value) the
# term generation plus the quantized per-shard rank ceilings stamped at the
# last rank publish, versioned by rank version — so a frontend's cached
# manifest refreshes its ceilings without an epoch bump or a manifest
# refetch.  A stale or missing hint only loosens pruning (ceilings are
# conservative by construction), never a wrong page.
RANK_CEILING_PREFIX = "rv:"

# Serving-load hints are deliberately coarse: routing only needs "roughly
# how busy", and a coarse bucket changes (and therefore re-gossips) orders
# of magnitude less often than the raw counter.
LOAD_HINT_RESOLUTION = 4


def quantize_load(count: int, resolution: int = LOAD_HINT_RESOLUTION) -> int:
    """Round a served-block counter down to the hint grid (monotonic)."""
    if count <= 0:
        return 0
    return count - count % resolution


@dataclass(frozen=True)
class GossipEntry:
    """One versioned fact: the unit of anti-entropy reconciliation."""

    key: str
    value: object
    version: int


@dataclass
class GossipStats:
    """Plane-wide counters for the convergence experiments (E3/E10)."""

    rounds: int = 0
    exchanges: int = 0
    messages: int = 0
    entries_sent: int = 0
    entries_accepted: int = 0
    # Rounds the most recent rounds_to_converge() call needed; -1 = never
    # measured (or did not converge within its budget).
    last_convergence_rounds: int = -1

    def reset(self) -> None:
        self.rounds = 0
        self.exchanges = 0
        self.messages = 0
        self.entries_sent = 0
        self.entries_accepted = 0
        self.last_convergence_rounds = -1


class GossipNode:
    """One peer's local store of versioned entries."""

    def __init__(self, address: str) -> None:
        self.address = address
        self._entries: Dict[str, GossipEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def _observe(self, key: str, entry: Optional[GossipEntry]) -> None:
        state_monitor.record_read(
            "gossip", self, key,
            (entry.version, entry.value) if entry is not None else (0, None),
        )

    def entry(self, key: str) -> Optional[GossipEntry]:
        entry = self._entries.get(key)
        self._observe(key, entry)
        return entry

    def get(self, key: str, default: object = None) -> object:
        entry = self._entries.get(key)
        self._observe(key, entry)
        return entry.value if entry is not None else default

    def version_of(self, key: str) -> int:
        entry = self._entries.get(key)
        self._observe(key, entry)
        return entry.version if entry is not None else 0

    def put(self, key: str, value: object, version: int) -> bool:
        """Merge one entry; accepted only when strictly newer (no regress)."""
        state_monitor.record_merge("gossip", self, key, version, value)
        current = self._entries.get(key)
        if current is not None and version <= current.version:
            return False
        self._entries[key] = GossipEntry(key=key, value=value, version=version)
        return True

    def entries(self) -> Iterable[GossipEntry]:
        return self._entries.values()

    def digest(self) -> Dict[str, int]:
        """``key -> version`` summary used to compare node states."""
        return {key: entry.version for key, entry in sorted(self._entries.items())}

    def snapshot(self) -> Dict[str, GossipEntry]:
        """A frozen copy of the store (the batch-snapshot primitive)."""
        return dict(self._entries)


class GossipView:
    """A peer-local client over one gossip node, typed per metadata kind.

    The view is what the index/frontend/routing layers consume: it narrows
    the flat key space to the three metadata feeds and adds **pinning** —
    :meth:`pin` freezes the read side on a snapshot so every read inside a
    region (a ``search_batch``) sees one consistent metadata version even
    if a gossip round fires mid-region, and :meth:`unpin` returns to live
    reads.  Writes (``publish``/``observe``) always go to the live node so
    knowledge gained inside a pinned region is not lost.
    """

    def __init__(self, node: GossipNode) -> None:
        self._node = node
        self._pinned: Optional[Dict[str, GossipEntry]] = None

    @property
    def node(self) -> GossipNode:
        return self._node

    @property
    def pinned(self) -> bool:
        return self._pinned is not None

    def pin(self) -> None:
        self._pinned = self._node.snapshot()

    def unpin(self) -> None:
        self._pinned = None

    def _entry(self, key: str) -> Optional[GossipEntry]:
        if self._pinned is not None:
            return self._pinned.get(key)
        return self._node.entry(key)

    # -- the epoch feed ----------------------------------------------------------

    def generation(self, term: str) -> int:
        """The latest term generation this peer has heard of (0 = none)."""
        entry = self._entry(EPOCH_PREFIX + term)
        return entry.version if entry is not None else 0

    def publish(self, term: str, generation: int, origin: Optional[str] = None) -> None:
        """Feed-publish hook: a local publish enters the plane at this node."""
        del origin  # a view is bound to one node; the plane handles routing
        self._node.put(EPOCH_PREFIX + term, generation, generation)

    def observe(self, term: str, generation: int) -> None:
        """Record a generation learned from an authoritative manifest fetch.

        The fetching peer becomes a gossip source for the epoch it just
        observed — fetched knowledge piggybacks on the plane instead of
        being re-learned from the DHT by every peer.
        """
        self._node.put(EPOCH_PREFIX + term, generation, generation)

    # -- serving-load hints ------------------------------------------------------

    def load_hint(self, address: str) -> int:
        """The gossiped coarse serving load of ``address`` (0 = unknown)."""
        entry = self._entry(LOAD_PREFIX + address)
        return int(entry.value) if entry is not None else 0

    # -- published-artifact heads ------------------------------------------------

    def rank_head(self) -> Tuple[int, Optional[str]]:
        """(version, cid) of the latest rank vector this peer knows of."""
        entry = self._entry(RANK_HEAD_KEY)
        if entry is None:
            return 0, None
        return entry.version, str(entry.value)

    def stats_head(self) -> Tuple[int, Optional[str]]:
        """(version, cid) of the latest collection statistics snapshot."""
        entry = self._entry(STATS_HEAD_KEY)
        if entry is None:
            return 0, None
        return entry.version, str(entry.value)

    def rank_bands(self) -> Tuple[int, Optional[str]]:
        """(version, band-manifest JSON) of the latest banded rank publish.

        The gossiped manifest is a convenience copy; the DHT record under
        the same name stays authoritative (frontends fall back to it when
        band assembly fails).
        """
        entry = self._entry(RANK_BANDS_KEY)
        if entry is None:
            return 0, None
        return entry.version, str(entry.value)

    # -- rank-version hints ------------------------------------------------------

    def rank_ceiling_hint(self, term: str) -> Optional[Tuple[int, int, List[float]]]:
        """The gossiped ``(rank_version, generation, ceilings)`` for ``term``.

        Published at each rank round (``rv:<term>``, versioned by rank
        version), this lets a frontend holding a cached manifest refresh its
        per-shard rank ceilings without a manifest refetch.  The generation
        rides along so a hint minted against a *different* manifest layout
        (shard count or ranges changed) is rejected by the consumer.  A
        malformed entry reads as "no hint" — ceilings then stay at their
        cached (still conservative) values.
        """
        entry = self._entry(RANK_CEILING_PREFIX + term)
        if entry is None:
            return None
        try:
            body = json.loads(str(entry.value))
            generation = int(body["g"])
            ceilings = [float(ceiling) for ceiling in body["rc"]]
        except (ValueError, TypeError, KeyError):
            return None
        return entry.version, generation, ceilings


class PlaneEpochFeed:
    """Publisher-side epoch feed bound to the whole plane.

    The engine's (shared) index publishes through this adapter so each
    term-generation bump enters the plane at the node of the peer that
    actually published the shard.  Reads return 0: on the publisher side
    the index's own registry is always at least as fresh as gossip, and
    the index takes the max of both.
    """

    def __init__(self, plane: "GossipPlane", default_origin: str) -> None:
        self.plane = plane
        self.default_origin = default_origin

    def generation(self, term: str) -> int:
        return 0

    def publish(self, term: str, generation: int, origin: Optional[str] = None) -> None:
        self.plane.publish(
            origin or self.default_origin, EPOCH_PREFIX + term, generation, generation
        )

    def observe(self, term: str, generation: int) -> None:
        # The shared index's fetches are already served from the same
        # process that published; there is no remote knowledge to record.
        return None


class GossipPlane:
    """All gossip nodes plus the anti-entropy schedule connecting them.

    Parameters
    ----------
    simulator:
        Supplies the clock, the event queue rounds are scheduled on, and
        the seeded RNG stream (``fork_rng("gossip")``) peer selection uses.
    network:
        Optional liveness/latency source.  With a network attached, offline
        peers are excluded from rounds and each round's clock cost is the
        slowest of its (concurrent) exchanges; without one, the plane is a
        zero-latency reconciliation fabric (unit tests).
    fanout:
        Exchanges each node initiates per round.
    interval:
        Ticks between scheduled rounds (``start()``).
    """

    def __init__(
        self,
        simulator: Simulator,
        network: Optional[SimulatedNetwork] = None,
        fanout: int = 3,
        interval: float = 500.0,
    ) -> None:
        if fanout < 1:
            raise ValueError(f"gossip fanout must be at least 1, got {fanout!r}")
        if interval <= 0:
            raise ValueError(f"gossip interval must be positive, got {interval!r}")
        self.simulator = simulator
        self.network = network
        self.fanout = fanout
        self.interval = interval
        self.stats = GossipStats()
        self._rng = simulator.fork_rng("gossip")
        self._nodes: Dict[str, GossipNode] = {}
        self._refresh_hooks: List[Callable[[], None]] = []
        self._cancel_rounds: Optional[Callable[[], None]] = None

    # -- membership --------------------------------------------------------------

    def node(self, address: str) -> GossipNode:
        """The store of ``address`` (created on first use)."""
        node = self._nodes.get(address)
        if node is None:
            node = GossipNode(address)
            self._nodes[address] = node
        return node

    def view(self, address: str) -> GossipView:
        """A typed client over the node of ``address``."""
        return GossipView(self.node(address))

    def addresses(self) -> List[str]:
        return sorted(self._nodes)

    def _online(self, address: str) -> bool:
        return self.network is None or self.network.is_online(address)

    def _reachable(self, src: str, dst: str) -> bool:
        # Partition-aware peer selection: an exchange models real traffic,
        # so a network split must stop gossip across the cut (each side
        # keeps converging internally and re-merges after the heal).
        return self.network is None or self.network.can_reach(src, dst)

    # -- publishing --------------------------------------------------------------

    def publish(self, origin: str, key: str, value: object, version: int) -> bool:
        """Enter one entry into the plane at ``origin``'s node."""
        return self.node(origin).put(key, value, version)

    def add_refresh_hook(self, hook: Callable[[], None]) -> None:
        """Run ``hook()`` at the start of every round.

        This is how locally-observable state piggybacks on gossip: the
        engine registers a hook that re-publishes each storage peer's
        quantized served-block counter into that peer's own node, and the
        round then spreads whatever changed.
        """
        self._refresh_hooks.append(hook)

    # -- rounds ------------------------------------------------------------------

    def run_round(self) -> int:
        """One anti-entropy round; returns the number of entries accepted.

        Every online node initiates ``fanout`` push/pull exchanges with
        distinct random online peers.  The exchanges are logically
        concurrent, so the round advances the clock by the slowest
        round-trip only (zero without a network/latency model).
        """
        self.stats.rounds += 1
        for hook in self._refresh_hooks:
            hook()
        addresses = self.addresses()
        accepted = 0
        slowest = 0.0
        for address in addresses:
            if not self._online(address):
                continue
            peers = [
                a
                for a in addresses
                if a != address and self._online(a) and self._reachable(address, a)
            ]
            if not peers:
                continue
            for peer in self._rng.sample(peers, min(self.fanout, len(peers))):
                accepted += self._exchange(address, peer)
                if self.network is not None:
                    round_trip = self.network.latency.sample(
                        self._rng, address, peer
                    ) + self.network.latency.sample(self._rng, peer, address)
                    slowest = max(slowest, round_trip)
        if slowest:
            self.simulator.clock.advance(slowest)
        return accepted

    def _exchange(self, src: str, dst: str) -> int:
        """Push/pull reconciliation of two stores; returns entries accepted."""
        self.stats.exchanges += 1
        # One digest each way plus one delta each way.
        self.stats.messages += 4
        a, b = self.node(src), self.node(dst)
        accepted = 0
        for source, sink in ((a, b), (b, a)):
            sink_digest = sink.digest()
            for entry in list(source.entries()):
                if entry.version > sink_digest.get(entry.key, 0):
                    self.stats.entries_sent += 1
                    if sink.put(entry.key, entry.value, entry.version):
                        accepted += 1
                        self.stats.entries_accepted += 1
        return accepted

    def run_rounds(self, count: int) -> int:
        """Drive ``count`` rounds synchronously; returns entries accepted."""
        return sum(self.run_round() for _ in range(count))

    def start(self) -> None:
        """Schedule recurring rounds on the simulator (idempotent)."""
        if self._cancel_rounds is None:
            # Fixed-rate: rounds anchor to their *scheduled* time, so heavy
            # foreground work (a churn repair storm) delays rounds instead
            # of starving them — the long-run anti-entropy rate stays
            # 1/interval (the E3c in-window round count regression).
            self._cancel_rounds = self.simulator.schedule_every(
                self.interval, self.run_round, label="gossip-round", fixed_rate=True
            )

    def stop(self) -> None:
        if self._cancel_rounds is not None:
            self._cancel_rounds()
            self._cancel_rounds = None

    # -- convergence -------------------------------------------------------------

    def converged(self) -> bool:
        """Whether every online node holds the same ``key -> version`` map.

        Offline nodes are excluded: they cannot receive entries and would
        keep churn-time convergence permanently false; they reconcile on
        rejoin (the next rounds they participate in).
        """
        digests = [
            self._nodes[address].digest()
            for address in self.addresses()
            if self._online(address)
        ]
        if len(digests) < 2:
            return True
        first = digests[0]
        return all(digest == first for digest in digests[1:])

    def rounds_to_converge(self, max_rounds: int = 64) -> int:
        """Rounds of synchronous gossip until convergence (-1 = budget hit).

        The measured count is also recorded in
        ``stats.last_convergence_rounds`` for the benchmark tables.
        """
        for rounds in range(max_rounds + 1):
            if self.converged():
                self.stats.last_convergence_rounds = rounds
                return rounds
            self.run_round()
        self.stats.last_convergence_rounds = -1
        return -1
