"""Message and response envelopes exchanged over the simulated network."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict


def estimate_size(payload: Any) -> int:
    """Rough byte-size estimate of a payload, used for bandwidth accounting.

    The estimate only needs to be consistent (so that experiments comparing
    systems are fair), not exact.
    """
    if payload is None:
        return 1
    if isinstance(payload, bool):
        return 1
    if isinstance(payload, int):
        return 8
    if isinstance(payload, float):
        return 8
    if isinstance(payload, bytes):
        return len(payload)
    if isinstance(payload, str):
        return len(payload.encode("utf-8"))
    if isinstance(payload, dict):
        return sum(estimate_size(k) + estimate_size(v) for k, v in payload.items()) + 2
    if isinstance(payload, (list, tuple, set, frozenset)):
        return sum(estimate_size(item) for item in payload) + 2
    return 16


@dataclass
class Message:
    """A request sent from one peer to another."""

    sender: str
    recipient: str
    msg_type: str
    payload: Dict[str, Any] = field(default_factory=dict)

    @property
    def size_bytes(self) -> int:
        """Estimated wire size of the message."""
        return len(self.msg_type) + estimate_size(self.payload) + 40


@dataclass
class Response:
    """A reply returned by a peer's message handler."""

    sender: str
    msg_type: str
    payload: Dict[str, Any] = field(default_factory=dict)
    ok: bool = True
    error: str = ""

    @property
    def size_bytes(self) -> int:
        """Estimated wire size of the response."""
        return len(self.msg_type) + estimate_size(self.payload) + 40

    @classmethod
    def failure(cls, sender: str, msg_type: str, error: str) -> "Response":
        """Convenience constructor for an error reply."""
        return cls(sender=sender, msg_type=msg_type, ok=False, error=error)
