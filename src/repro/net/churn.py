"""Churn: peers leaving and (re)joining over simulated time.

The resilience experiment (E3) and the DHT republish machinery both need a
controlled way to take fractions of the peer population offline and bring
them back.  :class:`ChurnModel` drives that through the simulator's event
queue so churn interleaves with the workload deterministically.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.errors import SimulationError
from repro.net.network import SimulatedNetwork
from repro.sim.simulator import Simulator


class ChurnModel:
    """Schedules peer departures and arrivals on a simulated network.

    Parameters
    ----------
    simulator / network:
        The simulation substrate the peers live on.
    on_leave / on_join:
        Optional callbacks invoked with the address after the network state
        changes, so higher layers (e.g. the DHT) can update routing state.
        Additional subscribers register through :meth:`add_leave_listener` /
        :meth:`add_join_listener` — the shard-placement repair loop hooks in
        this way (``QueenBeeEngine.create_churn_model``), so one churn driver
        can feed several subsystems.
    """

    def __init__(
        self,
        simulator: Simulator,
        network: SimulatedNetwork,
        on_leave: Optional[Callable[[str], None]] = None,
        on_join: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.simulator = simulator
        self.network = network
        self.on_leave = on_leave
        self.on_join = on_join
        self._leave_listeners: List[Callable[[str], None]] = []
        self._join_listeners: List[Callable[[str], None]] = []
        self._rng = simulator.fork_rng("churn")
        self.departures: List[str] = []
        self.arrivals: List[str] = []

    def add_leave_listener(self, listener: Callable[[str], None]) -> None:
        """Invoke ``listener(address)`` after every departure (repair hooks)."""
        self._leave_listeners.append(listener)

    def add_join_listener(self, listener: Callable[[str], None]) -> None:
        """Invoke ``listener(address)`` after every arrival."""
        self._join_listeners.append(listener)

    def fail_fraction(self, addresses: Sequence[str], fraction: float) -> List[str]:
        """Immediately take a random ``fraction`` of ``addresses`` offline.

        Returns the list of failed addresses (deterministic for a given seed).
        """
        if not 0.0 <= fraction <= 1.0:
            raise SimulationError(f"fraction must be in [0, 1], got {fraction!r}")
        count = int(round(len(addresses) * fraction))
        victims = self._rng.sample(list(addresses), count)
        for address in victims:
            self._leave(address)
        return victims

    def schedule_leave(self, address: str, delay: float) -> None:
        """Schedule ``address`` to go offline ``delay`` ticks from now."""
        self.simulator.schedule(delay, lambda: self._leave(address), label=f"leave:{address}")

    def schedule_join(self, address: str, delay: float) -> None:
        """Schedule ``address`` to come back online ``delay`` ticks from now."""
        self.simulator.schedule(delay, lambda: self._join(address), label=f"join:{address}")

    def schedule_session_churn(
        self,
        addresses: Sequence[str],
        mean_session: float,
        mean_downtime: float,
        horizon: float,
    ) -> int:
        """Give each address alternating online/offline sessions until ``horizon``.

        Session and downtime lengths are exponentially distributed with the
        given means.  Returns the number of scheduled transitions.
        """
        if mean_session <= 0 or mean_downtime <= 0:
            raise SimulationError("session and downtime means must be positive")
        scheduled = 0
        for address in addresses:
            t = self._rng.expovariate(1.0 / mean_session)
            online = True
            while t < horizon:
                if online:
                    self.schedule_leave(address, t)
                    t += self._rng.expovariate(1.0 / mean_downtime)
                else:
                    self.schedule_join(address, t)
                    t += self._rng.expovariate(1.0 / mean_session)
                online = not online
                scheduled += 1
        return scheduled

    def _leave(self, address: str) -> None:
        if self.network.is_online(address):
            self.network.set_offline(address)
            self.departures.append(address)
            if self.on_leave is not None:
                self.on_leave(address)
            for listener in self._leave_listeners:
                listener(address)

    def _join(self, address: str) -> None:
        if not self.network.is_online(address):
            self.network.set_online(address)
            self.arrivals.append(address)
            if self.on_join is not None:
                self.on_join(address)
            for listener in self._join_listeners:
                listener(address)
