"""Simulated peer-to-peer network substrate.

QueenBee, the DHT, the decentralized storage layer, and the blockchain all
exchange messages through :class:`~repro.net.network.SimulatedNetwork`.  The
network charges simulated latency for every RPC, can drop messages, can be
partitioned into isolated groups, and supports taking peers offline — the
knobs the resilience experiments (E3) turn.
"""

from repro.net.latency import (
    ConstantLatency,
    LatencyModel,
    LogNormalLatency,
    UniformLatency,
)
from repro.net.message import Message, Response
from repro.net.network import NetworkStats, SimulatedNetwork
from repro.net.churn import ChurnModel

__all__ = [
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "LogNormalLatency",
    "Message",
    "Response",
    "SimulatedNetwork",
    "NetworkStats",
    "ChurnModel",
]
