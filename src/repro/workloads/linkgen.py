"""Hyperlink graph generation by preferential attachment.

Real web link graphs have power-law in-degree distributions; preferential
attachment reproduces that shape, which matters because both PageRank skew
and the incentive fairness results (E5) depend on it.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.errors import WorkloadError
from repro.ranking.graph import LinkGraph


def generate_link_graph(
    node_count: int,
    mean_out_degree: float = 6.0,
    rng: Optional[random.Random] = None,
) -> LinkGraph:
    """Directed preferential-attachment graph over ``0 .. node_count-1``.

    Each new node links to roughly ``mean_out_degree`` earlier nodes chosen
    with probability proportional to their current in-degree (plus one, so
    unlinked nodes remain reachable).
    """
    if node_count <= 0:
        raise WorkloadError(f"node_count must be positive, got {node_count!r}")
    if mean_out_degree < 0:
        raise WorkloadError(f"mean_out_degree must be non-negative, got {mean_out_degree!r}")
    rng = rng or random.Random(0)
    graph = LinkGraph()
    for node in range(node_count):
        graph.add_node(node)

    # repeated-targets list implements preferential attachment in O(edges).
    attachment_pool: List[int] = [0] if node_count > 0 else []
    for node in range(1, node_count):
        # Draw the out-degree around the mean, at least one link when possible.
        out_degree = max(1, int(round(rng.gauss(mean_out_degree, mean_out_degree / 3.0))))
        out_degree = min(out_degree, node)
        chosen = set()
        attempts = 0
        while len(chosen) < out_degree and attempts < out_degree * 10:
            attempts += 1
            if rng.random() < 0.15 or not attachment_pool:
                target = rng.randrange(node)
            else:
                target = rng.choice(attachment_pool)
            if target != node:
                chosen.add(target)
        for target in sorted(chosen):
            graph.add_edge(node, target)
            attachment_pool.append(target)
        attachment_pool.append(node)
    return graph
