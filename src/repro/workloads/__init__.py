"""Synthetic workloads.

The paper evaluates nothing directly, so the experiments run on synthetic
corpora whose *shape* matches what is known about the web and web search:
Zipfian term and query popularity, power-law (preferential attachment) link
structure, and skewed content-provider popularity.  All generators are
deterministic given a seed.
"""

from repro.workloads.zipf import ZipfSampler
from repro.workloads.arrivals import (
    ArrivalWorkload,
    DiurnalArrivals,
    FlashCrowdArrivals,
    PoissonArrivals,
)
from repro.workloads.corpus import CorpusGenerator, GeneratedCorpus
from repro.workloads.linkgen import generate_link_graph
from repro.workloads.queries import QueryWorkload, QueryWorkloadGenerator
from repro.workloads.updates import PublishEvent, PublishWorkload, PublishWorkloadGenerator

__all__ = [
    "ZipfSampler",
    "ArrivalWorkload",
    "PoissonArrivals",
    "DiurnalArrivals",
    "FlashCrowdArrivals",
    "CorpusGenerator",
    "GeneratedCorpus",
    "generate_link_graph",
    "QueryWorkload",
    "QueryWorkloadGenerator",
    "PublishEvent",
    "PublishWorkload",
    "PublishWorkloadGenerator",
]
