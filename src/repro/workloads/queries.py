"""Query workload generation."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.errors import WorkloadError
from repro.index.analysis import Analyzer
from repro.index.document import Document
from repro.workloads.zipf import ZipfSampler


@dataclass
class QueryWorkload:
    """A fixed list of keyword queries plus ground-truth helpers."""

    queries: List[str] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self):
        return iter(self.queries)


class QueryWorkloadGenerator:
    """Draws queries from the corpus' own term distribution.

    Query terms are sampled from the terms that actually occur in documents
    (Zipf-weighted by their collection frequency), so most queries have
    non-empty results — the regime in which intersection cost and ranking
    quality are interesting.  Query lengths follow the short-head observed in
    web search (mostly 1–3 terms).
    """

    def __init__(
        self,
        documents: Sequence[Document],
        analyzer: Optional[Analyzer] = None,
        term_exponent: float = 1.0,
        length_weights: Sequence[float] = (0.35, 0.45, 0.15, 0.05),
        seed: int = 0,
    ) -> None:
        if not documents:
            raise WorkloadError("query generation needs a non-empty corpus")
        self.analyzer = analyzer or Analyzer()
        self.rng = random.Random(seed)
        self.length_weights = list(length_weights)
        # Rank *raw* tokens (not analyzed terms) by collection frequency:
        # queries are raw text that the frontend will analyze exactly once,
        # the same way documents are analyzed, so building queries from raw
        # tokens keeps query terms aligned with index terms.
        counts = {}
        raw_analyzer = Analyzer(stopwords=self.analyzer.stopwords, stem=False,
                                min_token_length=self.analyzer.min_token_length)
        for document in documents:
            for term in raw_analyzer.analyze(document.full_text):
                counts[term] = counts.get(term, 0) + 1
        self.terms_by_popularity = [
            term for term, _ in sorted(counts.items(), key=lambda item: (-item[1], item[0]))
        ]
        if not self.terms_by_popularity:
            raise WorkloadError("corpus produced no indexable terms")
        self.sampler = ZipfSampler(len(self.terms_by_popularity), term_exponent, self.rng)

    def generate(self, count: int) -> QueryWorkload:
        """Generate ``count`` queries."""
        if count < 0:
            raise WorkloadError(f"cannot generate a negative number of queries: {count!r}")
        queries: List[str] = []
        for _ in range(count):
            length = 1 + self.rng.choices(
                range(len(self.length_weights)), weights=self.length_weights
            )[0]
            terms = []
            attempts = 0
            while len(terms) < length and attempts < length * 10:
                attempts += 1
                term = self.terms_by_popularity[self.sampler.sample()]
                if term not in terms:
                    terms.append(term)
            queries.append(" ".join(terms))
        return QueryWorkload(queries=queries)

    def generate_stream(
        self, count: int, distinct: int, repeat_exponent: float = 1.0
    ) -> QueryWorkload:
        """A repeated-query stream drawn Zipf-weighted from a fixed pool.

        Real query traffic repeats itself: a small head of popular queries
        dominates the stream.  This generates a pool of ``distinct`` queries
        and then samples ``count`` of them with Zipfian popularity — the
        regime where posting-list caching and batch term deduplication pay
        off (benchmark E10).
        """
        if distinct < 1:
            raise WorkloadError(f"need at least one distinct query, got {distinct!r}")
        pool = self.generate(distinct).queries
        popularity = ZipfSampler(len(pool), repeat_exponent, self.rng)
        return QueryWorkload(queries=[pool[popularity.sample()] for _ in range(count)])
