"""Synthetic DWeb corpus generation."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import WorkloadError
from repro.index.document import Document
from repro.ranking.graph import LinkGraph
from repro.workloads.linkgen import generate_link_graph
from repro.workloads.zipf import ZipfSampler

# A small pool of real words mixed into the synthetic vocabulary so examples
# read naturally; the bulk of the vocabulary is synthetic terms.
_SEED_WORDS = [
    "decentralized", "search", "engine", "network", "peer", "content", "index",
    "rank", "honey", "worker", "blockchain", "contract", "crypto", "hash",
    "storage", "query", "latency", "privacy", "web", "page", "publish",
    "incentive", "advert", "click", "node", "protocol", "data", "cache",
    "freshness", "resilience", "partition", "token", "wallet", "ledger",
]


@dataclass
class GeneratedCorpus:
    """Documents plus the derived structures experiments need."""

    documents: List[Document] = field(default_factory=list)
    vocabulary: List[str] = field(default_factory=list)
    link_graph: LinkGraph = field(default_factory=LinkGraph)
    owners: List[str] = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.documents)

    def documents_by_owner(self) -> Dict[str, List[Document]]:
        grouped: Dict[str, List[Document]] = {}
        for document in self.documents:
            grouped.setdefault(document.owner, []).append(document)
        return grouped

    def document_by_id(self, doc_id: int) -> Document:
        return self.documents[doc_id]


class CorpusGenerator:
    """Generates a corpus with Zipfian term usage and skewed owner popularity.

    Parameters
    ----------
    vocabulary_size:
        Number of distinct terms.
    term_exponent:
        Zipf exponent for term popularity (1.0 ≈ natural language).
    mean_document_length / length_spread:
        Document lengths are drawn from a clamped normal distribution.
    owner_count:
        Number of content providers; pages are assigned to owners with a
        Zipfian skew so a few providers own many popular pages (what the
        incentive experiment needs).
    mean_out_degree:
        Average hyperlinks per page for the preferential-attachment graph.
    """

    def __init__(
        self,
        vocabulary_size: int = 2_000,
        term_exponent: float = 1.0,
        mean_document_length: int = 120,
        length_spread: int = 40,
        owner_count: int = 50,
        owner_exponent: float = 1.0,
        mean_out_degree: float = 6.0,
        seed: int = 0,
    ) -> None:
        if vocabulary_size < len(_SEED_WORDS):
            raise WorkloadError(
                f"vocabulary_size must be at least {len(_SEED_WORDS)}, got {vocabulary_size!r}"
            )
        if mean_document_length < 5:
            raise WorkloadError("mean_document_length must be at least 5")
        if owner_count < 1:
            raise WorkloadError("owner_count must be at least 1")
        self.vocabulary_size = vocabulary_size
        self.term_exponent = term_exponent
        self.mean_document_length = mean_document_length
        self.length_spread = length_spread
        self.owner_count = owner_count
        self.owner_exponent = owner_exponent
        self.mean_out_degree = mean_out_degree
        self.seed = seed

    def build_vocabulary(self) -> List[str]:
        """Seed words first (they get the most popular Zipf ranks), then synthetic terms."""
        synthetic = [f"term{i:05d}" for i in range(self.vocabulary_size - len(_SEED_WORDS))]
        return list(_SEED_WORDS) + synthetic

    def generate(self, num_documents: int) -> GeneratedCorpus:
        """Generate ``num_documents`` pages, their owners, and their link graph."""
        if num_documents <= 0:
            raise WorkloadError(f"num_documents must be positive, got {num_documents!r}")
        rng = random.Random(self.seed)
        vocabulary = self.build_vocabulary()
        term_sampler = ZipfSampler(len(vocabulary), self.term_exponent, rng)
        owner_sampler = ZipfSampler(self.owner_count, self.owner_exponent, rng)
        owners = [f"creator-{i:03d}" for i in range(self.owner_count)]

        documents: List[Document] = []
        for doc_id in range(num_documents):
            owner = owners[owner_sampler.sample()]
            length = max(5, int(rng.gauss(self.mean_document_length, self.length_spread)))
            words = [vocabulary[term_sampler.sample()] for _ in range(length)]
            title_terms = [vocabulary[term_sampler.sample()] for _ in range(3)]
            url = f"dweb://{owner}/page-{doc_id:06d}"
            documents.append(
                Document(
                    doc_id=doc_id,
                    url=url,
                    title=" ".join(title_terms),
                    text=" ".join(words),
                    owner=owner,
                    published_at=0.0,
                )
            )

        link_graph = generate_link_graph(
            num_documents, mean_out_degree=self.mean_out_degree, rng=rng
        )
        url_by_id = {d.doc_id: d.url for d in documents}
        for document in documents:
            targets = link_graph.out_links(document.doc_id)
            document.links = tuple(url_by_id[t] for t in targets)

        return GeneratedCorpus(
            documents=documents,
            vocabulary=vocabulary,
            link_graph=link_graph,
            owners=owners,
        )
