"""Zipfian sampling used by every workload generator."""

from __future__ import annotations

import bisect
import random
from typing import List

from repro.errors import WorkloadError


class ZipfSampler:
    """Samples ranks ``0 .. n-1`` with probability proportional to ``1/(rank+1)^s``.

    The cumulative distribution is precomputed once so sampling is a binary
    search — fast enough to draw millions of terms per experiment.
    """

    def __init__(self, n: int, exponent: float = 1.0, rng: random.Random = None) -> None:
        if n <= 0:
            raise WorkloadError(f"ZipfSampler needs a positive population, got {n!r}")
        if exponent < 0:
            raise WorkloadError(f"Zipf exponent must be non-negative, got {exponent!r}")
        self.n = n
        self.exponent = exponent
        self.rng = rng or random.Random(0)
        weights = [1.0 / ((rank + 1) ** exponent) for rank in range(n)]
        total = sum(weights)
        cumulative: List[float] = []
        running = 0.0
        for weight in weights:
            running += weight / total
            cumulative.append(running)
        cumulative[-1] = 1.0
        self._cumulative = cumulative

    def sample(self) -> int:
        """Draw one rank (0 is the most popular)."""
        return bisect.bisect_left(self._cumulative, self.rng.random())

    def sample_many(self, count: int) -> List[int]:
        if count < 0:
            raise WorkloadError(f"cannot draw a negative number of samples: {count!r}")
        return [self.sample() for _ in range(count)]

    def probability(self, rank: int) -> float:
        """The probability mass assigned to ``rank``."""
        if not 0 <= rank < self.n:
            raise WorkloadError(f"rank {rank!r} outside population of size {self.n}")
        previous = self._cumulative[rank - 1] if rank > 0 else 0.0
        return self._cumulative[rank] - previous
