"""Publish/update/delete streams for the freshness experiments (E2).

Updates are *content rewrites*, not pure appends: a fraction of the page's
words is dropped alongside the freshness marker that is added, so every
update exercises the stale-postings path (terms the new version no longer
contains must disappear from the distributed index — the bug class the
versioned term directory fixes).  Deletes retire a published page entirely.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.errors import WorkloadError
from repro.index.document import Document
from repro.workloads.corpus import GeneratedCorpus


@dataclass
class PublishEvent:
    """One publish (create, update, or delete) scheduled at a simulated time."""

    time: float
    document: Document
    is_update: bool = False
    is_delete: bool = False


@dataclass
class PublishWorkload:
    """A time-ordered stream of publish events."""

    events: List[PublishEvent] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @property
    def horizon(self) -> float:
        return self.events[-1].time if self.events else 0.0


class PublishWorkloadGenerator:
    """Generates a stream of page creations and updates over simulated time.

    Parameters
    ----------
    corpus:
        The base corpus.  ``initial_fraction`` of it is treated as already
        published at time zero; the rest arrives as *new* pages during the
        run, interleaved with updates to already-published pages.
    mean_interarrival:
        Mean ticks between publish events (exponential interarrivals).
    update_probability:
        Probability that an event updates an existing page rather than
        creating a new one (once no new pages remain, everything is updates).
    delete_probability:
        Probability that an event deletes a published page instead (checked
        before the update/create split; 0 keeps the stream delete-free).
    update_drop_fraction:
        Fraction of a page's words an update rewrites away, so updates drop
        terms from the index rather than only adding them.
    """

    def __init__(
        self,
        corpus: GeneratedCorpus,
        initial_fraction: float = 0.5,
        mean_interarrival: float = 200.0,
        update_probability: float = 0.4,
        delete_probability: float = 0.0,
        update_drop_fraction: float = 0.3,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= initial_fraction <= 1.0:
            raise WorkloadError(f"initial_fraction must be in [0, 1], got {initial_fraction!r}")
        if mean_interarrival <= 0:
            raise WorkloadError("mean_interarrival must be positive")
        if not 0.0 <= update_probability <= 1.0:
            raise WorkloadError("update_probability must be in [0, 1]")
        if not 0.0 <= delete_probability <= 1.0:
            raise WorkloadError("delete_probability must be in [0, 1]")
        if not 0.0 <= update_drop_fraction < 1.0:
            raise WorkloadError("update_drop_fraction must be in [0, 1)")
        self.corpus = corpus
        self.initial_fraction = initial_fraction
        self.mean_interarrival = mean_interarrival
        self.update_probability = update_probability
        self.delete_probability = delete_probability
        self.update_drop_fraction = update_drop_fraction
        self.rng = random.Random(seed)

    def initial_documents(self) -> List[Document]:
        """The pages considered already published before the measurement window."""
        cutoff = int(len(self.corpus.documents) * self.initial_fraction)
        return list(self.corpus.documents[:cutoff])

    def generate(self, event_count: int) -> PublishWorkload:
        """Generate ``event_count`` publish events after time zero."""
        if event_count < 0:
            raise WorkloadError(f"event_count must be non-negative, got {event_count!r}")
        initial = self.initial_documents()
        pending_new = list(self.corpus.documents[len(initial):])
        published: List[Document] = list(initial)
        events: List[PublishEvent] = []
        now = 0.0
        update_words = ["fresh", "update", "revision", "breaking", "new"]
        for _ in range(event_count):
            now += self.rng.expovariate(1.0 / self.mean_interarrival)
            # Deletes need a surviving page beyond the victim so the stream
            # never empties the corpus entirely.
            make_delete = len(published) > 1 and self.rng.random() < self.delete_probability
            make_update = (
                not make_delete
                and published
                and (not pending_new or self.rng.random() < self.update_probability)
            )
            if make_delete:
                victim = self.rng.choice(published)
                published.remove(victim)
                events.append(PublishEvent(time=now, document=victim, is_delete=True))
            elif make_update:
                base = self.rng.choice(published)
                marker = self.rng.choice(update_words)
                updated = base.updated(
                    text=f"{self._rewrite(base.text)} {marker}", published_at=now
                )
                published[published.index(base)] = updated
                events.append(PublishEvent(time=now, document=updated, is_update=True))
            else:
                document = pending_new.pop(0)
                document = Document(
                    doc_id=document.doc_id,
                    url=document.url,
                    title=document.title,
                    text=document.text,
                    owner=document.owner,
                    links=document.links,
                    published_at=now,
                    version=1,
                )
                published.append(document)
                events.append(PublishEvent(time=now, document=document, is_update=False))
        return PublishWorkload(events=events)

    def _rewrite(self, text: str) -> str:
        """Drop ``update_drop_fraction`` of the words (keeping at least one).

        Dropping whole words is what makes updates remove terms from the
        index — the path that turns stale when a worker cannot see the
        page's previous term vector.
        """
        words = text.split()
        if len(words) < 2 or self.update_drop_fraction == 0.0:
            return text
        keep = max(1, int(round(len(words) * (1.0 - self.update_drop_fraction))))
        if keep >= len(words):
            return text
        kept_indices = sorted(self.rng.sample(range(len(words)), keep))
        return " ".join(words[i] for i in kept_indices)
