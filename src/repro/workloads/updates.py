"""Publish/update streams for the freshness experiment (E2)."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.errors import WorkloadError
from repro.index.document import Document
from repro.workloads.corpus import GeneratedCorpus


@dataclass
class PublishEvent:
    """One publish (create or update) scheduled at a simulated time."""

    time: float
    document: Document
    is_update: bool = False


@dataclass
class PublishWorkload:
    """A time-ordered stream of publish events."""

    events: List[PublishEvent] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @property
    def horizon(self) -> float:
        return self.events[-1].time if self.events else 0.0


class PublishWorkloadGenerator:
    """Generates a stream of page creations and updates over simulated time.

    Parameters
    ----------
    corpus:
        The base corpus.  ``initial_fraction`` of it is treated as already
        published at time zero; the rest arrives as *new* pages during the
        run, interleaved with updates to already-published pages.
    mean_interarrival:
        Mean ticks between publish events (exponential interarrivals).
    update_probability:
        Probability that an event updates an existing page rather than
        creating a new one (once no new pages remain, everything is updates).
    """

    def __init__(
        self,
        corpus: GeneratedCorpus,
        initial_fraction: float = 0.5,
        mean_interarrival: float = 200.0,
        update_probability: float = 0.4,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= initial_fraction <= 1.0:
            raise WorkloadError(f"initial_fraction must be in [0, 1], got {initial_fraction!r}")
        if mean_interarrival <= 0:
            raise WorkloadError("mean_interarrival must be positive")
        if not 0.0 <= update_probability <= 1.0:
            raise WorkloadError("update_probability must be in [0, 1]")
        self.corpus = corpus
        self.initial_fraction = initial_fraction
        self.mean_interarrival = mean_interarrival
        self.update_probability = update_probability
        self.rng = random.Random(seed)

    def initial_documents(self) -> List[Document]:
        """The pages considered already published before the measurement window."""
        cutoff = int(len(self.corpus.documents) * self.initial_fraction)
        return list(self.corpus.documents[:cutoff])

    def generate(self, event_count: int) -> PublishWorkload:
        """Generate ``event_count`` publish events after time zero."""
        if event_count < 0:
            raise WorkloadError(f"event_count must be non-negative, got {event_count!r}")
        initial = self.initial_documents()
        pending_new = list(self.corpus.documents[len(initial):])
        published: List[Document] = list(initial)
        events: List[PublishEvent] = []
        now = 0.0
        update_words = ["fresh", "update", "revision", "breaking", "new"]
        for _ in range(event_count):
            now += self.rng.expovariate(1.0 / self.mean_interarrival)
            make_update = published and (
                not pending_new or self.rng.random() < self.update_probability
            )
            if make_update:
                base = self.rng.choice(published)
                marker = self.rng.choice(update_words)
                updated = base.updated(
                    text=f"{base.text} {marker}", published_at=now
                )
                published[published.index(base)] = updated
                events.append(PublishEvent(time=now, document=updated, is_update=True))
            else:
                document = pending_new.pop(0)
                document = Document(
                    doc_id=document.doc_id,
                    url=document.url,
                    title=document.title,
                    text=document.text,
                    owner=document.owner,
                    links=document.links,
                    published_at=now,
                    version=1,
                )
                published.append(document)
                events.append(PublishEvent(time=now, document=document, is_update=False))
        return PublishWorkload(events=events)
