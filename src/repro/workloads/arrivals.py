"""Open-loop arrival processes for the serving experiments.

The benchmarks before E11 were *closed-loop*: the driver issues a query,
waits for the page, issues the next one.  A closed loop can never overload
anything — offered load adapts to service capacity by construction, which
is exactly the coordination real users do not do.  These generators produce
**open-loop** workloads: a list of ``(arrival_time, query)`` pairs fixed in
advance, independent of how the service performs, so queueing delay, load
shedding, and tail latency become observable.

Three arrival processes cover the serving scenarios:

* :class:`PoissonArrivals` — a homogeneous Poisson process (exponential
  inter-arrival gaps) at a constant rate; the steady-state baseline.
* :class:`DiurnalArrivals` — a non-homogeneous Poisson process whose rate
  follows a sinusoidal day curve (the classic traffic diurnal), realised by
  thinning a homogeneous process at the peak rate.
* :class:`FlashCrowdArrivals` — a piecewise-constant rate: baseline, then a
  burst multiplier over a window (the "front page of the internet" moment
  admission control exists for), then baseline again.

Queries are drawn from a fixed pool with Zipfian popularity — the same
repetition structure as :meth:`QueryWorkloadGenerator.generate_stream` —
so the result/posting caches see realistic reuse while arrival *times*
stress the queueing path.  All processes are deterministic given an RNG
(pass ``simulator.fork_rng(label)`` for reproducibility).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.errors import WorkloadError
from repro.workloads.zipf import ZipfSampler


@dataclass
class ArrivalWorkload:
    """An open-loop workload: queries pinned to absolute arrival times."""

    # (arrival_time, query), sorted by arrival_time ascending.
    arrivals: List[Tuple[float, str]] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.arrivals)

    def __iter__(self):
        return iter(self.arrivals)

    @property
    def horizon(self) -> float:
        """The last arrival time (0.0 when empty)."""
        return self.arrivals[-1][0] if self.arrivals else 0.0

    def offered_rate(self) -> float:
        """Arrivals per tick over the realised horizon (0.0 when degenerate)."""
        if len(self.arrivals) < 2 or self.horizon <= 0:
            return 0.0
        return len(self.arrivals) / self.horizon


class _ArrivalProcess:
    """Shared machinery: a Zipf-repeated query pool + time generation."""

    def __init__(
        self,
        queries: Sequence[str],
        rng: random.Random,
        repeat_exponent: float = 1.0,
    ) -> None:
        if not queries:
            raise WorkloadError("arrival generation needs a non-empty query pool")
        self.pool = list(queries)
        self.rng = rng
        self.popularity = ZipfSampler(len(self.pool), repeat_exponent, rng)

    def _pick_query(self) -> str:
        return self.pool[self.popularity.sample()]

    def _times(self, duration: float) -> List[float]:
        raise NotImplementedError

    def generate(self, duration: float) -> ArrivalWorkload:
        """Arrivals over ``[0, duration)``, each paired with a pool query."""
        if duration <= 0:
            raise WorkloadError(f"arrival duration must be positive, got {duration!r}")
        return ArrivalWorkload(
            arrivals=[(time, self._pick_query()) for time in self._times(duration)]
        )


class PoissonArrivals(_ArrivalProcess):
    """A homogeneous Poisson process at ``rate`` arrivals per tick."""

    def __init__(
        self,
        queries: Sequence[str],
        rate: float,
        rng: random.Random,
        repeat_exponent: float = 1.0,
    ) -> None:
        super().__init__(queries, rng, repeat_exponent)
        if rate <= 0:
            raise WorkloadError(f"arrival rate must be positive, got {rate!r}")
        self.rate = rate

    def _times(self, duration: float) -> List[float]:
        times: List[float] = []
        now = 0.0
        while True:
            now += self.rng.expovariate(self.rate)
            if now >= duration:
                return times
            times.append(now)


class DiurnalArrivals(_ArrivalProcess):
    """A non-homogeneous Poisson process with a sinusoidal day curve.

    The instantaneous rate is ``base_rate * (1 + amplitude * sin(2*pi*t /
    period))``, floored at zero.  Realised by **thinning**: candidate
    arrivals are drawn from a homogeneous process at the peak rate, and a
    candidate at time ``t`` is kept with probability ``rate(t) / peak`` —
    the standard exact simulation of a non-homogeneous Poisson process.
    """

    def __init__(
        self,
        queries: Sequence[str],
        base_rate: float,
        period: float,
        rng: random.Random,
        amplitude: float = 0.8,
        repeat_exponent: float = 1.0,
    ) -> None:
        super().__init__(queries, rng, repeat_exponent)
        if base_rate <= 0:
            raise WorkloadError(f"base rate must be positive, got {base_rate!r}")
        if period <= 0:
            raise WorkloadError(f"diurnal period must be positive, got {period!r}")
        if amplitude < 0:
            raise WorkloadError(f"amplitude must be non-negative, got {amplitude!r}")
        self.base_rate = base_rate
        self.period = period
        self.amplitude = amplitude

    def rate_at(self, time: float) -> float:
        """The instantaneous arrival rate at ``time`` (never negative)."""
        wave = 1.0 + self.amplitude * math.sin(2.0 * math.pi * time / self.period)
        return max(0.0, self.base_rate * wave)

    def _times(self, duration: float) -> List[float]:
        peak = self.base_rate * (1.0 + self.amplitude)
        times: List[float] = []
        now = 0.0
        while True:
            now += self.rng.expovariate(peak)
            if now >= duration:
                return times
            if self.rng.random() < self.rate_at(now) / peak:
                times.append(now)


class FlashCrowdArrivals(_ArrivalProcess):
    """Baseline Poisson traffic with a burst window at a rate multiple.

    Over ``[burst_start, burst_start + burst_duration)`` the rate jumps to
    ``base_rate * burst_factor``; outside it the baseline applies.  This is
    the overload scenario E11 measures: a correctly-admitted service sheds
    or degrades during the window and recovers after it, instead of letting
    an unbounded queue poison the post-burst tail.
    """

    def __init__(
        self,
        queries: Sequence[str],
        base_rate: float,
        burst_start: float,
        burst_duration: float,
        burst_factor: float,
        rng: random.Random,
        repeat_exponent: float = 1.0,
    ) -> None:
        super().__init__(queries, rng, repeat_exponent)
        if base_rate <= 0:
            raise WorkloadError(f"base rate must be positive, got {base_rate!r}")
        if burst_duration < 0 or burst_start < 0:
            raise WorkloadError("burst window must not be negative")
        if burst_factor < 1:
            raise WorkloadError(f"burst factor must be >= 1, got {burst_factor!r}")
        self.base_rate = base_rate
        self.burst_start = burst_start
        self.burst_duration = burst_duration
        self.burst_factor = burst_factor

    def rate_at(self, time: float) -> float:
        """The piecewise-constant arrival rate at ``time``."""
        in_burst = self.burst_start <= time < self.burst_start + self.burst_duration
        return self.base_rate * (self.burst_factor if in_burst else 1.0)

    def _times(self, duration: float) -> List[float]:
        # Piecewise-homogeneous: within each constant-rate segment draw
        # exponential gaps at that segment's rate; on crossing a boundary
        # re-draw from the boundary (memorylessness makes this exact).
        boundaries = sorted(
            point
            for point in (self.burst_start, self.burst_start + self.burst_duration)
            if 0.0 < point < duration
        )
        times: List[float] = []
        now = 0.0
        while now < duration:
            segment_end = next(
                (point for point in boundaries if point > now), duration
            )
            candidate = now + self.rng.expovariate(self.rate_at(now))
            if candidate >= segment_end:
                now = segment_end
                continue
            times.append(candidate)
            now = candidate
        return times
