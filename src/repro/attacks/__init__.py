"""Attacks on QueenBee, and the defenses the design anticipates.

Research challenge (II) of the paper: "this new model of decentralized search
engine may induce new attacks", naming two concretely:

* **Collusion attack** — "an attack from colluded worker bees that aim at
  manipulating QueenBee's indexes or page ranking data maliciously"
  (:mod:`repro.attacks.collusion`), defended by redundant task assignment
  with majority voting plus stake slashing.
* **Scraper-site attack** — "scrapper site attack may exist that tries to
  mirror popular websites for QueenBee's honey"
  (:mod:`repro.attacks.scraper`), defended by content-hash deduplication in
  the publish contract (first publisher of a CID owns it).

:mod:`repro.attacks.sybil` adds the classic Sybil amplification of the
collusion attack, and :mod:`repro.attacks.defenses` gathers the defense
evaluation helpers the E6/E7 benches use.
"""

from repro.attacks.collusion import CollusionAttack, CollusionOutcome
from repro.attacks.scraper import ScraperAttack, ScraperOutcome
from repro.attacks.sybil import SybilAttack, SybilOutcome
from repro.attacks.defenses import DefenseEvaluation, evaluate_rank_manipulation

__all__ = [
    "CollusionAttack",
    "CollusionOutcome",
    "ScraperAttack",
    "ScraperOutcome",
    "SybilAttack",
    "SybilOutcome",
    "DefenseEvaluation",
    "evaluate_rank_manipulation",
]
