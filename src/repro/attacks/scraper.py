"""The scraper-site attack: mirroring popular pages to farm honey.

"As popular webpages will gain QueenBee's honey, scrapper site attack may
exist that tries to mirror popular websites for QueenBee's honey."  The
scraper copies the text of the most popular pages verbatim and publishes the
copies under its own URLs, hoping to collect publish rewards and popularity
rewards for content it did not create.

Defense: the content registry's dedup rule.  Because DWeb content is
content-addressed, a verbatim mirror has *exactly the same CID* as the
original, and the registry rejects a publish whose CID was first registered
by a different owner.  A scraper can evade dedup by perturbing the text, but
then it no longer benefits from the original page's accumulated links, which
is what the E7 bench quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import AttackConfigError
from repro.core.engine import QueenBeeEngine
from repro.index.document import Document


@dataclass
class ScraperOutcome:
    """What the scraper achieved."""

    scraper: str
    pages_attempted: int = 0
    pages_accepted: int = 0
    pages_rejected: int = 0
    publish_honey_earned: int = 0
    popularity_honey_earned: int = 0
    victim_honey: Dict[str, int] = field(default_factory=dict)

    @property
    def total_honey_earned(self) -> int:
        return self.publish_honey_earned + self.popularity_honey_earned

    @property
    def acceptance_rate(self) -> float:
        if not self.pages_attempted:
            return 0.0
        return self.pages_accepted / self.pages_attempted


class ScraperAttack:
    """Mirrors the ``mirror_count`` most popular pages under a scraper identity.

    Parameters
    ----------
    engine:
        The deployment under attack (ranks must have been computed so the
        scraper knows which pages are popular).
    mirror_count:
        How many of the top-ranked pages to mirror.
    perturb:
        If true the scraper appends a marker to each mirrored page, changing
        its CID and thereby evading the dedup defense (at the cost of not
        being a byte-identical mirror).
    """

    def __init__(
        self,
        engine: QueenBeeEngine,
        mirror_count: int = 10,
        scraper_owner: str = "scraper-site",
        perturb: bool = False,
    ) -> None:
        if mirror_count < 1:
            raise AttackConfigError(f"mirror_count must be at least 1, got {mirror_count!r}")
        self.engine = engine
        self.mirror_count = mirror_count
        self.scraper_owner = scraper_owner
        self.perturb = perturb

    def pick_targets(self) -> List[Document]:
        """The most popular pages (by current page rank) to mirror."""
        ranks = self.engine.page_ranks()
        if not ranks:
            doc_ids = self.engine.documents.doc_ids()[: self.mirror_count]
        else:
            doc_ids = [
                doc_id for doc_id, _ in sorted(ranks.items(), key=lambda item: (-item[1], item[0]))
            ][: self.mirror_count]
        targets = []
        for doc_id in doc_ids:
            document = self.engine.documents.maybe_get(doc_id)
            if document is not None:
                targets.append(document)
        return targets

    def run(self, recompute_ranks: bool = True) -> ScraperOutcome:
        """Mirror the targets, optionally trigger a reward round, and account
        for the honey the scraper captured."""
        targets = self.pick_targets()
        outcome = ScraperOutcome(scraper=self.scraper_owner)
        honey_before = self.engine.contracts.honey_balance(self.scraper_owner)
        victims = {document.owner for document in targets}

        next_doc_id = (max(self.engine.documents.doc_ids()) + 1) if len(self.engine.documents) else 0
        for offset, original in enumerate(targets):
            text = original.text + " mirror" if self.perturb else original.text
            copy = Document(
                doc_id=next_doc_id + offset,
                url=f"dweb://{self.scraper_owner}/mirror-{original.doc_id:06d}",
                title=original.title,
                text=text,
                owner=self.scraper_owner,
                links=original.links,
                published_at=self.engine.simulator.now,
            )
            receipt = self.engine.publish_document(copy)
            outcome.pages_attempted += 1
            if receipt.accepted:
                outcome.pages_accepted += 1
            else:
                outcome.pages_rejected += 1

        publish_honey = self.engine.contracts.honey_balance(self.scraper_owner) - honey_before
        outcome.publish_honey_earned = max(0, publish_honey)

        if recompute_ranks:
            before_popularity = self.engine.contracts.honey_balance(self.scraper_owner)
            self.engine.compute_page_ranks()
            outcome.popularity_honey_earned = max(
                0, self.engine.contracts.honey_balance(self.scraper_owner) - before_popularity
            )

        outcome.victim_honey = {
            owner: self.engine.contracts.honey_balance(owner) for owner in sorted(victims)
        }
        return outcome
