"""The collusion attack: worker bees conspiring to manipulate page ranks.

Colluding workers agree on a target page and, whenever they execute a rank
task, inflate the contribution flowing to that page (and optionally also
poison index shards by injecting the target into popular terms' posting
lists).  Because every colluder applies the *same* manipulation, their
answers agree with each other — so the attack succeeds whenever colluders
form a majority of the replicas assigned to a task, which is exactly the
redundancy-vs-collusion trade-off E6 sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import AttackConfigError
from repro.core.engine import QueenBeeEngine
from repro.index.postings import PostingList
from repro.ranking.distributed import RankContribution, RankTask
from repro.ranking.pagerank import pagerank


@dataclass
class CollusionOutcome:
    """What the attack achieved in one rank round."""

    target_doc_id: int
    colluding_workers: List[str] = field(default_factory=list)
    honest_rank: float = 0.0
    observed_rank: float = 0.0
    rank_inflation: float = 0.0
    manipulation_succeeded: bool = False
    colluders_slashed: int = 0
    disputes_detected: int = 0

    @property
    def inflation_factor(self) -> float:
        if self.honest_rank <= 0:
            return 0.0
        return self.observed_rank / self.honest_rank


class CollusionAttack:
    """Installs colluding behaviour on a fraction of an engine's worker bees.

    Parameters
    ----------
    engine:
        The deployment under attack.
    colluding_fraction:
        Fraction of the worker pool that colludes.
    target_doc_id:
        The page whose rank the cartel wants to inflate.
    boost:
        Extra rank mass each colluder injects for the target per task.
    poison_index:
        Also tamper with index shards (adds the target to every term the
        colluder indexes, with an outsized term frequency).
    success_threshold:
        The attack is declared successful if the observed rank exceeds the
        honest rank by at least this multiplicative factor.
    """

    def __init__(
        self,
        engine: QueenBeeEngine,
        colluding_fraction: float,
        target_doc_id: int,
        boost: float = 0.05,
        poison_index: bool = False,
        success_threshold: float = 1.5,
    ) -> None:
        if not 0.0 <= colluding_fraction <= 1.0:
            raise AttackConfigError(
                f"colluding_fraction must be in [0, 1], got {colluding_fraction!r}"
            )
        if boost <= 0:
            raise AttackConfigError(f"boost must be positive, got {boost!r}")
        self.engine = engine
        self.colluding_fraction = colluding_fraction
        self.target_doc_id = target_doc_id
        self.boost = boost
        self.poison_index = poison_index
        self.success_threshold = success_threshold
        self.colluders: List[str] = []

    # -- installing the attack ---------------------------------------------------------

    def install(self) -> List[str]:
        """Turn the chosen fraction of workers malicious.  Returns their addresses."""
        workers = self.engine.workers
        count = int(round(len(workers) * self.colluding_fraction))
        rng = self.engine.simulator.fork_rng("collusion")
        chosen = rng.sample(workers, count) if count else []
        for worker in chosen:
            worker.rank_tamper = self._make_rank_tamper()
            if self.poison_index:
                worker.index_tamper = self._make_index_tamper()
        self.colluders = [worker.address for worker in chosen]
        return list(self.colluders)

    def uninstall(self) -> None:
        """Restore every worker to honest behaviour."""
        for worker in self.engine.workers:
            if worker.address in self.colluders:
                worker.rank_tamper = None
                worker.index_tamper = None
        self.colluders = []

    def _make_rank_tamper(self):
        target = self.target_doc_id
        boost = self.boost

        def tamper(task: RankTask, contribution: RankContribution) -> RankContribution:
            contribution.contributions[target] = contribution.contributions.get(target, 0.0) + boost
            return contribution

        return tamper

    def _make_index_tamper(self):
        target = self.target_doc_id

        def tamper(term: str, postings: PostingList) -> PostingList:
            postings.add(target, 50)
            return postings

        return tamper

    # -- running and measuring ------------------------------------------------------------

    def run(self, redundancy: Optional[int] = None) -> CollusionOutcome:
        """Execute one rank round under attack and measure the damage.

        The honest reference rank is computed centrally on the same link
        graph, so the comparison isolates the manipulation (not convergence
        noise).
        """
        if not self.colluders:
            self.install()
        honest = pagerank(
            self.engine.link_graph, damping=self.engine.config.rank_damping
        ).ranks.get(self.target_doc_id, 0.0)
        slashed_before = self.engine.stats.workers_slashed
        result = self.engine.compute_page_ranks(redundancy=redundancy)
        observed = result.ranks.get(self.target_doc_id, 0.0)
        outcome = CollusionOutcome(
            target_doc_id=self.target_doc_id,
            colluding_workers=list(self.colluders),
            honest_rank=honest,
            observed_rank=observed,
            rank_inflation=observed - honest,
            manipulation_succeeded=bool(honest > 0 and observed / honest >= self.success_threshold)
            or (honest == 0 and observed > 0),
            colluders_slashed=self.engine.stats.workers_slashed - slashed_before,
            disputes_detected=0,
        )
        return outcome
