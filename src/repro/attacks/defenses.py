"""Defense evaluation helpers.

The defenses themselves live where they act:

* redundant task assignment + majority voting — :mod:`repro.ranking.distributed`;
* stake slashing of out-voted workers — :meth:`repro.core.engine.QueenBeeEngine.compute_page_ranks`;
* content-hash deduplication against scraper sites — :mod:`repro.contracts.registry`;
* tamper-evident content — CID verification in :mod:`repro.storage`.

This module provides the sweep harness the attack experiments (E6/E7) use to
quantify how well those defenses work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.attacks.collusion import CollusionAttack, CollusionOutcome
from repro.core.engine import QueenBeeEngine


@dataclass
class DefenseEvaluation:
    """One cell of the collusion-vs-redundancy grid."""

    colluding_fraction: float
    redundancy: int
    manipulation_succeeded: bool
    inflation_factor: float
    colluders_slashed: int


def evaluate_rank_manipulation(
    engine_factory: Callable[[], Tuple[QueenBeeEngine, int]],
    colluding_fractions: Sequence[float],
    redundancies: Sequence[int],
    boost: float = 0.05,
) -> List[DefenseEvaluation]:
    """Sweep colluding fraction × redundancy and report attack success per cell.

    ``engine_factory`` must return a *fresh, bootstrapped* engine plus the
    target doc_id each time it is called, because an attacked engine's index
    and contract state are permanently altered by the attack.
    """
    evaluations: List[DefenseEvaluation] = []
    for fraction in colluding_fractions:
        for redundancy in redundancies:
            engine, target_doc_id = engine_factory()
            attack = CollusionAttack(
                engine,
                colluding_fraction=fraction,
                target_doc_id=target_doc_id,
                boost=boost,
            )
            outcome = attack.run(redundancy=redundancy)
            evaluations.append(
                DefenseEvaluation(
                    colluding_fraction=fraction,
                    redundancy=redundancy,
                    manipulation_succeeded=outcome.manipulation_succeeded,
                    inflation_factor=outcome.inflation_factor,
                    colluders_slashed=outcome.colluders_slashed,
                )
            )
    return evaluations


def success_rate_by_redundancy(
    evaluations: Sequence[DefenseEvaluation],
) -> Dict[int, float]:
    """Fraction of cells (across colluding fractions) where the attack succeeded,
    grouped by redundancy — the headline series of the E6 figure."""
    grouped: Dict[int, List[bool]] = {}
    for evaluation in evaluations:
        grouped.setdefault(evaluation.redundancy, []).append(evaluation.manipulation_succeeded)
    return {
        redundancy: (sum(successes) / len(successes) if successes else 0.0)
        for redundancy, successes in grouped.items()
    }
