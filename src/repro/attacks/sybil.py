"""Sybil amplification of the collusion attack.

A single adversary registers many cheap worker identities to raise the
probability that colluders form a majority of the replicas assigned to a
rank task.  The defense lever is economic: each identity must post the
minimum stake, so the cost of a Sybil army scales linearly with its size and
every detected identity forfeits its stake.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import AttackConfigError
from repro.core.engine import QueenBeeEngine
from repro.core.worker import WorkerBee
from repro.attacks.collusion import CollusionAttack, CollusionOutcome


@dataclass
class SybilOutcome:
    """Result of a Sybil-amplified collusion round."""

    sybil_identities: List[str] = field(default_factory=list)
    stake_committed: int = 0
    stake_lost: int = 0
    collusion: Optional[CollusionOutcome] = None

    @property
    def net_cost(self) -> int:
        return self.stake_lost


class SybilAttack:
    """Registers ``identity_count`` extra (malicious) worker bees and colludes."""

    def __init__(
        self,
        engine: QueenBeeEngine,
        identity_count: int,
        target_doc_id: int,
        boost: float = 0.05,
    ) -> None:
        if identity_count < 1:
            raise AttackConfigError(f"identity_count must be at least 1, got {identity_count!r}")
        self.engine = engine
        self.identity_count = identity_count
        self.target_doc_id = target_doc_id
        self.boost = boost
        self.identities: List[str] = []

    def register_identities(self) -> List[str]:
        """Create, fund, stake, and register the Sybil worker identities."""
        cfg = self.engine.config
        for i in range(self.identity_count):
            address = f"sybil-{i:03d}"
            self.engine.chain.fund_account(address, cfg.worker_funding)
            if not self.engine.contracts.register_worker(address, cfg.worker_stake):
                continue
            storage_peer = self.engine.storage.peer_addresses()[
                i % len(self.engine.storage.peer_addresses())
            ]
            worker = WorkerBee(
                address=address,
                index=self.engine.index,
                directory=self.engine.directory,
                analyzer=self.engine.analyzer,
                storage_peer=storage_peer,
                damping=cfg.rank_damping,
            )
            self.engine.workers.append(worker)
            self.identities.append(address)
        return list(self.identities)

    def run(self, redundancy: Optional[int] = None) -> SybilOutcome:
        """Register the Sybils, make them (and only them) collude, and attack."""
        if not self.identities:
            self.register_identities()
        cfg = self.engine.config
        outcome = SybilOutcome(
            sybil_identities=list(self.identities),
            stake_committed=cfg.worker_stake * len(self.identities),
        )
        attack = CollusionAttack(
            self.engine,
            colluding_fraction=0.0,  # install() is bypassed; we pick colluders explicitly
            target_doc_id=self.target_doc_id,
            boost=self.boost,
        )
        attack.colluders = list(self.identities)
        for worker in self.engine.workers:
            if worker.address in self.identities:
                worker.rank_tamper = attack._make_rank_tamper()
        outcome.collusion = attack.run(redundancy=redundancy)

        # Stake lost = stake of every Sybil identity that got slashed below activity.
        lost = 0
        for address in self.identities:
            info = self.engine.chain.query("workers", "worker_info", worker=address)
            lost += info.get("slashed", 0)
        outcome.stake_lost = lost
        return outcome
