"""Exception hierarchy shared by every QueenBee subsystem.

Keeping all exceptions in one module lets callers catch a single base class
(:class:`ReproError`) at system boundaries while still being able to handle
specific failures (e.g. :class:`KeyNotFoundError` from the DHT vs
:class:`ContractError` from the chain) close to where they occur.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class SimulationError(ReproError):
    """The discrete-event simulator was used incorrectly (e.g. time went backwards)."""


class NetworkError(ReproError):
    """A message could not be delivered by the simulated network."""


class NodeUnreachableError(NetworkError):
    """The destination peer is offline, partitioned away, or unknown."""


class RequestTimeoutError(NetworkError):
    """A resilient request exhausted its per-operation deadline budget."""


class RetriesExhaustedError(NetworkError):
    """A resilient request failed on every attempt its retry policy allowed."""


class DHTError(ReproError):
    """Base class for DHT failures."""


class KeyNotFoundError(DHTError):
    """A FIND_VALUE lookup terminated without locating the key."""


class RoutingError(DHTError):
    """The routing table cannot make progress towards the target ID."""


class StorageError(ReproError):
    """Base class for decentralized-storage failures."""


class BlockNotFoundError(StorageError):
    """No reachable provider holds the requested block."""


class InvalidCIDError(StorageError):
    """A CID string is malformed or its digest does not match the content."""


class ChainError(ReproError):
    """Base class for blockchain failures."""


class InvalidTransactionError(ChainError):
    """A transaction failed validation (bad nonce, bad signature, insufficient funds)."""


class ContractError(ChainError):
    """A smart-contract call reverted."""


class InsufficientFundsError(ContractError):
    """An account attempted to spend more honey/wei than it holds."""


class IndexError_(ReproError):
    """Base class for inverted-index failures (named with a trailing underscore
    to avoid shadowing the builtin :class:`IndexError`)."""


class TermNotFoundError(IndexError_):
    """The distributed index has no posting list for the requested term."""


class SearchError(ReproError):
    """The query frontend could not execute a query."""


class QueryParseError(SearchError):
    """The query string is syntactically invalid."""


class IncentiveError(ReproError):
    """An incentive policy was configured or applied incorrectly."""


class AttackConfigError(ReproError):
    """An attack scenario was configured with impossible parameters."""


class WorkloadError(ReproError):
    """A workload generator received invalid parameters."""
