"""The central registry of every QueenBee deployment knob.

This module is the *schema* behind :class:`repro.core.config.QueenBeeConfig`:
one :class:`Knob` declaration per tunable, grouped by section, with the
type and default the dataclass carries.  Two enforcement arms consume it:

* **Statically**, repro-lint rule RL005 checks that every attribute read on
  a config object names a declared knob — a typo'd read
  (``config.gossip_interal``) becomes a lint error instead of a silent
  ``getattr`` fallback.
* **At runtime**, :func:`check_unknown_knobs` rejects dict-shaped knob
  overrides whose keys the registry does not know
  (:meth:`QueenBeeConfig.from_dict` and the engine boot path use it), so a
  misspelled knob in an experiment script fails loudly instead of being
  ignored.

A unit test asserts the registry and the dataclass agree field-for-field
(names *and* defaults), so the two cannot drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Tuple


@dataclass(frozen=True)
class Knob:
    """One declared deployment tunable."""

    name: str
    type: type
    default: object
    section: str
    doc: str


def _knobs(section: str, *entries: Tuple[str, type, object, str]) -> Tuple[Knob, ...]:
    return tuple(Knob(name, type_, default, section, doc) for name, type_, default, doc in entries)


KNOBS: Tuple[Knob, ...] = (
    *_knobs(
        "simulation",
        ("seed", int, 0, "Master seed every RNG stream derives from."),
    ),
    *_knobs(
        "network",
        ("peer_count", int, 32, "Peers in the overlay (each a DHT node and storage peer)."),
        ("worker_count", int, 8, "Peers that volunteer as worker bees."),
        ("latency_median", float, 25.0, "Median one-way link latency (ticks)."),
        ("latency_sigma", float, 0.45, "Log-normal sigma of link latency."),
        ("loss_rate", float, 0.0, "Probability an RPC is dropped."),
    ),
    *_knobs(
        "resilience",
        ("rpc_timeout", float, 0.0, "Ticks charged per lost RPC (0 = legacy sampled round trip)."),
        ("rpc_retries", int, 1, "Attempts per resilient RPC (1 = no retry)."),
        ("retry_backoff", float, 0.0, "Base backoff before attempt 2 (ticks, doubling)."),
        ("retry_jitter", float, 0.0, "± fraction of deterministic jitter per backoff."),
        ("retry_deadline", float, 0.0, "Per-operation retry deadline budget (0 = unbounded)."),
        ("hedged_fetches", bool, False, "Hedge block fetches across two providers."),
        ("failure_detector", bool, True, "Local liveness from RPC outcomes (False = oracle ablation)."),
        ("detector_threshold", int, 3, "Net failures before a peer is suspected."),
        ("detector_probe_after", float, 2_000.0, "Ticks until a suspected peer is re-probed (0 = never)."),
    ),
    *_knobs(
        "dht",
        ("dht_k", int, 8, "Kademlia bucket size."),
        ("dht_alpha", int, 3, "Concurrent lookups per round."),
        ("dht_replicate", int, 4, "Record replication factor."),
    ),
    *_knobs(
        "storage",
        ("storage_replication", int, 3, "Default content replication factor."),
        ("chunk_size", int, 8_192, "Content chunk size in bytes."),
        ("storage_backend", str, "memory", "Per-peer block-store medium: 'memory' or 'sqlite'."),
        ("storage_path", str, "", "Directory for on-disk backend files ('' = per-run temp dir)."),
    ),
    *_knobs(
        "index",
        ("compress_index", bool, True, "Varint/delta-compress posting shards."),
        ("top_k", int, 10, "Results per page."),
        ("posting_cache_capacity", int, 256, "LRU posting-cache capacity in shards (0 = off)."),
        ("cache_validation", bool, True, "Validate cached shards against manifest generations."),
        ("index_shard_size", int, 128, "Max postings per doc-id-range shard (0 = unsharded)."),
        ("index_placement", bool, True, "Provider-record-aware shard placement."),
        ("placement_replication_factor", int, 0, "Providers per placed shard (0 = inherit)."),
        ("placement_repair_floor", int, 0, "Live providers below which repair kicks in."),
        ("placement_repair_grace", float, 0.0, "Flap-debounce window before repair (ticks)."),
        ("placement_repair_budget", int, 0, "Max repairs per churn event (0 = unbounded)."),
        ("delta_publication", bool, True, "Publish per-generation patches next to full artifacts."),
        ("rank_delta_bands", int, 8, "Doc-id bands per rank-vector publication (0 = wholesale)."),
        ("delta_max_ratio", float, 0.5, "Max patch/full size ratio before falling back to full."),
    ),
    *_knobs(
        "metadata_plane",
        ("metadata_plane", str, "shared", 'Frontend metadata source: "shared" or "gossip".'),
        ("gossip_fanout", int, 3, "Push/pull exchanges per peer per gossip round."),
        ("gossip_interval", float, 500.0, "Ticks between scheduled gossip rounds."),
        ("publish_rank_ceilings", bool, True, "Stamp per-shard rank ceilings into manifests."),
    ),
    *_knobs(
        "ranking",
        ("rank_redundancy", int, 3, "Workers per rank task (vote redundancy)."),
        ("rank_damping", float, 0.85, "PageRank damping factor."),
        ("rank_max_iterations", int, 30, "PageRank iteration cap."),
        ("rank_tolerance", float, 1e-6, "PageRank convergence tolerance."),
    ),
    *_knobs(
        "chain",
        ("block_interval", float, 1_000.0, "Ticks between mined blocks."),
        ("min_worker_stake", int, 1_000, "Stake required to register as a worker."),
        ("publish_reward", int, 10, "Honey minted per accepted publish."),
        ("task_reward", int, 5, "Honey per completed worker task."),
        ("popularity_policy", str, "threshold", "Popularity reward policy."),
        ("rank_threshold", float, 0.001, "Min rank mass for popularity rewards."),
        ("popularity_budget", int, 10_000, "Honey budget per popularity round."),
        ("creator_share", float, 0.6, "Creator share of popularity rewards."),
        ("worker_share", float, 0.3, "Worker share of popularity rewards."),
        ("treasury_share", float, 0.1, "Treasury share of popularity rewards."),
        ("dedup_enabled", bool, True, "Reject duplicate-content publishes."),
        ("creator_funding", int, 10**9, "Initial creator account funding."),
        ("worker_funding", int, 10**7, "Initial worker account funding."),
        ("worker_stake", int, 2_000, "Stake each worker actually posts."),
    ),
    *_knobs(
        "frontend",
        ("max_ads", int, 2, "Ad slots per result page."),
        ("planning_strategy", str, "rarest_first", "Query-planner term ordering."),
        ("execution_mode", str, "maxscore", 'Top-k engine: "maxscore" or "taat".'),
        ("overlapped_prefetch", bool, True, "Concurrent manifest/shard prefetch."),
        ("result_cache_capacity", int, 0, "Frontend result-cache capacity in pages (0 = off)."),
        ("result_cache_loose_keys", bool, False, "Bucketized statistics in result-cache keys."),
        ("vectorized_scoring", bool, False, "Numpy array decode/score hot loops (scalar = reference)."),
    ),
)

KNOBS_BY_NAME: Dict[str, Knob] = {knob.name: knob for knob in KNOBS}
KNOB_NAMES = frozenset(KNOBS_BY_NAME)


class UnknownConfigKnobError(ValueError):
    """A config override named a knob the schema does not declare."""


def check_unknown_knobs(names: Iterable[str]) -> None:
    """Raise :class:`UnknownConfigKnobError` for any undeclared knob name.

    The error message suggests close matches so a typo'd experiment script
    fails with something actionable.
    """
    unknown = sorted(set(names) - KNOB_NAMES)
    if not unknown:
        return
    import difflib

    hints = []
    for name in unknown:
        close = difflib.get_close_matches(name, KNOB_NAMES, n=1)
        hints.append(f"{name!r}" + (f" (did you mean {close[0]!r}?)" if close else ""))
    raise UnknownConfigKnobError(
        "unknown config knob(s): " + ", ".join(hints) + " — every knob must be declared "
        "in repro/config_schema.py"
    )


def defaults() -> Dict[str, object]:
    """The declared default for every knob (the schema's view of a config)."""
    return {knob.name: knob.default for knob in KNOBS}
