"""Incentive analysis.

Research challenge (I) of the paper: "A fair incentive scheme for all
stakeholders".  The on-chain mechanics live in :mod:`repro.contracts`; this
package provides the analysis side — reward policies as standalone objects,
fairness metrics (Gini, entropy, Lorenz points), revenue accounting, and an
economy simulation that drives a whole QueenBee deployment through epochs of
publishing, searching, clicking, and reward distribution.
"""

from repro.incentives.policy import ProportionalPolicy, RewardPolicy, ThresholdPolicy
from repro.incentives.fairness import gini_coefficient, lorenz_points, reward_entropy
from repro.incentives.economics import EconomyReport, RevenueBreakdown
from repro.incentives.simulation import EconomySimulation, EpochSummary

__all__ = [
    "RewardPolicy",
    "ThresholdPolicy",
    "ProportionalPolicy",
    "gini_coefficient",
    "lorenz_points",
    "reward_entropy",
    "EconomyReport",
    "RevenueBreakdown",
    "EconomySimulation",
    "EpochSummary",
]
