"""Revenue and honey accounting across the QueenBee ecosystem."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping

from repro.contracts.queenbee import QueenBeeContracts
from repro.incentives.fairness import gini_coefficient


@dataclass
class RevenueBreakdown:
    """Where the native-currency ad revenue went."""

    creators: int = 0
    workers: int = 0
    treasury: int = 0

    @property
    def total(self) -> int:
        return self.creators + self.workers + self.treasury

    def shares(self) -> Dict[str, float]:
        total = self.total
        if total == 0:
            return {"creators": 0.0, "workers": 0.0, "treasury": 0.0}
        return {
            "creators": self.creators / total,
            "workers": self.workers / total,
            "treasury": self.treasury / total,
        }


@dataclass
class EconomyReport:
    """A snapshot of the whole incentive system at one moment."""

    honey_by_account: Dict[str, int] = field(default_factory=dict)
    honey_supply: int = 0
    revenue: RevenueBreakdown = field(default_factory=RevenueBreakdown)
    creator_honey: Dict[str, int] = field(default_factory=dict)
    worker_honey: Dict[str, int] = field(default_factory=dict)

    @property
    def creator_gini(self) -> float:
        return gini_coefficient(list(self.creator_honey.values()))

    @property
    def worker_gini(self) -> float:
        return gini_coefficient(list(self.worker_honey.values()))

    def honey_of_role(self, role_prefix: str) -> int:
        """Total honey held by accounts whose name starts with ``role_prefix``."""
        return sum(
            amount for account, amount in self.honey_by_account.items()
            if account.startswith(role_prefix)
        )


def build_economy_report(
    contracts: QueenBeeContracts,
    creators: Mapping[str, object] = (),
    workers: Mapping[str, object] = (),
) -> EconomyReport:
    """Assemble an :class:`EconomyReport` from on-chain state.

    ``creators`` / ``workers`` are iterables of account names used to slice
    the honey distribution by role; unknown accounts are simply reported in
    the global map.
    """
    holders = contracts.honey_holders()
    revenue_summary = contracts.chain.query("ads", "revenue_summary")
    supply = contracts.chain.query("honey", "total_supply")
    creator_set = set(creators)
    worker_set = set(workers)
    return EconomyReport(
        honey_by_account=dict(holders),
        honey_supply=supply,
        revenue=RevenueBreakdown(
            creators=revenue_summary.get("creators", 0),
            workers=revenue_summary.get("workers", 0),
            treasury=revenue_summary.get("treasury", 0),
        ),
        creator_honey={c: holders.get(c, 0) for c in sorted(creator_set)},
        worker_honey={w: holders.get(w, 0) for w in sorted(worker_set)},
    )
