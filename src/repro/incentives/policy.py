"""Reward policies as standalone, analyzable objects.

The on-chain :class:`~repro.contracts.rewards.RewardScheme` implements the
same two policies; having them here as pure functions of a rank vector lets
the fairness experiment sweep parameters without redeploying contracts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from repro.errors import IncentiveError


class RewardPolicy:
    """Base class: distribute a honey budget over owners given their rank mass."""

    def distribute(self, owner_ranks: Mapping[str, float], budget: int) -> Dict[str, int]:
        raise NotImplementedError


@dataclass
class ThresholdPolicy(RewardPolicy):
    """The paper's suggestion: owners whose rank mass exceeds a threshold split
    the budget equally.

    Simple and sybil-resistant for the long tail (tail pages earn nothing),
    but it is a cliff: an owner just below the threshold earns nothing while
    one just above earns a full share.
    """

    threshold: float = 0.001

    def distribute(self, owner_ranks: Mapping[str, float], budget: int) -> Dict[str, int]:
        if budget < 0:
            raise IncentiveError(f"budget must be non-negative, got {budget!r}")
        qualifying = sorted(owner for owner, rank in owner_ranks.items() if rank >= self.threshold)
        if not qualifying or budget == 0:
            return {}
        share = budget // len(qualifying)
        if share == 0:
            return {}
        return {owner: share for owner in qualifying}


@dataclass
class ProportionalPolicy(RewardPolicy):
    """Each owner earns in proportion to its rank mass (no cliff, but the head
    of the popularity distribution captures most of the budget)."""

    minimum_payout: int = 1

    def distribute(self, owner_ranks: Mapping[str, float], budget: int) -> Dict[str, int]:
        if budget < 0:
            raise IncentiveError(f"budget must be non-negative, got {budget!r}")
        total = sum(owner_ranks.values())
        if total <= 0 or budget == 0:
            return {}
        payouts: Dict[str, int] = {}
        for owner, rank in sorted(owner_ranks.items()):
            amount = int(budget * (rank / total))
            if amount >= self.minimum_payout:
                payouts[owner] = amount
        return payouts
