"""The economy simulation: epochs of publishing, searching, clicking, rewarding.

This drives a full QueenBee deployment the way the paper imagines it being
used — creators keep publishing, users keep searching and occasionally click
ads, worker bees keep the index and ranks fresh, and the contracts keep
paying everyone — and then reports who ended up with the honey and the ad
revenue (experiments E5 and E9).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.engine import QueenBeeEngine
from repro.incentives.economics import EconomyReport, build_economy_report
from repro.index.document import Document
from repro.workloads.queries import QueryWorkloadGenerator


@dataclass
class EpochSummary:
    """What happened during one simulated epoch."""

    epoch: int
    documents_published: int = 0
    queries_run: int = 0
    ad_clicks: int = 0
    honey_minted: int = 0
    popularity_payouts: Dict[str, int] = field(default_factory=dict)


class EconomySimulation:
    """Runs epochs against an engine and snapshots the economy afterwards."""

    def __init__(
        self,
        engine: QueenBeeEngine,
        documents: Sequence[Document],
        queries_per_epoch: int = 20,
        publishes_per_epoch: int = 10,
        click_probability: float = 0.3,
        ad_keywords: Optional[List[str]] = None,
        ad_budget: int = 100_000,
        ad_bid: int = 100,
        seed: int = 0,
    ) -> None:
        self.engine = engine
        self.documents = list(documents)
        self.queries_per_epoch = queries_per_epoch
        self.publishes_per_epoch = publishes_per_epoch
        self.click_probability = click_probability
        self.ad_keywords = ad_keywords or ["decentralized", "search", "crypto"]
        self.ad_budget = ad_budget
        self.ad_bid = ad_bid
        self.rng = engine.simulator.fork_rng(f"economy-{seed}")
        self.epochs: List[EpochSummary] = []
        self._publish_cursor = 0
        self._query_generator: Optional[QueryWorkloadGenerator] = None
        self._advertiser = "advertiser-000"
        self._ad_ids: List[int] = []

    # -- setup -----------------------------------------------------------------------

    def bootstrap(self, initial_documents: int) -> None:
        """Publish the initial corpus slice and place the ad campaigns."""
        initial = self.documents[:initial_documents]
        self._publish_cursor = initial_documents
        self.engine.bootstrap_corpus(initial)
        self.engine.compute_page_ranks()
        self._query_generator = QueryWorkloadGenerator(
            initial or self.documents, analyzer=self.engine.analyzer, seed=self.rng.randrange(1 << 30)
        )
        self.engine.chain.fund_account(self._advertiser, 10**12)
        for keyword in self.ad_keywords:
            ad_id = self.engine.contracts.place_ad(
                self._advertiser, [keyword], budget=self.ad_budget, bid_per_click=self.ad_bid
            )
            if ad_id is not None:
                self._ad_ids.append(ad_id)

    # -- the epoch loop ----------------------------------------------------------------

    def run_epoch(self) -> EpochSummary:
        """One epoch: publish new pages, serve queries (with clicks), pay rewards."""
        epoch = EpochSummary(epoch=len(self.epochs) + 1)
        supply_before = self.engine.chain.query("honey", "total_supply")

        # Creators publish.
        for _ in range(self.publishes_per_epoch):
            if self._publish_cursor >= len(self.documents):
                break
            document = self.documents[self._publish_cursor]
            self._publish_cursor += 1
            receipt = self.engine.publish_document(document)
            if receipt.accepted:
                epoch.documents_published += 1

        # Users search and sometimes click an ad next to a result.
        frontend = self.engine.create_frontend()
        if self._query_generator is None:
            self._query_generator = QueryWorkloadGenerator(
                self.documents, analyzer=self.engine.analyzer, seed=0
            )
        for query in self._query_generator.generate(self.queries_per_epoch):
            page = self.engine.search(query, frontend=frontend)
            epoch.queries_run += 1
            if page.ads and page.results and self.rng.random() < self.click_probability:
                ad = page.ads[0]
                top_result = page.results[0]
                worker = self.rng.choice(self.engine.workers)
                outcome = self.engine.contracts.click_ad(
                    ad.ad_id, creator=top_result.owner or "unknown-creator", worker=worker.address
                )
                if outcome:
                    epoch.ad_clicks += 1

        # Worker bees recompute page ranks; the engine's rank round already
        # pays the popularity rewards through the contract.
        self.engine.compute_page_ranks()
        epoch.popularity_payouts = dict(self.engine.last_popularity_payouts)
        supply_after = self.engine.chain.query("honey", "total_supply")
        epoch.honey_minted = supply_after - supply_before
        self.epochs.append(epoch)
        return epoch

    def run(self, epochs: int, initial_documents: Optional[int] = None) -> List[EpochSummary]:
        """Bootstrap (if needed) and run ``epochs`` epochs."""
        if initial_documents is not None:
            self.bootstrap(initial_documents)
        return [self.run_epoch() for _ in range(epochs)]

    # -- reporting ---------------------------------------------------------------------------

    def report(self) -> EconomyReport:
        """Snapshot the economy (honey distribution, revenue shares) right now."""
        creators = sorted({document.owner for document in self.documents})
        workers = [worker.address for worker in self.engine.workers]
        return build_economy_report(self.engine.contracts, creators=creators, workers=workers)
