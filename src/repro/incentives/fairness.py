"""Fairness metrics over reward distributions."""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Sequence, Tuple


def gini_coefficient(amounts: Sequence[float]) -> float:
    """Gini coefficient of a distribution (0 = perfectly equal, 1 = one winner).

    An empty or all-zero distribution is defined as perfectly equal (0.0).
    """
    values = sorted(float(v) for v in amounts if v >= 0)
    n = len(values)
    total = sum(values)
    if n == 0 or total == 0:
        return 0.0
    weighted = sum((index + 1) * value for index, value in enumerate(values))
    return (2.0 * weighted) / (n * total) - (n + 1.0) / n


def lorenz_points(amounts: Sequence[float]) -> List[Tuple[float, float]]:
    """Points of the Lorenz curve: (population fraction, reward fraction)."""
    values = sorted(float(v) for v in amounts if v >= 0)
    total = sum(values)
    points: List[Tuple[float, float]] = [(0.0, 0.0)]
    if not values or total == 0:
        points.append((1.0, 1.0))
        return points
    running = 0.0
    for index, value in enumerate(values, start=1):
        running += value
        points.append((index / len(values), running / total))
    return points


def reward_entropy(amounts: Sequence[float]) -> float:
    """Normalized Shannon entropy of the reward shares (1 = perfectly even)."""
    values = [float(v) for v in amounts if v > 0]
    total = sum(values)
    if len(values) <= 1 or total == 0:
        return 1.0 if len(values) <= 1 else 0.0
    entropy = -sum((v / total) * math.log(v / total) for v in values)
    return entropy / math.log(len(values))


def coverage(payouts: Mapping[str, float], population: Sequence[str]) -> float:
    """Fraction of the population that received any reward at all."""
    if not population:
        return 0.0
    paid = sum(1 for member in population if payouts.get(member, 0) > 0)
    return paid / len(population)
