"""QueenBee: a reproduction of "Decentralized Search on Decentralized Web"
(Lai et al., CIDR 2019).

The public API re-exports the objects most users need:

* :class:`~repro.core.engine.QueenBeeEngine` / :class:`~repro.core.config.QueenBeeConfig`
  — build and drive a whole simulated deployment.
* :class:`~repro.workloads.corpus.CorpusGenerator` and friends — synthetic
  DWeb corpora, link graphs, query and publish workloads.
* The substrates (:mod:`repro.dht`, :mod:`repro.storage`, :mod:`repro.chain`,
  :mod:`repro.contracts`) for users who want to build on the pieces directly.
* The baselines (:mod:`repro.baselines`) and attacks (:mod:`repro.attacks`)
  used in the experiment suite.

See README.md for a quickstart and EXPERIMENTS.md for the reproduction of the
paper's claims.
"""

from repro.core.config import QueenBeeConfig
from repro.core.engine import QueenBeeEngine
from repro.index.document import Document
from repro.search.results import ResultPage, SearchResult
from repro.workloads.corpus import CorpusGenerator, GeneratedCorpus
from repro.workloads.queries import QueryWorkloadGenerator
from repro.workloads.updates import PublishWorkloadGenerator

__version__ = "0.1.0"

__all__ = [
    "QueenBeeConfig",
    "QueenBeeEngine",
    "Document",
    "ResultPage",
    "SearchResult",
    "CorpusGenerator",
    "GeneratedCorpus",
    "QueryWorkloadGenerator",
    "PublishWorkloadGenerator",
    "__version__",
]
