"""Kademlia distributed hash table.

The DHT is the lookup substrate the paper's decentralized storage (IPFS [1])
relies on: provider records, the distributed inverted-index shard directory,
and page-rank partition directories are all stored under content keys here.

The implementation is a faithful, single-process Kademlia: 160-bit node IDs,
XOR distance, k-buckets with least-recently-seen eviction, and iterative
``FIND_NODE`` / ``FIND_VALUE`` lookups with parallelism ``alpha``.  All
messages travel over :class:`repro.net.SimulatedNetwork`, so lookups cost
simulated latency and show up in the network statistics.
"""

from repro.dht.nodeid import ID_BITS, distance, key_to_id, random_node_id
from repro.dht.routing import Contact, KBucket, RoutingTable
from repro.dht.node import KademliaNode
from repro.dht.lookup import LookupResult
from repro.dht.dht import DHTNetwork
from repro.dht.republish import Republisher

__all__ = [
    "ID_BITS",
    "key_to_id",
    "random_node_id",
    "distance",
    "Contact",
    "KBucket",
    "RoutingTable",
    "KademliaNode",
    "LookupResult",
    "DHTNetwork",
    "Republisher",
]
