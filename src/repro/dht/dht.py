"""A whole DHT overlay: node creation, bootstrap, and a put/get facade.

Higher layers (decentralized storage, the distributed inverted index, the
page-rank directory) use :class:`DHTNetwork` as "the DHT": they call
:meth:`put` / :meth:`get` / :meth:`add_to_set` / :meth:`get_set` with string
keys and never deal with individual Kademlia nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import KeyNotFoundError
from repro.dht.lookup import find_node, find_value
from repro.dht.node import KademliaNode
from repro.dht.nodeid import key_to_id, random_node_id
from repro.dht.routing import Contact
from repro.net.network import SimulatedNetwork
from repro.sim.simulator import Simulator


@dataclass
class DHTStats:
    """Counters used by the scalability experiment (E4)."""

    lookups: int = 0
    total_rounds: int = 0
    total_contacted: int = 0
    failed_lookups: int = 0
    stores: int = 0
    per_lookup_rounds: List[int] = field(default_factory=list)

    @property
    def mean_rounds(self) -> float:
        return self.total_rounds / self.lookups if self.lookups else 0.0

    @property
    def mean_contacted(self) -> float:
        return self.total_contacted / self.lookups if self.lookups else 0.0

    def reset(self) -> None:
        self.lookups = 0
        self.total_rounds = 0
        self.total_contacted = 0
        self.failed_lookups = 0
        self.stores = 0
        self.per_lookup_rounds.clear()


class DHTNetwork:
    """A set of Kademlia nodes sharing one simulated network.

    Parameters
    ----------
    simulator / network:
        Simulation substrate.  The caller may share the network with other
        subsystems (storage peers, the chain) or dedicate one to the DHT.
    k:
        Bucket size and replication factor for stored values.
    alpha:
        Lookup parallelism.
    replicate:
        Number of closest nodes each value is stored on (defaults to ``k``,
        capped at the network size).
    """

    def __init__(
        self,
        simulator: Simulator,
        network: Optional[SimulatedNetwork] = None,
        k: int = 20,
        alpha: int = 3,
        replicate: Optional[int] = None,
    ) -> None:
        self.simulator = simulator
        self.network = network or SimulatedNetwork(simulator)
        self.k = k
        self.alpha = alpha
        self.replicate = replicate if replicate is not None else k
        self.nodes: Dict[str, KademliaNode] = {}
        self.stats = DHTStats()
        self._rng = simulator.fork_rng("dht")

    # -- membership ----------------------------------------------------------

    def add_node(self, address: Optional[str] = None, node_id: Optional[int] = None) -> KademliaNode:
        """Create a node, register it on the network, and bootstrap its routing table."""
        if address is None:
            address = f"dht-{len(self.nodes)}"
        if node_id is None:
            node_id = random_node_id(self._rng)
        node = KademliaNode(node_id, address, self.network, k=self.k)
        if self.nodes:
            bootstrap = self._rng.choice(list(self.nodes.values()))
            node.routing_table.update(bootstrap.as_contact())
            bootstrap.routing_table.update(node.as_contact())
            # Standard join: look up our own ID to populate routing tables on the path.
            result = find_node(node, node.node_id, k=self.k, alpha=self.alpha)
            for contact in result.closest:
                node.routing_table.update(contact)
        self.nodes[address] = node
        return node

    def build(self, count: int) -> List[KademliaNode]:
        """Create ``count`` nodes and return them."""
        return [self.add_node() for _ in range(count)]

    def remove_node(self, address: str) -> None:
        """Take a node off the network (crash)."""
        node = self.nodes.pop(address, None)
        if node is not None:
            self.network.unregister(address)

    def refresh_routing(self) -> int:
        """Re-seed routing tables and re-run the join lookup on every node.

        The sim-level stand-in for Kademlia's periodic bucket refresh.
        After an outage (a partition, a fault-injection window) failed
        lookups have evicted contacts wholesale, and a node whose table
        emptied cannot recover on its own — real deployments re-learn
        peers on the next bucket-refresh cycle.  Each online node is
        re-seeded with one known contact and then looks its own ID up,
        repopulating tables along the lookup path.  Deterministic (sorted
        iteration, no RNG) so recovery scenarios replay exactly.  Returns
        the number of nodes refreshed.
        """
        online = [
            node
            for address, node in sorted(self.nodes.items())
            if self.network.is_online(address)
        ]
        if len(online) < 2:
            return len(online)
        for index, node in enumerate(online):
            seed = online[(index + 1) % len(online)]
            node.routing_table.update(seed.as_contact())
            result = find_node(node, node.node_id, k=self.k, alpha=self.alpha)
            for contact in result.closest:
                node.routing_table.update(contact)
        return len(online)

    def node_addresses(self) -> List[str]:
        return sorted(self.nodes)

    def random_node(self) -> KademliaNode:
        """A random *online* node to originate a lookup from (client behaviour)."""
        online = [n for a, n in self.nodes.items() if self.network.is_online(a)]
        if not online:
            raise KeyNotFoundError("no online DHT nodes available")
        return self._rng.choice(online)

    # -- storage facade -------------------------------------------------------

    def put(self, key: str, value: Any, origin: Optional[KademliaNode] = None) -> int:
        """Store ``value`` on the ``replicate`` nodes closest to ``key``.

        Returns the number of replicas successfully written.
        """
        origin = origin or self.random_node()
        target = key_to_id(key)
        result = find_node(origin, target, k=self.k, alpha=self.alpha)
        self._record_lookup(result.rounds, result.contacted, failed=False)
        stored = 0
        replicas = result.closest[: self.replicate] or [origin.as_contact()]
        for contact in replicas:
            if contact.address == origin.address:
                origin.local_store(target, value)
                stored += 1
            elif origin.store_at(contact, target, value):
                stored += 1
        self.stats.stores += 1
        return stored

    def get(self, key: str, origin: Optional[KademliaNode] = None) -> Any:
        """Fetch the value stored under ``key``.  Raises :class:`KeyNotFoundError`."""
        origin = origin or self.random_node()
        target = key_to_id(key)
        result = find_value(origin, target, k=self.k, alpha=self.alpha)
        self._record_lookup(result.rounds, result.contacted, failed=not result.found)
        if not result.found:
            raise KeyNotFoundError(f"key {key!r} not found in the DHT")
        return result.value

    def add_to_set(self, key: str, item: Any, origin: Optional[KademliaNode] = None) -> int:
        """Add ``item`` to the multi-writer set stored under ``key``."""
        origin = origin or self.random_node()
        target = key_to_id(key)
        result = find_node(origin, target, k=self.k, alpha=self.alpha)
        self._record_lookup(result.rounds, result.contacted, failed=False)
        stored = 0
        replicas = result.closest[: self.replicate] or [origin.as_contact()]
        for contact in replicas:
            if contact.address == origin.address:
                origin.sets.setdefault(target, set()).add(item)
                stored += 1
            elif origin.append_at(contact, target, item):
                stored += 1
        self.stats.stores += 1
        return stored

    def get_set(self, key: str, origin: Optional[KademliaNode] = None) -> List[Any]:
        """Fetch the set stored under ``key`` (empty list if absent)."""
        origin = origin or self.random_node()
        target = key_to_id(key)
        result = find_value(origin, target, k=self.k, alpha=self.alpha)
        self._record_lookup(result.rounds, result.contacted, failed=not result.found)
        if not result.found:
            return []
        return list(result.items or [])

    def contains(self, key: str, origin: Optional[KademliaNode] = None) -> bool:
        """Whether a value or set exists under ``key`` (without raising)."""
        try:
            self.get(key, origin=origin)
        except KeyNotFoundError:
            return False
        return True

    # -- introspection --------------------------------------------------------

    def total_stored_bytes(self) -> int:
        return sum(node.storage_bytes() for node in self.nodes.values())

    def _record_lookup(self, rounds: int, contacted: int, failed: bool) -> None:
        self.stats.lookups += 1
        self.stats.total_rounds += rounds
        self.stats.total_contacted += contacted
        self.stats.per_lookup_rounds.append(rounds)
        if failed:
            self.stats.failed_lookups += 1
