"""Periodic republishing of DHT values.

Kademlia keeps values alive under churn by having the publisher (and the
storing nodes) re-store them periodically.  QueenBee relies on this so index
shards and provider records survive worker-bee departures; the resilience
experiment (E3) exercises it.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.dht.dht import DHTNetwork
from repro.sim.simulator import Simulator


class Republisher:
    """Re-stores a set of key/value pairs on a fixed period.

    The republisher tracks the authoritative copy of each value it is
    responsible for (the publisher role in Kademlia).  Each period it writes
    every tracked value back into the DHT, repairing replicas lost to churn.
    """

    def __init__(
        self,
        simulator: Simulator,
        dht: DHTNetwork,
        period: float = 5_000.0,
    ) -> None:
        if period <= 0:
            raise ValueError(f"republish period must be positive, got {period!r}")
        self.simulator = simulator
        self.dht = dht
        self.period = period
        self.tracked_values: Dict[str, Any] = {}
        self.tracked_sets: Dict[str, set] = {}
        self.republish_count = 0
        self._running = False

    def track(self, key: str, value: Any) -> None:
        """Remember ``key`` -> ``value`` and keep republishing it."""
        self.tracked_values[key] = value

    def track_set_item(self, key: str, item: Any) -> None:
        """Remember that ``item`` belongs to the set stored under ``key``."""
        self.tracked_sets.setdefault(key, set()).add(item)

    def start(self) -> None:
        """Begin the periodic republish cycle on the simulator's event queue."""
        if self._running:
            return
        self._running = True
        self.simulator.schedule(self.period, self._tick, label="dht-republish")

    def stop(self) -> None:
        self._running = False

    def republish_now(self) -> int:
        """Re-store every tracked value immediately.  Returns replica writes attempted."""
        writes = 0
        for key, value in sorted(self.tracked_values.items()):
            writes += self.dht.put(key, value)
        for key, items in sorted(self.tracked_sets.items()):
            for item in items:
                writes += self.dht.add_to_set(key, item)
        self.republish_count += 1
        return writes

    def _tick(self) -> None:
        if not self._running:
            return
        self.republish_now()
        self.simulator.schedule(self.period, self._tick, label="dht-republish")
