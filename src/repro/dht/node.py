"""A single Kademlia peer: RPC handlers plus local key/value storage."""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from repro.dht.nodeid import distance, key_to_id
from repro.dht.routing import Contact, RoutingTable
from repro.net.message import Message, Response
from repro.net.network import SimulatedNetwork

# RPC message types understood by every Kademlia node.
PING = "dht.ping"
STORE = "dht.store"
APPEND = "dht.append"
FIND_NODE = "dht.find_node"
FIND_VALUE = "dht.find_value"


class KademliaNode:
    """One DHT participant.

    The node keeps two kinds of local data under each 160-bit key:

    * a *value* slot written by ``STORE`` (last writer wins), and
    * a *set* slot extended by ``APPEND`` (used for provider records and
      other multi-writer collections).

    ``FIND_VALUE`` returns whichever slots are present.
    """

    def __init__(
        self,
        node_id: int,
        address: str,
        network: SimulatedNetwork,
        k: int = 20,
    ) -> None:
        self.node_id = node_id
        self.address = address
        self.network = network
        self.routing_table = RoutingTable(node_id, k=k, is_alive=self._probe_alive)
        self.values: Dict[int, Any] = {}
        self.sets: Dict[int, Set[Any]] = {}
        self.store_timestamps: Dict[int, float] = {}
        network.register(address, self.handle_message)

    # -- liveness probe used by the routing table ---------------------------

    def _probe_alive(self, contact: Contact) -> bool:
        return self.network.is_online(contact.address)

    # -- RPC server side -----------------------------------------------------

    def handle_message(self, message: Message) -> Response:
        """Dispatch an incoming DHT RPC and refresh the sender's contact."""
        sender_id = message.payload.get("sender_id")
        if isinstance(sender_id, int):
            self.routing_table.update(Contact(sender_id, message.sender))

        if message.msg_type == PING:
            return Response(self.address, PING, {"node_id": self.node_id})
        if message.msg_type == STORE:
            return self._handle_store(message)
        if message.msg_type == APPEND:
            return self._handle_append(message)
        if message.msg_type == FIND_NODE:
            return self._handle_find_node(message)
        if message.msg_type == FIND_VALUE:
            return self._handle_find_value(message)
        return Response.failure(self.address, message.msg_type, "unknown DHT message type")

    def _handle_store(self, message: Message) -> Response:
        key = message.payload["key"]
        self.values[key] = message.payload["value"]
        self.store_timestamps[key] = self.network.simulator.now
        return Response(self.address, STORE, {"stored": True})

    def _handle_append(self, message: Message) -> Response:
        key = message.payload["key"]
        item = message.payload["item"]
        self.sets.setdefault(key, set()).add(item)
        self.store_timestamps[key] = self.network.simulator.now
        return Response(self.address, APPEND, {"stored": True})

    def _handle_find_node(self, message: Message) -> Response:
        target = message.payload["target"]
        contacts = self.routing_table.closest(target)
        return Response(
            self.address,
            FIND_NODE,
            {"contacts": [(c.node_id, c.address) for c in contacts]},
        )

    def _handle_find_value(self, message: Message) -> Response:
        key = message.payload["key"]
        payload: Dict[str, Any] = {}
        if key in self.values:
            payload["value"] = self.values[key]
        if key in self.sets:
            payload["items"] = sorted(self.sets[key], key=repr)
        # Closest contacts are always returned so the lookup can keep
        # converging and compare replicas for freshness.
        contacts = self.routing_table.closest(key)
        payload["contacts"] = [(c.node_id, c.address) for c in contacts]
        if "value" in payload or "items" in payload:
            payload["found"] = True
            payload["stored_at"] = self.store_timestamps.get(key, 0.0)
            return Response(self.address, FIND_VALUE, payload)
        payload["found"] = False
        return Response(self.address, FIND_VALUE, payload)

    # -- RPC client side ------------------------------------------------------

    def _base_payload(self) -> Dict[str, Any]:
        return {"sender_id": self.node_id}

    def ping(self, contact: Contact) -> bool:
        """Probe a peer; returns ``True`` if it answered."""
        try:
            response = self.network.rpc(self.address, contact.address, PING, self._base_payload())
        except Exception:
            self.routing_table.remove(contact.node_id)
            return False
        return response.ok

    def store_at(self, contact: Contact, key: int, value: Any) -> bool:
        """Ask ``contact`` to store ``value`` under ``key``."""
        payload = dict(self._base_payload(), key=key, value=value)
        try:
            response = self.network.rpc(self.address, contact.address, STORE, payload)
        except Exception:
            self.routing_table.remove(contact.node_id)
            return False
        return response.ok

    def append_at(self, contact: Contact, key: int, item: Any) -> bool:
        """Ask ``contact`` to add ``item`` to the set stored under ``key``."""
        payload = dict(self._base_payload(), key=key, item=item)
        try:
            response = self.network.rpc(self.address, contact.address, APPEND, payload)
        except Exception:
            self.routing_table.remove(contact.node_id)
            return False
        return response.ok

    # -- local helpers --------------------------------------------------------

    def local_store(self, key: int, value: Any) -> None:
        """Store directly on this node, bypassing the network (used at bootstrap)."""
        self.values[key] = value
        self.store_timestamps[key] = self.network.simulator.now

    def stored_keys(self) -> List[int]:
        """Every key this node holds in either slot."""
        return sorted(set(self.values) | set(self.sets))

    def storage_bytes(self) -> int:
        """Rough size of everything stored locally (for the scalability tables)."""
        from repro.net.message import estimate_size

        total = 0
        for value in self.values.values():
            total += estimate_size(value)
        for items in self.sets.values():
            total += estimate_size(items)
        return total

    def as_contact(self) -> Contact:
        return Contact(self.node_id, self.address)

    def __repr__(self) -> str:
        return f"KademliaNode(address={self.address!r}, keys={len(self.stored_keys())})"


def sort_contacts_by_distance(contacts: List[Tuple[int, str]], target: int) -> List[Contact]:
    """Deserialize ``(node_id, address)`` pairs and sort them by distance to ``target``."""
    parsed = [Contact(node_id, address) for node_id, address in contacts]
    parsed.sort(key=lambda c: distance(c.node_id, target))
    return parsed


def key_for(value: Any) -> int:
    """Convenience wrapper so callers don't import :func:`key_to_id` separately."""
    return key_to_id(value)
