"""Kademlia routing state: contacts, k-buckets, and the routing table."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.dht.nodeid import ID_BITS, bucket_index, distance, id_to_hex

DEFAULT_K = 20


@dataclass(frozen=True)
class Contact:
    """A known peer: its DHT identifier and its network address."""

    node_id: int
    address: str

    def __repr__(self) -> str:
        return f"Contact({id_to_hex(self.node_id)[:8]}…, {self.address!r})"


class KBucket:
    """A list of up to ``k`` contacts, ordered least-recently seen first.

    Kademlia prefers long-lived contacts: when a full bucket sees a new
    contact, the oldest entry is only evicted if a liveness probe says it is
    dead.  The probe is supplied by the routing table so this class stays a
    pure data structure.
    """

    def __init__(self, k: int = DEFAULT_K) -> None:
        if k <= 0:
            raise ValueError(f"bucket size k must be positive, got {k!r}")
        self.k = k
        self._contacts: List[Contact] = []

    def __len__(self) -> int:
        return len(self._contacts)

    def __contains__(self, contact: Contact) -> bool:
        return contact in self._contacts

    @property
    def contacts(self) -> List[Contact]:
        """Contacts ordered least-recently seen first."""
        return list(self._contacts)

    def update(
        self,
        contact: Contact,
        is_alive: Optional[Callable[[Contact], bool]] = None,
    ) -> bool:
        """Record that ``contact`` was just seen.  Returns ``True`` if stored.

        If the bucket is full the least-recently-seen contact is probed with
        ``is_alive``; a dead head is replaced, a live head is refreshed and
        the newcomer is dropped (the classic Kademlia policy, which resists
        flooding attacks by favouring stable peers).
        """
        existing = next((c for c in self._contacts if c.node_id == contact.node_id), None)
        if existing is not None:
            self._contacts.remove(existing)
            self._contacts.append(contact)
            return True
        if len(self._contacts) < self.k:
            self._contacts.append(contact)
            return True
        head = self._contacts[0]
        if is_alive is not None and not is_alive(head):
            self._contacts.pop(0)
            self._contacts.append(contact)
            return True
        # Refresh the live head and drop the newcomer.
        self._contacts.pop(0)
        self._contacts.append(head)
        return False

    def remove(self, node_id: int) -> bool:
        """Drop a contact (e.g. after repeated RPC failures)."""
        for contact in self._contacts:
            if contact.node_id == node_id:
                self._contacts.remove(contact)
                return True
        return False


class RoutingTable:
    """160 k-buckets indexed by XOR-distance prefix, plus closest-node queries."""

    def __init__(
        self,
        own_id: int,
        k: int = DEFAULT_K,
        is_alive: Optional[Callable[[Contact], bool]] = None,
    ) -> None:
        self.own_id = own_id
        self.k = k
        self.is_alive = is_alive
        self.buckets: List[KBucket] = [KBucket(k) for _ in range(ID_BITS)]

    def update(self, contact: Contact) -> bool:
        """Record a sighting of ``contact``; self-contacts are ignored."""
        index = bucket_index(self.own_id, contact.node_id)
        if index < 0:
            return False
        return self.buckets[index].update(contact, self.is_alive)

    def remove(self, node_id: int) -> bool:
        index = bucket_index(self.own_id, node_id)
        if index < 0:
            return False
        return self.buckets[index].remove(node_id)

    def closest(self, target_id: int, count: Optional[int] = None) -> List[Contact]:
        """The ``count`` known contacts closest to ``target_id`` by XOR distance."""
        count = count or self.k
        all_contacts = [c for bucket in self.buckets for c in bucket.contacts]
        all_contacts.sort(key=lambda c: distance(c.node_id, target_id))
        return all_contacts[:count]

    def contact_count(self) -> int:
        """Total number of contacts across all buckets."""
        return sum(len(bucket) for bucket in self.buckets)

    def all_contacts(self) -> List[Contact]:
        return [c for bucket in self.buckets for c in bucket.contacts]
