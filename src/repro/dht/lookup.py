"""Iterative Kademlia lookups (FIND_NODE and FIND_VALUE).

The lookup procedure is the paper-standard iterative algorithm: keep a
shortlist of the ``k`` closest contacts seen so far, query the ``alpha``
closest unqueried ones in parallel, merge the contacts they return, and stop
when a round makes no progress (or, for value lookups, when the value is
found).  The number of rounds is what the scalability experiment (E4) reports
as "lookup hops".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set

from repro.dht.node import FIND_NODE, FIND_VALUE, KademliaNode, sort_contacts_by_distance
from repro.dht.nodeid import distance
from repro.dht.routing import Contact

DEFAULT_ALPHA = 3


@dataclass
class LookupResult:
    """Outcome of one iterative lookup."""

    target: int
    closest: List[Contact] = field(default_factory=list)
    value: Any = None
    items: Optional[List[Any]] = None
    found: bool = False
    rounds: int = 0
    contacted: int = 0

    @property
    def hops(self) -> int:
        """Alias used by the experiment tables."""
        return self.rounds


class IterativeLookup:
    """Runs one iterative lookup on behalf of ``origin``."""

    def __init__(
        self,
        origin: KademliaNode,
        target: int,
        k: int = 20,
        alpha: int = DEFAULT_ALPHA,
        find_value: bool = False,
    ) -> None:
        self.origin = origin
        self.target = target
        self.k = k
        self.alpha = alpha
        self.find_value = find_value

    def run(self) -> LookupResult:
        result = LookupResult(target=self.target)
        shortlist: List[Contact] = self.origin.routing_table.closest(self.target, self.k)
        queried: Set[str] = {self.origin.address}
        msg_type = FIND_VALUE if self.find_value else FIND_NODE
        # Value candidates found along the way: (stored_at, value).  The lookup
        # runs to convergence and keeps the freshest replica, so an overwrite
        # that moved the replica set is not shadowed by a stale holder.
        value_candidates: List[tuple] = []
        item_union: Set[Any] = set()
        items_found = False

        # The origin's own storage counts as hop zero for value lookups.
        if self.find_value:
            if self.target in self.origin.values:
                value_candidates.append(
                    (self.origin.store_timestamps.get(self.target, 0.0),
                     self.origin.values[self.target])
                )
            if self.target in self.origin.sets:
                items_found = True
                item_union.update(self.origin.sets[self.target])

        if not shortlist:
            result.closest = []
            self._finalize_value(result, value_candidates, item_union, items_found)
            return result

        while True:
            candidates = [c for c in shortlist if c.address not in queried][: self.alpha]
            if not candidates:
                break
            result.rounds += 1
            payload_key = "key" if self.find_value else "target"
            requests = [
                (c.address, msg_type, dict(self.origin._base_payload(), **{payload_key: self.target}))
                for c in candidates
            ]
            responses = self.origin.network.rpc_parallel(self.origin.address, requests)
            progress = False
            best_before = self._best_distance(shortlist)
            for contact, response in zip(candidates, responses):
                queried.add(contact.address)
                result.contacted += 1
                if response is None or not response.ok:
                    self.origin.routing_table.remove(contact.node_id)
                    shortlist = [c for c in shortlist if c.node_id != contact.node_id]
                    continue
                self.origin.routing_table.update(contact)
                if self.find_value and response.payload.get("found"):
                    stored_at = response.payload.get("stored_at", 0.0)
                    if "value" in response.payload:
                        value_candidates.append((stored_at, response.payload["value"]))
                    if "items" in response.payload:
                        items_found = True
                        item_union.update(response.payload["items"])
                returned = sort_contacts_by_distance(
                    response.payload.get("contacts", []), self.target
                )
                for new_contact in returned:
                    if new_contact.address == self.origin.address:
                        continue
                    if all(new_contact.node_id != c.node_id for c in shortlist):
                        shortlist.append(new_contact)
                        progress = True
            shortlist.sort(key=lambda c: distance(c.node_id, self.target))
            shortlist = shortlist[: self.k]
            if not progress and self._best_distance(shortlist) >= best_before:
                # No new closer contacts: the lookup has converged.
                unqueried = [c for c in shortlist if c.address not in queried]
                if not unqueried:
                    break

        result.closest = shortlist[: self.k]
        self._finalize_value(result, value_candidates, item_union, items_found)
        return result

    def _best_distance(self, contacts: List[Contact]) -> int:
        if not contacts:
            return 1 << 200
        return min(distance(c.node_id, self.target) for c in contacts)

    @staticmethod
    def _finalize_value(
        result: LookupResult,
        value_candidates: List[tuple],
        item_union: Set[Any],
        items_found: bool,
    ) -> None:
        """Fold collected replicas into the result: freshest value, unioned sets."""
        if value_candidates:
            result.found = True
            result.value = max(value_candidates, key=lambda pair: pair[0])[1]
        if items_found:
            result.found = True
            result.items = sorted(item_union, key=repr)


def find_node(origin: KademliaNode, target: int, k: int = 20, alpha: int = DEFAULT_ALPHA) -> LookupResult:
    """Locate the ``k`` closest nodes to ``target`` starting from ``origin``."""
    lookup = IterativeLookup(origin, target, k=k, alpha=alpha, find_value=False)
    return lookup.run()


def find_value(origin: KademliaNode, key: int, k: int = 20, alpha: int = DEFAULT_ALPHA) -> LookupResult:
    """Locate the value stored under ``key`` starting from ``origin``."""
    lookup = IterativeLookup(origin, key, k=k, alpha=alpha, find_value=True)
    return lookup.run()
