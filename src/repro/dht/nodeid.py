"""Node and key identifiers in the 160-bit Kademlia ID space."""

from __future__ import annotations

import hashlib
import random
from typing import Union

ID_BITS = 160
ID_SPACE = 1 << ID_BITS
MAX_ID = ID_SPACE - 1


def key_to_id(key: Union[str, bytes, int]) -> int:
    """Map an application key (term, CID, account, ...) into the ID space.

    Integers are taken modulo the ID space; strings and bytes are hashed with
    SHA-1, matching Kademlia's original design.
    """
    if isinstance(key, int):
        return key % ID_SPACE
    if isinstance(key, str):
        key = key.encode("utf-8")
    digest = hashlib.sha1(key).digest()
    return int.from_bytes(digest, "big")


def random_node_id(rng: random.Random) -> int:
    """Draw a uniformly random node ID."""
    return rng.getrandbits(ID_BITS)


def distance(a: int, b: int) -> int:
    """XOR distance between two IDs."""
    return a ^ b


def bucket_index(own_id: int, other_id: int) -> int:
    """Index of the k-bucket that ``other_id`` falls into relative to ``own_id``.

    Bucket ``i`` covers IDs whose XOR distance has its highest set bit at
    position ``i`` (distance in ``[2^i, 2^(i+1))``).  Returns ``-1`` for the
    node's own ID.
    """
    d = distance(own_id, other_id)
    if d == 0:
        return -1
    return d.bit_length() - 1


def id_to_hex(node_id: int) -> str:
    """Render an ID as a fixed-width hex string (40 hex chars for 160 bits)."""
    return f"{node_id:0{ID_BITS // 4}x}"
