"""The declared registry of metric names (repro-lint rule RL006).

``compare_bench.py`` gates the perf trajectory on metric values read back
*by name* from the engine's :class:`~repro.metrics.collector.MetricsCollector`.
A typo'd name on either side silently reads 0.0, so a baseline can drift
without any test failing.  This registry closes the namespace: every
counter/gauge/sample name written or read in ``src/repro`` must be
declared here (exactly, or via a declared dynamic prefix for families
whose tail is data-dependent, like ``serve.<outcome>``).

Adding a metric is a one-line change here — the point is not ceremony but
that the write site, the read site, and the benchmark baseline must agree
on a spelling that exists.
"""

from __future__ import annotations

#: Monotonic counters (MetricsCollector.increment / .counter).
COUNTERS = frozenset(
    {
        "publish.deletes",
        "publish.delta_bytes",
        "publish.full_bytes",
        "cache.patched_in_place",
        "cache.delta_fallbacks",
        "rank.rounds",
        "query.batches",
        "query.postings_scanned",
        "query.docs_scored",
        "query.docs_pruned",
        "query.shards_skipped",
        "query.result_cache_hits",
        # Serving outcomes (the serve.<outcome> family, one per
        # ServingDiagnostics.served_from value).
        "serve.full",
        "serve.result_cache",
        "serve.degraded",
        "serve.shed",
    }
)

#: Last-value gauges (MetricsCollector.set_gauge(s) / .gauge).
GAUGES = frozenset(
    {
        "frontend.result_cache.hit_rate",
        "frontend.result_cache.size",
        "index.cache.hit_rate",
        "index.cache.size",
        "index.cache.invalidations",
        "index.cache.stale_hits",
        "index.cache.stale_hit_rate",
    }
)

#: Distribution samples (MetricsCollector.observe / .sample / .percentile).
SAMPLES = frozenset(
    {
        "query.latency",
        "serve.latency",
        "serve.queue_delay",
    }
)

#: Heads of names built at runtime (f-strings): the literal head of the
#: f-string must match one of these.  Keep this list short — a dynamic
#: name cannot be checked against the baseline by grep alone.
DYNAMIC_PREFIXES = ("serve.",)

_BY_KIND = {"counter": COUNTERS, "gauge": GAUGES, "sample": SAMPLES}
ALL_NAMES = COUNTERS | GAUGES | SAMPLES


def is_registered(name: str, kind: str = "") -> bool:
    """Whether ``name`` is declared (for ``kind`` when given)."""
    universe = _BY_KIND.get(kind, ALL_NAMES)
    if name in universe:
        return True
    return any(name.startswith(prefix) for prefix in DYNAMIC_PREFIXES)


def matches_dynamic_prefix(head: str) -> bool:
    """Whether an f-string's literal head falls under a declared prefix."""
    return any(head.startswith(prefix) for prefix in DYNAMIC_PREFIXES)
