"""Lightweight metrics: counters, timers, and distribution summaries."""

from repro.metrics import names
from repro.metrics.collector import MetricsCollector
from repro.metrics.summary import DistributionSummary, percentile, summarize

__all__ = ["MetricsCollector", "DistributionSummary", "names", "percentile", "summarize"]
