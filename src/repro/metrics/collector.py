"""A shared metrics collector components can write to without coupling."""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.metrics.summary import DistributionSummary, percentile as _percentile, summarize
from repro.sim import monitor as state_monitor


class MetricsCollector:
    """Named counters and named samples.

    Experiments create one collector, hand it to the components they measure,
    and read summaries back out at the end.  Everything is in-memory and
    deterministic; there is no background aggregation.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, float] = {}
        self._samples: Dict[str, List[float]] = {}
        self._gauges: Dict[str, float] = {}

    # -- counters ------------------------------------------------------------------

    def increment(self, name: str, amount: float = 1.0) -> float:
        """Add ``amount`` to the counter ``name`` and return the new value."""
        state_monitor.record_accum("metrics", self, ("counter", name))
        self._counters[name] = self._counters.get(name, 0.0) + amount
        return self._counters[name]

    def counter(self, name: str) -> float:
        state_monitor.record_read("metrics", self, ("counter", name))
        return self._counters.get(name, 0.0)

    def counters(self) -> Dict[str, float]:
        return dict(self._counters)

    # -- gauges -----------------------------------------------------------------------

    def set_gauge(self, name: str, value: float) -> None:
        """Record the latest value of ``name`` (overwrites, never accumulates)."""
        state_monitor.record_write(
            "metrics", self, ("gauge", name), float(value),
            replaced=self._gauges.get(name, state_monitor.ABSENT),
        )
        self._gauges[name] = float(value)

    def set_gauges(self, values: Dict[str, float]) -> None:
        """Record a batch of gauges at once (cache hit/invalidation snapshots)."""
        for name, value in values.items():
            state_monitor.record_write(
                "metrics", self, ("gauge", name), float(value),
                replaced=self._gauges.get(name, state_monitor.ABSENT),
            )
            self._gauges[name] = float(value)

    def gauge(self, name: str) -> float:
        state_monitor.record_read("metrics", self, ("gauge", name), self._gauges.get(name, 0.0))
        return self._gauges.get(name, 0.0)

    def gauges(self) -> Dict[str, float]:
        return dict(self._gauges)

    # -- samples ----------------------------------------------------------------------

    def observe(self, name: str, value: float) -> None:
        """Record one observation of the sample ``name``."""
        state_monitor.record_accum("metrics", self, ("sample", name))
        self._samples.setdefault(name, []).append(float(value))

    def sample(self, name: str) -> List[float]:
        state_monitor.record_read("metrics", self, ("sample", name))
        return list(self._samples.get(name, []))

    def percentile(self, name: str, q: float) -> float:
        """The ``q``-th percentile of the sample ``name``.

        ``q`` accepts either a fraction in [0, 1] or a percent in (1, 100]
        — ``percentile("serve.latency", 0.99)`` and ``percentile(
        "serve.latency", 99)`` agree.  Empty samples report 0.0 (matching
        :func:`~repro.metrics.summary.percentile`).
        """
        if q > 1.0:
            if q > 100.0:
                raise ValueError(f"percentile must be in [0, 100], got {q!r}")
            q = q / 100.0
        state_monitor.record_read("metrics", self, ("sample", name))
        return _percentile(self._samples.get(name, []), q)

    def quantiles(self, name: str, qs: Sequence[float] = (0.5, 0.95, 0.99)) -> Dict[float, float]:
        """Several percentiles of one sample at once (the p50/p95/p99 row).

        Returns ``{q: value}`` with the keys exactly as given (fractions
        or percents, see :meth:`percentile`).
        """
        return {q: self.percentile(name, q) for q in qs}

    def summary(self, name: str) -> DistributionSummary:
        state_monitor.record_read("metrics", self, ("sample", name))
        return summarize(self._samples.get(name, []))

    def summaries(self) -> Dict[str, DistributionSummary]:
        return {name: summarize(values) for name, values in self._samples.items()}

    def reset(self) -> None:
        self._counters.clear()
        self._samples.clear()
        self._gauges.clear()
