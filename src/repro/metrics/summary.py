"""Distribution summaries (mean, percentiles) for experiment tables."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


def percentile(values: Sequence[float], fraction: float) -> float:
    """Linear-interpolation percentile; ``fraction`` in [0, 1]."""
    if not values:
        return 0.0
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction!r}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    position = fraction * (len(ordered) - 1)
    lower = math.floor(position)
    upper = math.ceil(position)
    if lower == upper:
        return float(ordered[lower])
    weight = position - lower
    interpolated = ordered[lower] * (1.0 - weight) + ordered[upper] * weight
    # Clamp away floating-point overshoot so the result stays inside the sample range.
    return float(min(max(interpolated, ordered[lower]), ordered[upper]))


@dataclass
class DistributionSummary:
    """The statistics every experiment table reports about a latency/size sample."""

    count: int = 0
    mean: float = 0.0
    minimum: float = 0.0
    maximum: float = 0.0
    p50: float = 0.0
    p90: float = 0.0
    p99: float = 0.0

    def as_row(self) -> dict:
        """Dict form used when printing benchmark tables."""
        return {
            "count": self.count,
            "mean": round(self.mean, 3),
            "min": round(self.minimum, 3),
            "p50": round(self.p50, 3),
            "p90": round(self.p90, 3),
            "p99": round(self.p99, 3),
            "max": round(self.maximum, 3),
        }


def summarize(values: Sequence[float]) -> DistributionSummary:
    """Summarize a sample (all zeros for an empty sample)."""
    if not values:
        return DistributionSummary()
    return DistributionSummary(
        count=len(values),
        mean=sum(values) / len(values),
        minimum=float(min(values)),
        maximum=float(max(values)),
        p50=percentile(values, 0.50),
        p90=percentile(values, 0.90),
        p99=percentile(values, 0.99),
    )
