"""QueenBee's smart contracts.

Figure 1 of the paper places a set of smart contracts at the centre of
QueenBee's business operations.  This package implements each one on the
:mod:`repro.chain` VM:

* :class:`~repro.contracts.honey.HoneyToken` — the "honey" incentive
  cryptocurrency (an ERC-20-style token with authorized minters).
* :class:`~repro.contracts.registry.ContentRegistry` — the *publish* contract
  content creators call instead of being crawled.
* :class:`~repro.contracts.workers.WorkerRegistry` — worker-bee registration,
  staking, and slashing.
* :class:`~repro.contracts.ads.AdMarket` — advertisers buy keyword ads and pay
  per click; revenue is shared among creators and worker bees.
* :class:`~repro.contracts.rewards.RewardScheme` — mints honey to content
  providers whose page rank exceeds a threshold and to worker bees that
  complete index/rank tasks.
* :class:`~repro.contracts.queenbee.QueenBeeContracts` — a deployment helper
  that wires the above together on one chain.
"""

from repro.contracts.honey import HoneyToken
from repro.contracts.registry import ContentRegistry
from repro.contracts.workers import WorkerRegistry
from repro.contracts.ads import AdMarket
from repro.contracts.rewards import RewardScheme
from repro.contracts.queenbee import QueenBeeContracts

__all__ = [
    "HoneyToken",
    "ContentRegistry",
    "WorkerRegistry",
    "AdMarket",
    "RewardScheme",
    "QueenBeeContracts",
]
