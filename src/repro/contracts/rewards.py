"""The reward scheme: who earns honey, and for what.

The paper's research challenge (I) asks for "a fair incentive scheme for all
stakeholders" and suggests one concrete rule: "give the providers for which
the page ranks of their websites exceed a certain threshold some QueenBee's
honey".  This contract implements that rule (plus a proportional alternative
used as the E5 ablation) together with flat rewards for publishing and for
worker-bee index/rank tasks.
"""

from __future__ import annotations

from typing import Dict, List

from repro.chain.vm import CallContext, Contract

POLICY_THRESHOLD = "threshold"
POLICY_PROPORTIONAL = "proportional"


class RewardScheme(Contract):
    """Mints honey according to the configured incentive policy.

    Parameters
    ----------
    admin:
        The only address allowed to trigger reward rounds (in deployment this
        is the coordinator driven by the epoch logic in ``repro.core``).
    publish_reward:
        Honey minted to a creator for each publish/update.
    task_reward:
        Honey minted to a worker bee for each completed index or rank task.
    popularity_policy:
        ``"threshold"`` (the paper's suggestion) or ``"proportional"``.
    rank_threshold:
        Minimum page rank for a page's owner to earn the popularity bonus
        under the threshold policy.
    popularity_budget:
        Honey distributed per popularity round (split equally among qualifying
        owners under ``threshold``, proportionally to rank under
        ``proportional``).
    """

    name = "rewards"

    def __init__(
        self,
        admin: str,
        publish_reward: int = 10,
        task_reward: int = 5,
        popularity_policy: str = POLICY_THRESHOLD,
        rank_threshold: float = 0.001,
        popularity_budget: int = 10_000,
    ) -> None:
        super().__init__()
        if popularity_policy not in (POLICY_THRESHOLD, POLICY_PROPORTIONAL):
            raise ValueError(f"unknown popularity policy {popularity_policy!r}")
        self._admin = admin
        self.publish_reward = publish_reward
        self.task_reward = task_reward
        self.popularity_policy = popularity_policy
        self.rank_threshold = rank_threshold
        self.popularity_budget = popularity_budget

    # -- externally callable methods ---------------------------------------------

    def reward_publish(self, ctx: CallContext, creator: str) -> int:
        """Mint the flat publish reward to ``creator`` (admin only)."""
        self._only_admin(ctx)
        if self.publish_reward <= 0:
            return 0
        self.call_contract("honey", "mint", self._as_self(ctx), to=creator, amount=self.publish_reward)
        self.emit("PublishRewarded", creator=creator, amount=self.publish_reward)
        return self.publish_reward

    def reward_task(self, ctx: CallContext, worker: str, task_type: str) -> int:
        """Mint the per-task reward to ``worker`` and record the task (admin only)."""
        self._only_admin(ctx)
        if self.task_reward > 0:
            self.call_contract("honey", "mint", self._as_self(ctx), to=worker, amount=self.task_reward)
        self.call_contract("workers", "record_task", self._as_self(ctx), worker=worker, task_type=task_type)
        self.emit("TaskRewarded", worker=worker, task_type=task_type, amount=self.task_reward)
        return self.task_reward

    def reward_popularity(self, ctx: CallContext, owner_ranks: Dict[str, float]) -> Dict[str, int]:
        """Distribute the popularity budget over content owners by page rank.

        ``owner_ranks`` maps each owner to the summed page rank of their
        pages for the epoch being rewarded.  Returns honey minted per owner.
        """
        self._only_admin(ctx)
        payouts: Dict[str, int] = {}
        if not owner_ranks or self.popularity_budget <= 0:
            return payouts
        if self.popularity_policy == POLICY_THRESHOLD:
            qualifying = sorted(o for o, rank in owner_ranks.items() if rank >= self.rank_threshold)
            if not qualifying:
                return payouts
            share = self.popularity_budget // len(qualifying)
            payouts = {owner: share for owner in qualifying if share > 0}
        else:
            total_rank = sum(owner_ranks.values())
            if total_rank <= 0:
                return payouts
            for owner, rank in sorted(owner_ranks.items()):
                amount = int(self.popularity_budget * (rank / total_rank))
                if amount > 0:
                    payouts[owner] = amount
        for owner, amount in payouts.items():
            self.call_contract("honey", "mint", self._as_self(ctx), to=owner, amount=amount)
        self.emit("PopularityRewarded", recipients=len(payouts), total=sum(payouts.values()))
        return payouts

    def rewarded_total(self, ctx: CallContext) -> int:
        """Total honey this contract has caused to be minted (from its events)."""
        total = 0
        for event in self.vm.events:
            if event.contract == self.name and event.name in (
                "PublishRewarded", "TaskRewarded"
            ):
                total += event.data.get("amount", 0)
            elif event.contract == self.name and event.name == "PopularityRewarded":
                total += event.data.get("total", 0)
        return total

    # -- internals -----------------------------------------------------------------

    def _only_admin(self, ctx: CallContext) -> None:
        self.require(ctx.sender == self._admin, "only the admin may trigger rewards")

    def _as_self(self, ctx: CallContext) -> CallContext:
        """Cross-contract calls act with this contract's identity (it is a minter)."""
        return CallContext(
            sender=self.name,
            value=0,
            block_number=ctx.block_number,
            block_time=ctx.block_time,
            tx_id=ctx.tx_id,
        )
