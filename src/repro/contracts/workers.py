"""Worker-bee registration, staking, task accounting, and slashing."""

from __future__ import annotations

from typing import Any, Dict, List

from repro.chain.vm import CallContext, Contract


class WorkerRegistry(Contract):
    """On-chain roster of worker bees.

    Worker bees are "peers that help update the index and compute the page
    ranks".  To make the collusion defense meaningful they post a native-
    currency stake when registering; misbehaviour detected by the redundancy
    voting defense is punished by slashing that stake (experiment E6).

    Storage layout::

        workers: address -> {stake, registered_at, tasks_completed,
                             tasks_disputed, slashed, active}
    """

    name = "workers"

    def __init__(self, admin: str, min_stake: int = 1_000) -> None:
        super().__init__()
        self._admin = admin
        self.min_stake = min_stake

    def _workers(self) -> Dict[str, Dict[str, Any]]:
        return self.storage.setdefault("workers", {})

    # -- externally callable methods ---------------------------------------------

    def register(self, ctx: CallContext) -> Dict[str, Any]:
        """Register the sender as a worker bee, staking the attached value."""
        self.require(ctx.value >= self.min_stake, f"stake of at least {self.min_stake} required")
        workers = self._workers()
        self.require(ctx.sender not in workers or not workers[ctx.sender]["active"],
                     f"{ctx.sender} is already registered")
        record = {
            "stake": ctx.value,
            "registered_at": ctx.block_time,
            "tasks_completed": 0,
            "tasks_disputed": 0,
            "slashed": 0,
            "active": True,
        }
        workers[ctx.sender] = record
        # The stake is held by the contract; model it as a transfer to a
        # contract-owned escrow account.
        self.state.transfer(ctx.sender, self._escrow_address(), ctx.value)
        self.emit("WorkerRegistered", worker=ctx.sender, stake=ctx.value)
        return dict(record)

    def deregister(self, ctx: CallContext) -> int:
        """Leave the worker pool and withdraw whatever stake remains."""
        workers = self._workers()
        record = workers.get(ctx.sender)
        self.require(record is not None and record["active"], f"{ctx.sender} is not registered")
        refund = record["stake"]
        record["active"] = False
        record["stake"] = 0
        if refund > 0:
            self.state.transfer(self._escrow_address(), ctx.sender, refund)
        self.emit("WorkerDeregistered", worker=ctx.sender, refund=refund)
        return refund

    def record_task(self, ctx: CallContext, worker: str, task_type: str) -> int:
        """Credit ``worker`` with one completed task (admin / reward contract only)."""
        self.require(self._is_privileged(ctx.sender), f"{ctx.sender} may not record tasks")
        record = self._active(worker)
        record["tasks_completed"] += 1
        self.emit("TaskCompleted", worker=worker, task_type=task_type)
        return record["tasks_completed"]

    def slash(self, ctx: CallContext, worker: str, amount: int, reason: str) -> int:
        """Confiscate part of a worker's stake after detected misbehaviour."""
        self.require(self._is_privileged(ctx.sender), f"{ctx.sender} may not slash")
        record = self._active(worker)
        penalty = min(amount, record["stake"])
        record["stake"] -= penalty
        record["slashed"] += penalty
        record["tasks_disputed"] += 1
        if penalty > 0:
            # Slashed funds go to the admin (protocol treasury).
            self.state.transfer(self._escrow_address(), self._admin, penalty)
        if record["stake"] < self.min_stake:
            record["active"] = False
        self.emit("WorkerSlashed", worker=worker, amount=penalty, reason=reason)
        return penalty

    def is_active(self, ctx: CallContext, worker: str) -> bool:
        record = self._workers().get(worker)
        return bool(record and record["active"])

    def active_workers(self, ctx: CallContext) -> List[str]:
        """Addresses of every active worker bee."""
        return sorted(w for w, r in self._workers().items() if r["active"])

    def worker_info(self, ctx: CallContext, worker: str) -> Dict[str, Any]:
        record = self._workers().get(worker)
        self.require(record is not None, f"{worker} is not a registered worker")
        return dict(record)

    def total_stake(self, ctx: CallContext) -> int:
        return sum(r["stake"] for r in self._workers().values() if r["active"])

    # -- internals ------------------------------------------------------------------

    def _escrow_address(self) -> str:
        return f"escrow:{self.name}"

    def _is_privileged(self, sender: str) -> bool:
        return sender == self._admin or sender in self.storage.get("operators", set())

    def add_operator(self, ctx: CallContext, operator: str) -> bool:
        """Allow another contract / coordinator address to record tasks and slash."""
        self.require(ctx.sender == self._admin, "only the admin may add operators")
        self.storage.setdefault("operators", set()).add(operator)
        return True

    def _active(self, worker: str) -> Dict[str, Any]:
        record = self._workers().get(worker)
        self.require(record is not None and record["active"], f"{worker} is not an active worker")
        return record
