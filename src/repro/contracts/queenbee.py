"""Deployment helper that wires the full QueenBee contract suite onto a chain."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.chain.blockchain import Blockchain
from repro.contracts.ads import AdMarket
from repro.contracts.honey import HoneyToken
from repro.contracts.registry import ContentRegistry
from repro.contracts.rewards import RewardScheme
from repro.contracts.workers import WorkerRegistry

DEFAULT_ADMIN = "queenbee-admin"


@dataclass
class QueenBeeContracts:
    """Handles to the deployed contract suite plus typed convenience wrappers.

    The wrappers submit real transactions through the chain, so every action
    pays gas and appears in block history — the governance model Figure 1
    sketches.
    """

    chain: Blockchain
    admin: str
    honey: HoneyToken
    registry: ContentRegistry
    workers: WorkerRegistry
    ads: AdMarket
    rewards: RewardScheme

    # -- deployment -------------------------------------------------------------

    @classmethod
    def deploy(
        cls,
        chain: Blockchain,
        admin: str = DEFAULT_ADMIN,
        dedup_enabled: bool = True,
        min_stake: int = 1_000,
        publish_reward: int = 10,
        task_reward: int = 5,
        popularity_policy: str = "threshold",
        rank_threshold: float = 0.001,
        popularity_budget: int = 10_000,
        creator_share: float = 0.6,
        worker_share: float = 0.3,
        treasury_share: float = 0.1,
        admin_funding: int = 10**12,
    ) -> "QueenBeeContracts":
        """Deploy every contract, authorize minters, and fund the admin account."""
        chain.fund_account(admin, admin_funding)
        honey = HoneyToken(admin=admin)
        registry = ContentRegistry(dedup_enabled=dedup_enabled)
        workers = WorkerRegistry(admin=admin, min_stake=min_stake)
        ads = AdMarket(
            creator_share=creator_share,
            worker_share=worker_share,
            treasury_share=treasury_share,
        )
        rewards = RewardScheme(
            admin=admin,
            publish_reward=publish_reward,
            task_reward=task_reward,
            popularity_policy=popularity_policy,
            rank_threshold=rank_threshold,
            popularity_budget=popularity_budget,
        )
        for contract in (honey, registry, workers, ads, rewards):
            chain.deploy(contract)
        suite = cls(
            chain=chain, admin=admin, honey=honey, registry=registry,
            workers=workers, ads=ads, rewards=rewards,
        )
        # The reward contract and the admin may mint honey; the reward contract
        # may also record worker tasks.
        chain.call(admin, "honey", "add_minter", minter="rewards")
        chain.call(admin, "workers", "add_operator", operator="rewards")
        return suite

    # -- creator actions -----------------------------------------------------------

    def publish_page(self, creator: str, url: str, cid: str) -> Dict[str, Any]:
        """Publish a page and pay the creator the publish reward."""
        receipt = self.chain.call(creator, "registry", "publish", url=url, cid=cid)
        if receipt.success:
            self.chain.call(self.admin, "rewards", "reward_publish", creator=creator)
            return receipt.result
        return {"error": receipt.error}

    # -- worker actions ---------------------------------------------------------------

    def register_worker(self, worker: str, stake: int) -> bool:
        """Stake and join the worker-bee pool."""
        receipt = self.chain.call(worker, "workers", "register", value=stake)
        return receipt.success

    def reward_worker_task(self, worker: str, task_type: str) -> bool:
        """Pay a worker for a completed index/rank task."""
        receipt = self.chain.call(self.admin, "rewards", "reward_task", worker=worker, task_type=task_type)
        return receipt.success

    def slash_worker(self, worker: str, amount: int, reason: str) -> int:
        """Punish a worker whose task output failed verification."""
        receipt = self.chain.call(self.admin, "workers", "slash", worker=worker, amount=amount, reason=reason)
        return receipt.result if receipt.success else 0

    # -- advertiser actions --------------------------------------------------------------

    def place_ad(self, advertiser: str, keywords: List[str], budget: int, bid_per_click: int) -> Optional[int]:
        """Buy a keyword ad campaign; returns the ad id (or ``None`` on failure)."""
        receipt = self.chain.call(
            advertiser, "ads", "place_ad", value=budget, keywords=keywords, bid_per_click=bid_per_click
        )
        return receipt.result if receipt.success else None

    def click_ad(self, ad_id: int, creator: str, worker: str) -> Dict[str, int]:
        """Record a click on an ad shown next to ``creator``'s page."""
        receipt = self.chain.call(self.admin, "ads", "record_click", ad_id=ad_id, creator=creator, worker=worker)
        return receipt.result if receipt.success else {}

    # -- epoch rewards ------------------------------------------------------------------------

    def distribute_popularity_rewards(self, owner_ranks: Dict[str, float]) -> Dict[str, int]:
        """Run one popularity reward round over per-owner page-rank mass."""
        receipt = self.chain.call(self.admin, "rewards", "reward_popularity", owner_ranks=owner_ranks)
        return receipt.result if receipt.success else {}

    # -- reads ----------------------------------------------------------------------------------

    def honey_balance(self, owner: str) -> int:
        return self.chain.query("honey", "balance_of", owner=owner)

    def honey_holders(self) -> Dict[str, int]:
        return self.chain.query("honey", "holders")

    def page_record(self, url: str) -> Optional[Dict[str, Any]]:
        return self.chain.query("registry", "get_page", url=url)

    def active_workers(self) -> List[str]:
        return self.chain.query("workers", "active_workers")

    def ads_for(self, keyword: str) -> List[Dict[str, Any]]:
        return self.chain.query("ads", "ads_for", keyword=keyword)
