"""The ad market: advertisers pay per click; revenue is shared on-chain.

"Advertisers directly make advertisements through our smart contract and the
ad revenue is shared among the content creators and worker bees."  The share
split is a constructor parameter so the incentive experiments can sweep it.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.chain.vm import CallContext, Contract


class AdMarket(Contract):
    """Keyword ads with escrowed budgets and pay-per-click billing.

    Storage layout::

        ads:      ad_id -> {advertiser, keywords, bid_per_click, budget,
                            spent, clicks, active}
        next_id:  int
        revenue:  role -> accumulated native currency
    """

    name = "ads"

    def __init__(
        self,
        creator_share: float = 0.6,
        worker_share: float = 0.3,
        treasury_share: float = 0.1,
        treasury: str = "queenbee-treasury",
    ) -> None:
        super().__init__()
        total = creator_share + worker_share + treasury_share
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"revenue shares must sum to 1.0, got {total!r}")
        self.creator_share = creator_share
        self.worker_share = worker_share
        self.treasury_share = treasury_share
        self.treasury = treasury

    def _ads(self) -> Dict[int, Dict[str, Any]]:
        return self.storage.setdefault("ads", {})

    def _revenue(self) -> Dict[str, int]:
        return self.storage.setdefault("revenue", {"creators": 0, "workers": 0, "treasury": 0})

    # -- externally callable methods ---------------------------------------------

    def place_ad(self, ctx: CallContext, keywords: List[str], bid_per_click: int) -> int:
        """Create an ad whose budget is the native value attached to the call."""
        self.require(bool(keywords), "an ad needs at least one keyword")
        self.require(bid_per_click > 0, "bid_per_click must be positive")
        self.require(ctx.value >= bid_per_click, "budget must cover at least one click")
        ad_id = self.storage.get("next_id", 1)
        self.storage["next_id"] = ad_id + 1
        self._ads()[ad_id] = {
            "advertiser": ctx.sender,
            "keywords": [k.lower() for k in keywords],
            "bid_per_click": bid_per_click,
            "budget": ctx.value,
            "spent": 0,
            "clicks": 0,
            "active": True,
        }
        self.state.transfer(ctx.sender, self._escrow_address(), ctx.value)
        self.emit("AdPlaced", ad_id=ad_id, advertiser=ctx.sender, keywords=list(keywords),
                  budget=ctx.value, bid_per_click=bid_per_click)
        return ad_id

    def ads_for(self, ctx: CallContext, keyword: str) -> List[Dict[str, Any]]:
        """Active ads matching ``keyword``, highest bid first (what the frontend shows)."""
        keyword = keyword.lower()
        matches = [
            dict(ad, ad_id=ad_id)
            for ad_id, ad in self._ads().items()
            if ad["active"] and keyword in ad["keywords"]
        ]
        matches.sort(key=lambda ad: (-ad["bid_per_click"], ad["ad_id"]))
        return matches

    def record_click(self, ctx: CallContext, ad_id: int, creator: str, worker: str) -> Dict[str, int]:
        """Charge one click to the ad and split the revenue.

        ``creator`` is the owner of the page the ad was shown next to and
        ``worker`` the worker bee that served the index shard — the two
        stakeholder roles the paper says share the ad revenue.
        """
        ads = self._ads()
        ad = ads.get(ad_id)
        self.require(ad is not None and ad["active"], f"ad {ad_id} is not active")
        price = ad["bid_per_click"]
        self.require(ad["budget"] - ad["spent"] >= price, f"ad {ad_id} has exhausted its budget")
        ad["spent"] += price
        ad["clicks"] += 1
        if ad["budget"] - ad["spent"] < price:
            ad["active"] = False
        creator_cut = int(price * self.creator_share)
        worker_cut = int(price * self.worker_share)
        treasury_cut = price - creator_cut - worker_cut
        escrow = self._escrow_address()
        if creator_cut:
            self.state.transfer(escrow, creator, creator_cut)
        if worker_cut:
            self.state.transfer(escrow, worker, worker_cut)
        if treasury_cut:
            self.state.transfer(escrow, self.treasury, treasury_cut)
        revenue = self._revenue()
        revenue["creators"] += creator_cut
        revenue["workers"] += worker_cut
        revenue["treasury"] += treasury_cut
        self.emit("AdClicked", ad_id=ad_id, creator=creator, worker=worker, price=price)
        return {"creator": creator_cut, "worker": worker_cut, "treasury": treasury_cut}

    def withdraw_remaining(self, ctx: CallContext, ad_id: int) -> int:
        """Let the advertiser reclaim the unspent budget of a finished campaign."""
        ad = self._ads().get(ad_id)
        self.require(ad is not None, f"no ad {ad_id}")
        self.require(ad["advertiser"] == ctx.sender, "only the advertiser may withdraw")
        remaining = ad["budget"] - ad["spent"]
        self.require(remaining > 0, "nothing left to withdraw")
        ad["active"] = False
        ad["budget"] = ad["spent"]
        self.state.transfer(self._escrow_address(), ctx.sender, remaining)
        self.emit("AdWithdrawn", ad_id=ad_id, amount=remaining)
        return remaining

    def ad_info(self, ctx: CallContext, ad_id: int) -> Dict[str, Any]:
        ad = self._ads().get(ad_id)
        self.require(ad is not None, f"no ad {ad_id}")
        return dict(ad)

    def revenue_summary(self, ctx: CallContext) -> Dict[str, int]:
        """Accumulated revenue per stakeholder role."""
        return dict(self._revenue())

    def _escrow_address(self) -> str:
        return f"escrow:{self.name}"
