"""The honey token: QueenBee's incentive cryptocurrency."""

from __future__ import annotations

from typing import Dict

from repro.chain.vm import CallContext, Contract


class HoneyToken(Contract):
    """An ERC-20-style token with a permissioned mint.

    Honey is "rewarded to worker bees" and to content creators that publish
    through QueenBee; minting is therefore restricted to the contracts that
    implement those reward rules (and the deployer, for bootstrapping).
    """

    name = "honey"

    def __init__(self, admin: str) -> None:
        super().__init__()
        self._admin = admin

    # -- storage accessors -----------------------------------------------------

    def _balances(self) -> Dict[str, int]:
        return self.storage.setdefault("balances", {})

    def _minters(self) -> Dict[str, bool]:
        return self.storage.setdefault("minters", {self._admin: True})

    # -- externally callable methods --------------------------------------------

    def add_minter(self, ctx: CallContext, minter: str) -> bool:
        """Authorize ``minter`` to create honey (admin only)."""
        self.require(ctx.sender == self._admin, "only the admin may add minters")
        self._minters()[minter] = True
        self.emit("MinterAdded", minter=minter)
        return True

    def mint(self, ctx: CallContext, to: str, amount: int) -> int:
        """Create ``amount`` honey for ``to`` (authorized minters only)."""
        self.require(amount > 0, "mint amount must be positive")
        self.require(self._minters().get(ctx.sender, False), f"{ctx.sender} is not a minter")
        balances = self._balances()
        balances[to] = balances.get(to, 0) + amount
        self.storage["total_supply"] = self.storage.get("total_supply", 0) + amount
        self.emit("Mint", to=to, amount=amount)
        return balances[to]

    def transfer(self, ctx: CallContext, to: str, amount: int) -> bool:
        """Move honey from the sender to ``to``."""
        self.require(amount > 0, "transfer amount must be positive")
        balances = self._balances()
        self.require(
            balances.get(ctx.sender, 0) >= amount,
            f"{ctx.sender} holds {balances.get(ctx.sender, 0)} honey but tried to send {amount}",
        )
        balances[ctx.sender] -= amount
        balances[to] = balances.get(to, 0) + amount
        self.emit("Transfer", sender=ctx.sender, to=to, amount=amount)
        return True

    def burn(self, ctx: CallContext, owner: str, amount: int) -> bool:
        """Destroy honey (used by slashing).  Minters only."""
        self.require(self._minters().get(ctx.sender, False), f"{ctx.sender} is not a minter")
        balances = self._balances()
        held = balances.get(owner, 0)
        self.require(held >= amount >= 0, f"cannot burn {amount} from balance {held}")
        balances[owner] = held - amount
        self.storage["total_supply"] = self.storage.get("total_supply", 0) - amount
        self.emit("Burn", owner=owner, amount=amount)
        return True

    def balance_of(self, ctx: CallContext, owner: str) -> int:
        """Current honey balance of ``owner``."""
        return self._balances().get(owner, 0)

    def total_supply(self, ctx: CallContext) -> int:
        """Total honey in circulation."""
        return self.storage.get("total_supply", 0)

    def holders(self, ctx: CallContext) -> Dict[str, int]:
        """A copy of every non-zero balance (fairness analysis reads this)."""
        return {owner: amount for owner, amount in self._balances().items() if amount > 0}
