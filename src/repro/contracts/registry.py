"""The content registry: QueenBee's *publish* contract.

"QueenBee advocates no-crawling ... QueenBee incentivizes content creators to
publish (create or update) their contents via QueenBee's smart contract."
Worker bees watch this contract's ``PagePublished`` events to learn what to
index, which is what makes the index fresh without a crawler.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.chain.vm import CallContext, Contract


class ContentRegistry(Contract):
    """On-chain record of every published page.

    Storage layout::

        pages:        url -> {cid, owner, version, published_at, block}
        cid_owner:    cid -> first owner that published this exact content
        owner_pages:  owner -> [urls]

    ``dedup_enabled`` activates the scraper-site defense: republishing a CID
    that a *different* owner already registered is rejected, so mirroring a
    popular page cannot earn publish credit (experiment E7).
    """

    name = "registry"

    def __init__(self, dedup_enabled: bool = True) -> None:
        super().__init__()
        self.dedup_enabled = dedup_enabled

    def _pages(self) -> Dict[str, Dict[str, Any]]:
        return self.storage.setdefault("pages", {})

    def _cid_owner(self) -> Dict[str, str]:
        return self.storage.setdefault("cid_owner", {})

    def _owner_pages(self) -> Dict[str, List[str]]:
        return self.storage.setdefault("owner_pages", {})

    # -- externally callable methods ---------------------------------------------

    def publish(self, ctx: CallContext, url: str, cid: str) -> Dict[str, Any]:
        """Register (or update) the page at ``url`` with content ``cid``.

        Returns the page record.  Reverts if dedup is enabled and the content
        was first published by someone else under a different URL.
        """
        self.require(bool(url), "url must be non-empty")
        self.require(bool(cid), "cid must be non-empty")
        pages = self._pages()
        existing = pages.get(url)
        if existing is not None:
            self.require(
                existing["owner"] == ctx.sender,
                f"url {url} is owned by {existing['owner']}",
            )
        cid_owner = self._cid_owner()
        first_owner = cid_owner.get(cid)
        if self.dedup_enabled and first_owner is not None and first_owner != ctx.sender:
            self.require(False, f"content {cid[:16]}… was first published by {first_owner}")
        if first_owner is None:
            cid_owner[cid] = ctx.sender
        version = (existing["version"] + 1) if existing is not None else 1
        record = {
            "url": url,
            "cid": cid,
            "owner": ctx.sender,
            "version": version,
            "published_at": ctx.block_time,
            "block": ctx.block_number,
        }
        pages[url] = record
        if existing is None:
            self._owner_pages().setdefault(ctx.sender, []).append(url)
        self.emit("PagePublished", url=url, cid=cid, owner=ctx.sender, version=version)
        return dict(record)

    def get_page(self, ctx: CallContext, url: str) -> Optional[Dict[str, Any]]:
        """The current record for ``url`` (``None`` if never published)."""
        record = self._pages().get(url)
        return dict(record) if record is not None else None

    def pages_of(self, ctx: CallContext, owner: str) -> List[str]:
        """URLs published by ``owner``."""
        return list(self._owner_pages().get(owner, []))

    def owner_of(self, ctx: CallContext, url: str) -> Optional[str]:
        record = self._pages().get(url)
        return record["owner"] if record is not None else None

    def page_count(self, ctx: CallContext) -> int:
        return len(self._pages())

    def all_pages(self, ctx: CallContext) -> List[Dict[str, Any]]:
        """Every page record (worker bees and experiments read this)."""
        return [dict(record) for record in self._pages().values()]

    def pages_since(self, ctx: CallContext, block: int) -> List[Dict[str, Any]]:
        """Pages published or updated at or after ``block`` (incremental indexing)."""
        return [dict(r) for r in self._pages().values() if r["block"] >= block]
