"""A periodic crawler feeding an index that does not receive publish events.

This is the mechanism the paper argues against: "crawling inevitably reduces
the freshness of the search results".  The crawler visits the simulated web
every ``crawl_interval`` ticks and indexes whatever it finds; anything
published between two passes is invisible until the next pass, and the
freshness tracker records exactly that lag.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Protocol

from repro.core.freshness import FreshnessTracker
from repro.index.document import Document
from repro.sim.simulator import Simulator
from repro.workloads.updates import PublishWorkload


class CrawlTarget(Protocol):
    """Anything a crawler can feed (both baselines implement this)."""

    def index_document(self, document: Document) -> None:  # pragma: no cover - protocol
        ...


class Crawler:
    """Re-crawls the published web on a fixed period.

    The "web" is represented by a :class:`PublishWorkload`: the set of pages
    that exist at crawl time is every event with ``time <= now``.  This is
    exactly the information a real crawler could observe by fetching pages —
    it has no access to the publish notifications QueenBee gets from its
    smart contract.
    """

    def __init__(
        self,
        simulator: Simulator,
        target: CrawlTarget,
        workload: PublishWorkload,
        crawl_interval: float = 1_000.0,
        freshness: Optional[FreshnessTracker] = None,
        pages_per_crawl: Optional[int] = None,
        on_crawl_complete: Optional[Callable[[int], None]] = None,
    ) -> None:
        if crawl_interval <= 0:
            raise ValueError(f"crawl_interval must be positive, got {crawl_interval!r}")
        self.simulator = simulator
        self.target = target
        self.workload = workload
        self.crawl_interval = crawl_interval
        self.freshness = freshness or FreshnessTracker()
        self.pages_per_crawl = pages_per_crawl
        self.on_crawl_complete = on_crawl_complete
        self.crawls_completed = 0
        self.pages_crawled = 0
        self._cursor = 0
        self._running = False

    # -- scheduling -------------------------------------------------------------------

    def start(self) -> None:
        """Schedule crawls every ``crawl_interval`` ticks from now on."""
        if self._running:
            return
        self._running = True
        self.simulator.schedule(self.crawl_interval, self._tick, label="crawler")

    def stop(self) -> None:
        self._running = False

    def register_initial(self, documents: List[Document]) -> None:
        """Index the pages that already existed before the measurement window."""
        for document in documents:
            self.target.index_document(document)

    # -- one crawl pass -----------------------------------------------------------------

    def crawl_once(self) -> int:
        """Index every page version published since the last pass.  Returns count."""
        now = self.simulator.now
        indexed = 0
        while self._cursor < len(self.workload.events):
            event = self.workload.events[self._cursor]
            if event.time > now:
                break
            if self.pages_per_crawl is not None and indexed >= self.pages_per_crawl:
                break
            self._cursor += 1
            self.target.index_document(event.document)
            self.freshness.record_publish(event.document.doc_id, event.document.version, event.time)
            self.freshness.record_indexed(event.document.doc_id, event.document.version, now)
            indexed += 1
        self.crawls_completed += 1
        self.pages_crawled += indexed
        if self.on_crawl_complete is not None:
            self.on_crawl_complete(indexed)
        return indexed

    def _tick(self) -> None:
        if not self._running:
            return
        self.crawl_once()
        self.simulator.schedule(self.crawl_interval, self._tick, label="crawler")
