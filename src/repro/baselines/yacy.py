"""A YaCy-style P2P search engine baseline.

YaCy [2] distributes an inverted index over peers using a DHT-like word
partitioning, but — as the paper points out — it "only work[s] on Web 2.0,
without an incentive scheme or a security incentive that guard against
practical attacks".  The baseline therefore models:

* term-partitioned posting lists, one responsible peer per term (no
  incentive to replicate, so replication factor 1);
* crawl-based content discovery (peers do not get publish notifications);
* voluntary participation: only ``participation_rate`` of peers actually
  contribute index shards, because nothing pays them to do so;
* no page-rank computation (ranking is purely textual), and no defense
  against a peer serving a manipulated shard.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import NetworkError, NodeUnreachableError, TermNotFoundError
from repro.index.analysis import Analyzer
from repro.index.document import Document, DocumentStore
from repro.index.postings import PostingList
from repro.index.statistics import CollectionStatistics
from repro.net.message import Message, Response
from repro.net.network import SimulatedNetwork
from repro.ranking.bm25 import BM25Scorer
from repro.search.planner import QueryPlanner
from repro.search.query import parse_query
from repro.search.executor import QueryExecutor
from repro.search.results import ResultPage, SearchResult
from repro.sim.simulator import Simulator

GET_POSTINGS_RPC = "yacy.get_postings"


@dataclass
class YaCyStats:
    queries: int = 0
    failed_term_fetches: int = 0
    documents_indexed: int = 0
    latencies: List[float] = field(default_factory=list)


class _YaCyPeer:
    """One YaCy peer holding the posting lists of the terms it is responsible for."""

    def __init__(self, address: str, network: SimulatedNetwork) -> None:
        self.address = address
        self.network = network
        self.postings: Dict[str, PostingList] = {}
        network.register(address, self.handle_message)

    def handle_message(self, message: Message) -> Response:
        if message.msg_type != GET_POSTINGS_RPC:
            return Response.failure(self.address, message.msg_type, "unknown message type")
        term = message.payload.get("term", "")
        postings = self.postings.get(term)
        if postings is None:
            return Response.failure(self.address, GET_POSTINGS_RPC, f"term {term!r} not held")
        return Response(self.address, GET_POSTINGS_RPC, {"postings": postings.to_payload()})


class YaCyStyleEngine:
    """Term-partitioned P2P search without incentives.

    ``participation_rate`` models the consequence of having no incentive
    scheme: only that fraction of peers host shards, so terms assigned to a
    non-participating peer are simply missing from the network — the quality
    gap the incentive design is meant to close.
    """

    def __init__(
        self,
        simulator: Simulator,
        network: SimulatedNetwork,
        peer_count: int = 16,
        participation_rate: float = 1.0,
        analyzer: Optional[Analyzer] = None,
        top_k: int = 10,
        address_prefix: str = "yacy",
    ) -> None:
        if peer_count < 1:
            raise ValueError("peer_count must be at least 1")
        if not 0.0 < participation_rate <= 1.0:
            raise ValueError("participation_rate must be in (0, 1]")
        self.simulator = simulator
        self.network = network
        self.analyzer = analyzer or Analyzer()
        self.top_k = top_k
        self.statistics = CollectionStatistics()
        self.documents = DocumentStore()
        self.stats = YaCyStats()
        self._rng = simulator.fork_rng("yacy")
        self.peers: List[_YaCyPeer] = [
            _YaCyPeer(f"{address_prefix}-{i:03d}", network) for i in range(peer_count)
        ]
        participating_count = max(1, int(round(peer_count * participation_rate)))
        self.participating = {
            peer.address for peer in self._rng.sample(self.peers, participating_count)
        }

    # -- indexing (crawl-driven) -----------------------------------------------------

    def index_document(self, document: Document) -> None:
        """Index one crawled page into the responsible peers' shards."""
        self.documents.add(document)
        frequencies = self.analyzer.term_frequencies(document.full_text)
        for term, frequency in frequencies.items():
            peer = self._responsible_peer(term)
            if peer is None:
                continue
            peer.postings.setdefault(term, PostingList()).add(document.doc_id, frequency)
        self.statistics.add_document(document.doc_id, document.length, frequencies)
        self.stats.documents_indexed += 1

    def _responsible_peer(self, term: str) -> Optional[_YaCyPeer]:
        """The single peer responsible for ``term`` — if it participates at all.

        Uses a stable hash (not the builtin ``hash``, which is salted per
        process) so experiment runs are reproducible.
        """
        import hashlib

        digest = int.from_bytes(hashlib.sha1(term.encode("utf-8")).digest()[:8], "big")
        peer = self.peers[digest % len(self.peers)]
        return peer if peer.address in self.participating else None

    # -- querying -----------------------------------------------------------------------

    def search(self, raw_query: str, client: str) -> ResultPage:
        """Answer a query from ``client`` by fetching each term's shard over the network."""
        started = self.simulator.now
        self.stats.queries += 1
        try:
            query = parse_query(raw_query, self.analyzer)
        except Exception:
            return ResultPage(query=raw_query)

        def fetch(term: str) -> PostingList:
            peer = self._responsible_peer(term)
            if peer is None:
                self.stats.failed_term_fetches += 1
                raise TermNotFoundError(f"no participating peer hosts term {term!r}")
            try:
                response = self.network.rpc(client, peer.address, GET_POSTINGS_RPC, {"term": term})
            except (NodeUnreachableError, NetworkError) as exc:
                self.stats.failed_term_fetches += 1
                raise TermNotFoundError(str(exc)) from exc
            if not response.ok:
                self.stats.failed_term_fetches += 1
                raise TermNotFoundError(response.error)
            return PostingList.from_payload(response.payload["postings"])

        planner = QueryPlanner(self.statistics.df)
        plan = planner.plan(query)
        executor = QueryExecutor(
            fetch_postings=fetch,
            statistics=self.statistics,
            page_ranks={},
            bm25=BM25Scorer(self.statistics),
            top_k=self.top_k,
        )
        outcome = executor.execute(plan)
        results = []
        for doc_id, score in outcome.scores.items():
            document = self.documents.maybe_get(doc_id)
            results.append(
                SearchResult(
                    doc_id=doc_id,
                    score=score,
                    url=document.url if document else "",
                    title=document.title if document else "",
                    owner=document.owner if document else "",
                )
            )
        results.sort(key=lambda r: (-r.score, r.doc_id))
        latency = self.simulator.now - started
        self.stats.latencies.append(latency)
        return ResultPage(
            query=raw_query,
            terms=query.terms,
            results=results,
            total_candidates=len(outcome.candidates),
            latency=latency,
            terms_missing=outcome.missing_terms,
        )
