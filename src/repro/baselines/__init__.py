"""Comparison systems.

The paper positions QueenBee against two kinds of existing systems:

* contemporary ("Web 2.0") **centralized search engines**, which crawl, run on
  dedicated servers, and are therefore subject to staleness, DDoS, and
  censorship — :mod:`repro.baselines.centralized` and
  :mod:`repro.baselines.crawler`;
* existing **P2P search engines such as YaCy**, which "only work on Web 2.0,
  without an incentive scheme or a security incentive that guard against
  practical attacks" — :mod:`repro.baselines.yacy`.

Both baselines run on the same simulated network and the same workloads as
QueenBee so the comparisons in E1–E3 are apples-to-apples.
"""

from repro.baselines.centralized import CentralizedSearchEngine
from repro.baselines.crawler import Crawler
from repro.baselines.yacy import YaCyStyleEngine

__all__ = ["CentralizedSearchEngine", "Crawler", "YaCyStyleEngine"]
