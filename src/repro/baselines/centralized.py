"""The centralized ("Web 2.0") search engine baseline.

A single server owns the whole index and answers queries over the network.
It is fast when healthy — one round trip — but it is a single point of
failure (E3's DDoS scenario simply takes its address offline) and its index
is only as fresh as its crawler's last pass (E2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import NetworkError, NodeUnreachableError, TermNotFoundError
from repro.index.analysis import Analyzer
from repro.index.document import Document, DocumentStore
from repro.index.inverted_index import LocalInvertedIndex
from repro.net.message import Message, Response
from repro.net.network import SimulatedNetwork
from repro.ranking.bm25 import BM25Scorer
from repro.ranking.graph import LinkGraph
from repro.ranking.pagerank import pagerank
from repro.ranking.scoring import CombinedScorer
from repro.search.planner import QueryPlanner
from repro.search.query import parse_query
from repro.search.executor import QueryExecutor
from repro.search.results import ResultPage, SearchResult
from repro.sim.simulator import Simulator

QUERY_RPC = "central.query"
DEFAULT_SERVER_ADDRESS = "central-server"
# Fixed per-query processing time charged by the server (ticks); a healthy
# data-centre engine is fast, which is why the centralized baseline wins E1's
# latency column while losing freshness (E2) and resilience (E3).
SERVER_PROCESSING_TICKS = 2.0


@dataclass
class CentralizedStats:
    queries: int = 0
    failed_queries: int = 0
    documents_indexed: int = 0
    latencies: List[float] = field(default_factory=list)


class CentralizedSearchEngine:
    """One server, one index, one crawler feeding it.

    Clients call :meth:`search` with their own peer address; the query
    travels over the simulated network, so server outages and partitions
    affect it exactly as they would in the real world.
    """

    def __init__(
        self,
        simulator: Simulator,
        network: SimulatedNetwork,
        address: str = DEFAULT_SERVER_ADDRESS,
        analyzer: Optional[Analyzer] = None,
        top_k: int = 10,
    ) -> None:
        self.simulator = simulator
        self.network = network
        self.address = address
        self.analyzer = analyzer or Analyzer()
        self.top_k = top_k
        self.index = LocalInvertedIndex(self.analyzer)
        self.documents = DocumentStore()
        self.link_graph = LinkGraph()
        self.page_ranks: Dict[int, float] = {}
        self.combiner = CombinedScorer()
        self.stats = CentralizedStats()
        network.register(address, self.handle_message)

    # -- indexing (driven by the crawler) ------------------------------------------

    def index_document(self, document: Document) -> None:
        """Add or update one document in the server's index."""
        self.documents.add(document)
        self.index.add_document(document)
        self.link_graph.add_node(document.doc_id)
        for target_url in document.links:
            target = self.documents.maybe_get_by_url(target_url)
            if target is not None:
                self.link_graph.add_edge(document.doc_id, target.doc_id)
        self.stats.documents_indexed += 1

    def recompute_page_ranks(self) -> None:
        """Centralized PageRank over everything crawled so far."""
        self.page_ranks = pagerank(self.link_graph).ranks

    # -- server side -----------------------------------------------------------------

    def handle_message(self, message: Message) -> Response:
        if message.msg_type != QUERY_RPC:
            return Response.failure(self.address, message.msg_type, "unknown message type")
        raw_query = message.payload.get("query", "")
        self.simulator.clock.advance(SERVER_PROCESSING_TICKS)
        results = self._answer(raw_query)
        return Response(self.address, QUERY_RPC, {"results": results})

    def _answer(self, raw_query: str) -> List[Dict[str, object]]:
        try:
            query = parse_query(raw_query, self.analyzer)
        except Exception:
            return []
        planner = QueryPlanner(self.index.statistics.df)
        plan = planner.plan(query)

        def fetch(term: str):
            postings = self.index.maybe_postings(term)
            if postings is None:
                raise TermNotFoundError(term)
            return postings

        executor = QueryExecutor(
            fetch_postings=fetch,
            statistics=self.index.statistics,
            page_ranks=self.page_ranks,
            bm25=BM25Scorer(self.index.statistics),
            combiner=self.combiner,
            top_k=self.top_k,
        )
        outcome = executor.execute(plan)
        results = []
        for doc_id, score in outcome.scores.items():
            document = self.documents.maybe_get(doc_id)
            results.append(
                {
                    "doc_id": doc_id,
                    "score": score,
                    "url": document.url if document else "",
                    "title": document.title if document else "",
                    "owner": document.owner if document else "",
                    "page_rank": self.page_ranks.get(doc_id, 0.0),
                }
            )
        results.sort(key=lambda row: (-row["score"], row["doc_id"]))
        return results

    # -- client side -------------------------------------------------------------------

    def search(self, raw_query: str, client: str) -> ResultPage:
        """Issue a query from ``client``'s device to the central server."""
        started = self.simulator.now
        self.stats.queries += 1
        try:
            response = self.network.rpc(client, self.address, QUERY_RPC, {"query": raw_query})
        except (NodeUnreachableError, NetworkError):
            self.stats.failed_queries += 1
            return ResultPage(query=raw_query, latency=self.simulator.now - started,
                              diagnostics={"error": "server unreachable"})
        results = [
            SearchResult(
                doc_id=row["doc_id"],
                score=row["score"],
                url=row["url"],
                title=row["title"],
                owner=row["owner"],
                page_rank=row["page_rank"],
            )
            for row in response.payload.get("results", [])
        ]
        latency = self.simulator.now - started
        self.stats.latencies.append(latency)
        return ResultPage(
            query=raw_query,
            results=results,
            total_candidates=len(results),
            latency=latency,
        )
