"""Freshness accounting: how long after publishing does a page become searchable?

"QueenBee advocates no-crawling, because crawling inevitably reduces the
freshness of the search results."  The E2 experiment quantifies exactly that:
the lag between a publish event and the moment the page (or its new version)
is visible to queries, for QueenBee's publish-driven indexing versus the
centralized baseline's periodic crawler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.metrics.summary import DistributionSummary, summarize


@dataclass
class FreshnessRecord:
    """Lifecycle timestamps of one published document version."""

    doc_id: int
    version: int
    published_at: float
    indexed_at: Optional[float] = None

    @property
    def lag(self) -> Optional[float]:
        if self.indexed_at is None:
            return None
        return self.indexed_at - self.published_at


class FreshnessTracker:
    """Tracks publish -> searchable lag per document version."""

    def __init__(self) -> None:
        self._records: Dict[Tuple[int, int], FreshnessRecord] = {}

    def record_publish(self, doc_id: int, version: int, time: float) -> None:
        """A creator published ``version`` of ``doc_id`` at ``time``."""
        self._records[(doc_id, version)] = FreshnessRecord(
            doc_id=doc_id, version=version, published_at=time
        )

    def record_indexed(self, doc_id: int, version: int, time: float) -> None:
        """The version became visible to queries at ``time``."""
        record = self._records.get((doc_id, version))
        if record is None:
            record = FreshnessRecord(doc_id=doc_id, version=version, published_at=time)
            self._records[(doc_id, version)] = record
        if record.indexed_at is None:
            record.indexed_at = time

    def lags(self) -> List[float]:
        """Every measured publish -> searchable lag."""
        return [r.lag for r in self._records.values() if r.lag is not None]

    def pending(self) -> int:
        """Versions published but not yet searchable."""
        return sum(1 for r in self._records.values() if r.indexed_at is None)

    def stale_fraction(self, now: float) -> float:
        """Fraction of published versions not yet searchable at ``now``."""
        total = len(self._records)
        if not total:
            return 0.0
        stale = sum(
            1
            for r in self._records.values()
            if r.indexed_at is None or r.indexed_at > now
        )
        return stale / total

    def summary(self) -> DistributionSummary:
        return summarize(self.lags())
