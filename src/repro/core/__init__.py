"""The QueenBee engine: everything from Figure 1 of the paper, wired together.

* :class:`~repro.core.config.QueenBeeConfig` — one knob object for network
  size, replication, index compression, redundancy, and incentive policy.
* :class:`~repro.core.publisher.ContentPublisher` — a content creator device
  that stores a page on the DWeb and registers it through the publish
  contract.
* :class:`~repro.core.worker.WorkerBee` — a peer that indexes published pages
  into the distributed index and computes page-rank partitions.
* :class:`~repro.core.directory.DocumentDirectory` — the doc_id -> metadata
  mapping published in the DHT so frontends can render results.
* :class:`~repro.core.engine.QueenBeeEngine` — the facade experiments use.
"""

from repro.core.config import QueenBeeConfig
from repro.core.directory import DocumentDirectory
from repro.core.publisher import ContentPublisher
from repro.core.worker import WorkerBee
from repro.core.freshness import FreshnessTracker
from repro.core.engine import QueenBeeEngine

__all__ = [
    "QueenBeeConfig",
    "DocumentDirectory",
    "ContentPublisher",
    "WorkerBee",
    "FreshnessTracker",
    "QueenBeeEngine",
]
