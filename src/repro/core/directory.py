"""The document directory: doc_id -> display metadata, published in the DHT.

Search results must show a URL, a title, and an owner without any central
database.  Worker bees write one small directory record per document into
the DHT when they index it; frontends resolve the records for the handful of
top-k results they display.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.errors import KeyNotFoundError
from repro.dht.dht import DHTNetwork
from repro.index.document import Document


def doc_key(doc_id: int) -> str:
    return f"docmeta:{doc_id}"


def url_key(url: str) -> str:
    return f"docid:{url}"


class DocumentDirectory:
    """Publish/resolve document metadata over the DHT."""

    def __init__(self, dht: DHTNetwork, snippet_length: int = 160) -> None:
        self.dht = dht
        self.snippet_length = snippet_length

    def publish(self, document: Document, cid: str) -> None:
        """Record the metadata of an indexed document."""
        record = {
            "doc_id": document.doc_id,
            "url": document.url,
            "title": document.title,
            "owner": document.owner,
            "cid": cid,
            "version": document.version,
            "published_at": document.published_at,
            "snippet": document.text[: self.snippet_length],
        }
        self.dht.put(doc_key(document.doc_id), record)
        self.dht.put(url_key(document.url), document.doc_id)

    def mark_deleted(self, doc_id: int) -> bool:
        """Replace a document's metadata with a tombstone (page deletion).

        The DHT has no delete primitive, so absence is expressed as published
        state: a ``deleted`` record that :meth:`resolve` hides and whose URL
        mapping is cleared.  Returns False when no record existed.
        """
        try:
            record = self.dht.get(doc_key(doc_id))
        except KeyNotFoundError:
            return False
        self.dht.put(doc_key(doc_id), {"doc_id": doc_id, "deleted": True})
        if isinstance(record, dict) and record.get("url"):
            self.dht.put(url_key(record["url"]), None)
        return True

    def resolve(self, doc_id: int) -> Dict[str, Any]:
        """Metadata for ``doc_id`` (empty dict when unknown/unreachable/deleted)."""
        try:
            record = self.dht.get(doc_key(doc_id))
        except KeyNotFoundError:
            return {}
        if not isinstance(record, dict) or record.get("deleted"):
            return {}
        return dict(record)

    def resolve_url(self, url: str) -> Optional[int]:
        """The doc_id registered for ``url`` (``None`` when unknown)."""
        try:
            doc_id = self.dht.get(url_key(url))
        except KeyNotFoundError:
            return None
        return int(doc_id) if doc_id is not None else None

    def resolve_many(self, doc_ids: List[int]) -> Dict[int, Dict[str, Any]]:
        return {doc_id: self.resolve(doc_id) for doc_id in doc_ids}
