"""The QueenBee engine: one object that owns a whole simulated deployment.

Experiments construct a :class:`QueenBeeEngine` from a
:class:`~repro.core.config.QueenBeeConfig`, feed it a corpus, and then drive
publishes, rank recomputations, and queries against it.  Everything in
Figure 1 of the paper is here: the DWeb substrate (DHT + decentralized
storage), the smart contracts, the worker bees, and the search frontend.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from types import MappingProxyType
from typing import Dict, Iterable, List, Mapping, Optional

from repro.chain.blockchain import Blockchain
from repro.contracts.queenbee import QueenBeeContracts
from repro.core.config import QueenBeeConfig
from repro.core.directory import DocumentDirectory
from repro.core.freshness import FreshnessTracker
from repro.core.publisher import ContentPublisher, PublishReceipt
from repro.core.worker import WorkerBee
from repro.dht.dht import DHTNetwork
from repro.index.analysis import Analyzer
from repro.index.cache import PostingCache
from repro.index.directory import TermDirectory
from repro.index.distributed import DistributedIndex
from repro.index.placement import PlacementPolicy
from repro.index.document import Document, DocumentStore
from repro.index.inverted_index import LocalInvertedIndex
from repro.index.statistics import CollectionStatistics
from repro.metrics.collector import MetricsCollector
from repro.net.churn import ChurnModel
from repro.net.gossip import (
    GossipPlane,
    GossipView,
    LOAD_PREFIX,
    PlaneEpochFeed,
    RANK_BANDS_KEY,
    RANK_CEILING_PREFIX,
    RANK_HEAD_KEY,
    STATS_HEAD_KEY,
    quantize_load,
)
from repro.net.detector import FailureDetector
from repro.net.latency import LogNormalLatency
from repro.net.network import RetryPolicy, SimulatedNetwork
from repro.ranking.distributed import (
    DecentralizedPageRank,
    RANK_BANDS_DHT_KEY,
    RankCeilingPublisher,
    RankVectorPublisher,
    assemble_banded_ranks,
)
from repro.ranking.graph import LinkGraph
from repro.ranking.pagerank import PageRankResult
from repro.search.frontend import FrontendOptions, SearchFrontend
from repro.search.results import ResultPage
from repro.sim.simulator import Simulator
from repro.storage.ipfs import DecentralizedStorage, StorageOptions

RANK_VECTOR_KEY = "rank:vector"


class GossipRankClient:
    """Rank-vector access for a remote frontend: gossiped head, DWeb body.

    With banded publication the gossip plane carries the band manifest
    (``rank:bands``); when it moves past the vector this client serves, the
    client recomputes its held bands' fingerprints locally and fetches only
    the bands that actually moved, splicing them over what it holds — a
    rank round that changed nothing costs zero content fetches.  The
    assembled vector is fingerprint-verified before adoption; any failure
    walks the fallback ladder (gossiped manifest → authoritative DHT
    manifest → the legacy ``rank:head`` full-vector fetch → keep serving
    the previous pair).  ``version()`` always reports the version of the
    vector actually *served* — if every rung fails the client keeps the
    previous consistent (version, vector) pair, so memo keys and result-
    cache keys never get ahead of the data they describe.
    """

    def __init__(self, view: GossipView, storage, requester: str, dht=None) -> None:
        self.view = view
        self.storage = storage
        self.requester = requester
        self.dht = dht
        self._version = 0
        self._ranks: Mapping[int, float] = MappingProxyType({})
        # Band fetches saved/spent and payload bytes downloaded, for the
        # E2 freshness accounting.
        self.band_fetches = 0
        self.band_refreshes = 0
        self.bytes_fetched = 0

    def _refresh(self) -> None:
        bands_version, manifest_json = self.view.rank_bands()
        if bands_version > self._version and manifest_json is not None:
            if self._adopt_banded(manifest_json):
                return
            # Gossiped manifest failed to assemble (lagging band entries or
            # unreachable providers): retry against the authoritative DHT
            # copy before degrading to the legacy full-vector path.
            if self.dht is not None:
                try:
                    authoritative = str(self.dht.get(RANK_BANDS_DHT_KEY))
                except Exception:
                    authoritative = None
                if authoritative is not None and self._adopt_banded(authoritative):
                    return
        head_version, cid = self.view.rank_head()
        if head_version <= self._version or cid is None:
            return
        try:
            payload = self.storage.get_text(cid, requester=self.requester)
        except Exception:
            # Unreachable vector: keep the previous consistent pair; the
            # next query retries.
            return
        self.bytes_fetched += len(payload)
        body = json.loads(payload)
        data = body["ranks"] if isinstance(body, dict) and "ranks" in body else body
        version = (
            int(body.get("version", head_version)) if isinstance(body, dict) else head_version
        )
        self._ranks = MappingProxyType(
            {int(doc_id): float(rank) for doc_id, rank in sorted(data.items())}
        )
        self._version = version

    def _adopt_banded(self, manifest_json: str) -> bool:
        """Assemble + verify one band manifest; adopt only on full success."""
        try:
            version = int(json.loads(manifest_json).get("v", 0))
        except (ValueError, TypeError):
            return False
        if version <= self._version:
            return False
        fetches = 0

        def fetch_text(cid: str) -> str:
            nonlocal fetches
            fetches += 1
            payload = self.storage.get_text(cid, requester=self.requester)
            self.bytes_fetched += len(payload)
            return payload

        assembled = assemble_banded_ranks(
            manifest_json, fetch_text, local_ranks=self._ranks
        )
        if assembled is None:
            return False
        self._ranks = MappingProxyType(assembled)
        self._version = version
        self.band_fetches += fetches
        self.band_refreshes += 1
        return True

    def version(self) -> int:
        self._refresh()
        return self._version

    def ranks(self) -> Mapping[int, float]:
        self._refresh()
        return self._ranks


@dataclass
class EngineStats:
    """High-level counters over the lifetime of one engine."""

    documents_published: int = 0
    documents_deleted: int = 0
    publishes_rejected: int = 0
    rank_rounds: int = 0
    workers_slashed: int = 0
    queries_served: int = 0


class QueenBeeEngine:
    """A complete simulated QueenBee deployment."""

    def __init__(self, config: Optional[QueenBeeConfig] = None) -> None:
        self.config = config or QueenBeeConfig()
        self.config.validate()
        cfg = self.config

        self.simulator = Simulator(seed=cfg.seed)
        # The local failure detector feeds on every RPC outcome the network
        # observes and replaces the is_online oracle on the fetch/routing
        # path.  On a healthy network it never suspects anyone, so wiring
        # it by default keeps the happy path bit-identical.
        self.detector = (
            FailureDetector(
                self.simulator,
                suspicion_threshold=cfg.detector_threshold,
                probe_after=cfg.detector_probe_after,
            )
            if cfg.failure_detector
            else None
        )
        self.network = SimulatedNetwork(
            self.simulator,
            latency=LogNormalLatency(median=cfg.latency_median, sigma=cfg.latency_sigma),
            loss_rate=cfg.loss_rate,
            rpc_timeout=cfg.rpc_timeout or None,
            detector=self.detector,
        )
        self.network.retry_policy = RetryPolicy(
            attempts=cfg.rpc_retries,
            backoff_base=cfg.retry_backoff,
            jitter=cfg.retry_jitter,
            deadline=cfg.retry_deadline,
        )
        self.dht = DHTNetwork(
            self.simulator, self.network, k=cfg.dht_k, alpha=cfg.dht_alpha, replicate=cfg.dht_replicate
        )
        self.storage = DecentralizedStorage(
            self.simulator, self.network, self.dht,
            options=StorageOptions.from_config(cfg),
            liveness=self.detector,
        )
        self.chain = Blockchain(self.simulator, validators=["validator-0"], auto_mine=True)
        self.contracts = QueenBeeContracts.deploy(
            self.chain,
            dedup_enabled=cfg.dedup_enabled,
            min_stake=cfg.min_worker_stake,
            publish_reward=cfg.publish_reward,
            task_reward=cfg.task_reward,
            popularity_policy=cfg.popularity_policy,
            rank_threshold=cfg.rank_threshold,
            popularity_budget=cfg.popularity_budget,
            creator_share=cfg.creator_share,
            worker_share=cfg.worker_share,
            treasury_share=cfg.treasury_share,
        )

        self.analyzer = Analyzer()
        # Constructed before the index: the delta patch channel reports its
        # byte counters through the engine's collector.
        self.metrics = MetricsCollector()
        self.posting_cache = (
            PostingCache(cfg.posting_cache_capacity) if cfg.posting_cache_capacity > 0 else None
        )
        # The gossiped metadata plane: one store per peer, reconciled by
        # anti-entropy rounds scheduled as simulator events.  On the
        # "shared" plane (the idealized ablation) there is no plane object
        # and frontends read the engine's in-process state directly.
        if cfg.metadata_plane == "gossip":
            self.gossip: Optional[GossipPlane] = GossipPlane(
                self.simulator, self.network,
                fanout=cfg.gossip_fanout, interval=cfg.gossip_interval,
            )
            # Epoch bumps enter the plane at the publishing peer's node;
            # the first peer's store is the deterministic fallback origin.
            epoch_feed = PlaneEpochFeed(self.gossip, "peer-000:store")
        else:
            self.gossip = None
            epoch_feed = None
        self.placement = (
            PlacementPolicy(
                self.storage,
                replication_factor=cfg.placement_replication_factor or cfg.storage_replication,
                repair_floor=cfg.placement_repair_floor or None,
                repair_grace=cfg.placement_repair_grace,
                repair_budget=cfg.placement_repair_budget or None,
                simulator=self.simulator,
            )
            if cfg.index_placement
            else None
        )
        self.index = DistributedIndex(
            self.dht, self.storage, compress=cfg.compress_index, cache=self.posting_cache,
            validate_generations=cfg.cache_validation, shard_size=cfg.index_shard_size,
            # Published shards carry their range's quantized minimum document
            # length (tightens the per-shard MaxScore bound); the engine's
            # shared statistics are the length source of truth.  Lazy lambda:
            # self.statistics is constructed a few lines below.
            length_lookup=lambda doc_id: self.statistics.length_of(doc_id),
            placement=self.placement,
            epoch_feed=epoch_feed,
            delta_publication=cfg.delta_publication,
            delta_max_ratio=cfg.delta_max_ratio,
            metrics=self.metrics,
        )
        # Rank-vector publication: banded deltas against the last wholesale
        # anchor when delta publication is on, pure wholesale otherwise.
        self._rank_publisher = RankVectorPublisher(
            self.storage, self.dht,
            bands=cfg.rank_delta_bands if cfg.delta_publication else 0,
            metrics=self.metrics,
        )
        self.directory = DocumentDirectory(self.dht)
        self.term_directory = TermDirectory(self.dht, self.storage)
        self.statistics = CollectionStatistics()
        self.freshness = FreshnessTracker()
        self.stats = EngineStats()

        # Ground-truth bookkeeping used by experiments (never by the search path).
        self.documents = DocumentStore()
        self.link_graph = LinkGraph()

        self._rng = self.simulator.fork_rng("engine")
        self._publishers: Dict[str, ContentPublisher] = {}
        self._pending_links: Dict[str, List[int]] = {}
        self.last_popularity_payouts: Dict[str, int] = {}
        self._page_ranks: Dict[int, float] = {}
        self._page_ranks_view: Mapping[int, float] = MappingProxyType(self._page_ranks)
        self._rank_version = 0
        self._rank_cid: Optional[str] = None
        self._publishes_since_stats = 0
        self.stats_publish_interval = 10

        # Build the peer overlay: every peer is both a DHT node and a storage peer.
        self.peer_ids = [f"peer-{i:03d}" for i in range(cfg.peer_count)]
        for peer_id in self.peer_ids:
            self.dht.add_node(address=f"{peer_id}:dht")
            self.storage.add_peer(address=f"{peer_id}:store")
            if self.gossip is not None:
                self.gossip.node(f"{peer_id}:store")

        if self.gossip is not None:
            # Serving-load hints piggyback on gossip: at the start of each
            # round every peer re-publishes its own quantized served-block
            # counter into its own store (a local read — no RPC), and the
            # round spreads whatever buckets moved.  Remote frontends rank
            # a shard's replica hints by these instead of reading the
            # counters off shared peer objects.
            self.gossip.add_refresh_hook(self._publish_load_hints)
            self.gossip.start()

        # Recruit worker bees from the first `worker_count` peers.
        self.workers: List[WorkerBee] = []
        for i in range(cfg.worker_count):
            worker_account = f"worker-{i:03d}"
            self.chain.fund_account(worker_account, cfg.worker_funding)
            self.contracts.register_worker(worker_account, cfg.worker_stake)
            self.workers.append(
                WorkerBee(
                    address=worker_account,
                    index=self.index,
                    directory=self.directory,
                    analyzer=self.analyzer,
                    storage_peer=f"{self.peer_ids[i]}:store",
                    damping=cfg.rank_damping,
                    term_directory=self.term_directory,
                )
            )
        self._next_worker = 0

    # -- creators -------------------------------------------------------------------

    def publisher_for(self, owner: str) -> ContentPublisher:
        """The (lazily created and funded) publisher device of ``owner``."""
        publisher = self._publishers.get(owner)
        if publisher is None:
            self.chain.fund_account(owner, self.config.creator_funding)
            storage_peer = self._rng.choice(self.storage.peer_addresses())
            publisher = ContentPublisher(owner, self.storage, self.contracts, storage_peer=storage_peer)
            self._publishers[owner] = publisher
        return publisher

    # -- publishing -----------------------------------------------------------------

    def publish_document(self, document: Document) -> PublishReceipt:
        """The full publish pipeline for one page version.

        Store on the DWeb, register through the contract, have a worker bee
        index it, reward the worker, and track freshness.  Rejected publishes
        (dedup defense) stop after the contract call.
        """
        published_at = self.simulator.now
        publisher = self.publisher_for(document.owner)
        receipt = publisher.publish(document)
        if not receipt.accepted:
            self.stats.publishes_rejected += 1
            return receipt

        self.freshness.record_publish(document.doc_id, document.version, published_at)
        worker = self._pick_worker()
        worker.index_document(document, receipt.cid, statistics=self.statistics)
        self.contracts.reward_worker_task(worker.address, "index")
        self.freshness.record_indexed(document.doc_id, document.version, self.simulator.now)

        self._register_ground_truth(document)
        self.stats.documents_published += 1
        self._publishes_since_stats += 1
        if self._publishes_since_stats >= self.stats_publish_interval:
            self.publish_statistics()
        return receipt

    def bootstrap_corpus(self, documents: Iterable[Document]) -> int:
        """Efficiently load an initial corpus that predates the measurement window.

        The bootstrap path batches index construction: pages are stored and
        registered individually (so contract state and honey flows are real),
        but posting lists are built locally by the worker bees' analyzer and
        published once per term instead of once per term per document.
        Freshness is not tracked for bootstrapped pages.
        """
        documents = list(documents)
        local = LocalInvertedIndex(self.analyzer)
        worker_cycle = 0
        for document in documents:
            publisher = self.publisher_for(document.owner)
            receipt = publisher.publish(document)
            if not receipt.accepted:
                self.stats.publishes_rejected += 1
                continue
            frequencies = local.add_document(document)
            worker = self.workers[worker_cycle % len(self.workers)]
            worker_cycle += 1
            # Directory records are published even on the batch path, so the
            # first post-bootstrap update of any page can diff against its
            # bootstrapped term vector regardless of which worker handles it.
            self.term_directory.publish(
                document.doc_id, frequencies,
                publisher=worker.storage_peer, prior_version=0,
            )
            self.directory.publish(document, receipt.cid)
            self.statistics.add_document(document.doc_id, document.length, frequencies)
            self._register_ground_truth(document)
            self.stats.documents_published += 1

        # Publish each term's shard once, spreading the work across workers.
        for term_index, term in enumerate(local.terms()):
            worker = self.workers[term_index % len(self.workers)]
            self.index.publish_term(term, local.postings(term), publisher=worker.storage_peer)
            self.contracts.reward_worker_task(worker.address, "index")
        self.publish_statistics()
        return local.document_count

    def delete_document(self, doc_id: int) -> bool:
        """Remove a published page from the index (a first-class delete).

        A worker bee resolves the page's term vector from the term directory,
        removes it from every shard, publishes a directory tombstone, and is
        rewarded like any other index task.  Ground truth (document store and
        link graph) is updated so later rank rounds stop crediting the page.
        """
        worker = self._pick_worker()
        if not worker.delete_document(doc_id, statistics=self.statistics):
            return False
        self.contracts.reward_worker_task(worker.address, "index")
        self.documents.remove(doc_id)
        self.link_graph.remove_node(doc_id)
        self.stats.documents_deleted += 1
        self.metrics.increment("publish.deletes")
        self._publishes_since_stats += 1
        if self._publishes_since_stats >= self.stats_publish_interval:
            self.publish_statistics()
        return True

    def publish_statistics(self) -> None:
        """Publish the shared collection statistics to the DWeb."""
        cid = self.index.publish_statistics(self.statistics)
        self._publishes_since_stats = 0
        if self.gossip is not None:
            # Announce the new statistics head so remote frontends know to
            # re-fetch (the DHT record stays authoritative).
            self.gossip.publish(
                "peer-000:store", STATS_HEAD_KEY, cid, self.statistics.version
            )

    def _publish_load_hints(self) -> None:
        """Refresh every peer's own coarse serving-load entry (gossip hook).

        A zero bucket is never published: it carries no information (an
        absent hint already reads as load 0) and a version-0 entry could
        not propagate anyway — merges only accept strictly newer versions.
        """
        for address, peer in sorted(self.storage.peers.items()):
            bucket = quantize_load(peer.blocks_served)
            if bucket > 0:
                self.gossip.publish(address, LOAD_PREFIX + address, bucket, bucket)

    # -- ranking ---------------------------------------------------------------------

    def compute_page_ranks(self, redundancy: Optional[int] = None) -> PageRankResult:
        """One decentralized PageRank round: compute, publish, reward, slash."""
        cfg = self.config
        worker_fns = {worker.address: worker.rank_worker_fn() for worker in self.workers}
        coordinator = DecentralizedPageRank(
            workers=worker_fns,
            damping=cfg.rank_damping,
            redundancy=redundancy if redundancy is not None else cfg.rank_redundancy,
            tolerance=cfg.rank_tolerance,
            max_iterations=cfg.rank_max_iterations,
            rng=self.simulator.fork_rng("rank-round"),
        )
        result = coordinator.compute(self.link_graph)
        self._page_ranks = dict(result.ranks)
        self._page_ranks_view = MappingProxyType(self._page_ranks)
        self._rank_version += 1
        publisher_peer = self.workers[0].storage_peer if self.workers else None
        receipt = self._rank_publisher.publish(
            result.ranks, self._rank_version, publisher=publisher_peer
        )
        if receipt.full_cid is not None:
            self._rank_cid = receipt.full_cid
        if cfg.publish_rank_ceilings:
            # Stamp quantized per-shard rank ceilings into every term
            # manifest (generations untouched, caches stay valid): any
            # frontend can then prune shards by rank straight from the
            # manifest, without materialising the rank vector.  With delta
            # publication on, each restamp also gossips a per-term
            # rank-version hint so remote frontends refresh ceilings on
            # their *cached* manifests without a refetch.
            hint_sink = (
                self._rank_hint_sink()
                if self.gossip is not None and cfg.delta_publication
                else None
            )
            RankCeilingPublisher(self.index).publish(
                result.ranks, self._rank_version, hint_sink=hint_sink
            )
        if self.gossip is not None:
            if receipt.manifest_json is not None:
                # The band manifest rides the plane whole (it is small);
                # the DHT record under the same name stays authoritative.
                self.gossip.publish(
                    "peer-000:store", RANK_BANDS_KEY, receipt.manifest_json, self._rank_version
                )
            if receipt.full_cid is not None:
                # Announce the new full-vector head; delta rounds leave it
                # at the anchor version on purpose (the anchor is what that
                # CID holds), so legacy readers stay version-consistent.
                self.gossip.publish(
                    "peer-000:store", RANK_HEAD_KEY, self._rank_cid, self._rank_version
                )

        # Reward every worker that participated, slash the ones whose answers
        # lost a majority vote (the collusion defense's enforcement arm).
        for worker in self.workers:
            self.contracts.reward_worker_task(worker.address, "rank")
        for dissenting in coordinator.dissenting_workers():
            self.contracts.slash_worker(dissenting, self.config.worker_stake, "rank result rejected by vote")
            self.stats.workers_slashed += 1

        self.last_popularity_payouts = self.contracts.distribute_popularity_rewards(
            self.owner_rank_mass()
        )
        self.stats.rank_rounds += 1
        self.metrics.increment("rank.rounds")
        return result

    def owner_rank_mass(self) -> Dict[str, float]:
        """Summed page rank per content owner (input to the popularity reward)."""
        mass: Dict[str, float] = {}
        for doc_id, rank in sorted(self._page_ranks.items()):
            document = self.documents.maybe_get(doc_id)
            if document is None:
                continue
            mass[document.owner] = mass.get(document.owner, 0.0) + rank
        return mass

    def page_ranks(self) -> Mapping[int, float]:
        """The engine's latest rank vector as a cached read-only view.

        The same :class:`~types.MappingProxyType` object is returned until
        the next rank round replaces it (see :meth:`rank_version`), so
        per-query consumers stop paying an O(corpus) dict copy per call.
        """
        return self._page_ranks_view

    def rank_version(self) -> int:
        """Monotonic version of the rank vector (bumped per rank round).

        Frontends key memoized rank-derived values (e.g. the MaxScore rank
        upper bound) on this counter instead of re-deriving them per query.
        """
        return self._rank_version

    def fetch_published_ranks(self) -> Dict[int, float]:
        """The rank vector as a frontend would fetch it from the DWeb.

        With banded publication the authoritative band manifest is preferred
        (on a delta round the full vector under ``rank:vector`` is the older
        wholesale anchor); the legacy full-vector path is the fallback.
        """
        try:
            manifest_json = str(self.dht.get(RANK_BANDS_DHT_KEY))
        except Exception:
            manifest_json = None
        if manifest_json is not None:
            assembled = assemble_banded_ranks(manifest_json, self.storage.get_text)
            if assembled is not None:
                return assembled
        try:
            cid = self.dht.get(RANK_VECTOR_KEY)
            payload = self.storage.get_text(cid)
        except Exception:
            return {}
        body = json.loads(payload)
        ranks = body["ranks"] if isinstance(body, dict) and "ranks" in body else body
        return {int(doc_id): float(rank) for doc_id, rank in sorted(ranks.items())}

    # -- searching --------------------------------------------------------------------

    def _frontend_options(
        self, options: Optional[FrontendOptions], overrides: Dict[str, object]
    ) -> FrontendOptions:
        """Resolve the options for one frontend construction.

        ``None``-valued overrides are dropped (callers forwarding an unset
        ``top_k=None`` mean "the config default"), then overrides replace
        fields on either the given ``options`` or a fresh
        :meth:`FrontendOptions.from_config`.
        """
        overrides = {
            name: value for name, value in sorted(overrides.items()) if value is not None
        }
        if options is None:
            return FrontendOptions.from_config(self.config, **overrides)
        return replace(options, **overrides) if overrides else options

    def create_frontend(
        self,
        requester: Optional[str] = None,
        options: Optional[FrontendOptions] = None,
        **overrides,
    ) -> SearchFrontend:
        """A search frontend running on one of the peers.

        The frontend's *policy* is described by a
        :class:`~repro.search.frontend.FrontendOptions` — defaulted from the
        engine's config, with keyword ``overrides`` replacing individual
        fields (``create_frontend(top_k=3)`` still reads naturally).
        Dispatches on the configured metadata plane: on ``"shared"`` the
        frontend reads the engine's in-process state (the idealized
        ablation); on ``"gossip"`` it is a real remote node — its own
        index instance, posting cache, and gossip view, with no reference
        to the engine's epoch registry, rank vector, or peer counters.
        """
        options = self._frontend_options(options, overrides)
        if self.config.metadata_plane == "gossip":
            return self.create_gossip_frontend(requester=requester, options=options)
        return self.create_shared_frontend(requester=requester, options=options)

    def create_shared_frontend(
        self,
        requester: Optional[str] = None,
        options: Optional[FrontendOptions] = None,
        **overrides,
    ) -> SearchFrontend:
        """A frontend sharing the engine's index/rank state (shared plane)."""
        options = self._frontend_options(options, overrides)
        requester = requester or self._rng.choice(self.storage.peer_addresses())
        return SearchFrontend(
            simulator=self.simulator,
            index=self.index,
            rank_provider=self.page_ranks,
            rank_version_provider=self.rank_version,
            metadata_resolver=self.directory.resolve,
            ad_provider=self.contracts.ads_for,
            analyzer=self.analyzer,
            statistics=self.statistics,
            max_ads=self.config.max_ads,
            planning_strategy=self.config.planning_strategy,
            execution_mode=self.config.execution_mode,
            requester=requester,
            shard_size_hint=self.config.index_shard_size,
            options=options,
        )

    def create_gossip_frontend(
        self,
        requester: Optional[str] = None,
        options: Optional[FrontendOptions] = None,
        **overrides,
    ) -> SearchFrontend:
        """A frontend that is a genuine remote node on the gossip plane.

        Everything it consumes is either network-resolved (DHT lookups,
        storage fetches, the published rank vector and statistics) or read
        from its *own peer's* gossip store (index epochs, the rank and
        statistics heads, serving-load routing hints).  It shares no
        in-process soft state with the engine: its ``DistributedIndex``,
        posting cache, and manifest cache are its own, validated against
        its gossip view — which is what lets many mutually-ignorant
        frontends run against one overlay.  Freshness is bounded by gossip
        convergence (drive rounds via the scheduled events or
        :meth:`converge_metadata`); staleness costs extra fetches or looser
        pruning, never a wrong page.
        """
        if self.gossip is None:
            raise ValueError(
                'gossip frontends need metadata_plane="gossip" in the config'
            )
        cfg = self.config
        options = self._frontend_options(options, overrides)
        requester = requester or self._rng.choice(self.storage.peer_addresses())
        view = self.gossip.view(requester)
        cache = (
            PostingCache(cfg.posting_cache_capacity)
            if cfg.posting_cache_capacity > 0
            else None
        )
        index = DistributedIndex(
            self.dht, self.storage, compress=cfg.compress_index, cache=cache,
            validate_generations=cfg.cache_validation, shard_size=cfg.index_shard_size,
            epoch_feed=view,
            load_lookup=view.load_hint,
            delta_publication=cfg.delta_publication,
            delta_max_ratio=cfg.delta_max_ratio,
            metrics=self.metrics,
        )
        rank_client = GossipRankClient(view, self.storage, requester, dht=self.dht)
        return SearchFrontend(
            simulator=self.simulator,
            index=index,
            rank_provider=rank_client.ranks,
            rank_version_provider=rank_client.version,
            metadata_resolver=self.directory.resolve,
            ad_provider=self.contracts.ads_for,
            analyzer=Analyzer(),
            statistics=None,
            max_ads=cfg.max_ads,
            planning_strategy=cfg.planning_strategy,
            execution_mode=cfg.execution_mode,
            requester=requester,
            shard_size_hint=cfg.index_shard_size,
            metadata_view=view,
            # FrontendOptions.from_config already defaults the RankRangeIndex
            # off on the gossip plane (remote frontends prune from manifest
            # ceilings instead of materialising the rank vector).
            options=options,
        )

    def create_service(
        self,
        options: Optional["ServiceOptions"] = None,
        frontend_options: Optional[FrontendOptions] = None,
        requesters: Optional[List[str]] = None,
    ) -> "QueryService":
        """A serving front door over this deployment's frontends.

        The service itself holds no engine reference (the serving plane is
        isolated, repro-lint rule RL003); this wires it the narrow
        dependencies it needs — the simulator, :meth:`create_frontend` as
        the replica factory, and the engine's metrics collector — plus a
        callback so fully-served requests count in ``stats.queries_served``.
        """
        from repro.serve.service import QueryService

        def count_served() -> None:
            self.stats.queries_served += 1

        return QueryService(
            simulator=self.simulator,
            frontend_factory=self.create_frontend,
            options=options,
            frontend_options=frontend_options,
            requesters=requesters,
            metrics=self.metrics,
            on_served=count_served,
        )

    def converge_metadata(self, max_rounds: int = 64) -> int:
        """Gossip synchronously until every online peer's view agrees.

        Returns the rounds needed (0 when already converged or on the
        shared plane; -1 when ``max_rounds`` was not enough).  Benchmarks
        and tests call this between a publish/rank phase and a measured
        query phase, standing in for the wall-clock a deployment would
        wait for anti-entropy to settle.
        """
        if self.gossip is None:
            return 0
        return self.gossip.rounds_to_converge(max_rounds)

    def search(self, query: str, frontend: Optional[SearchFrontend] = None) -> ResultPage:
        """Answer one query (convenience wrapper around a default frontend)."""
        frontend = frontend or self._frontend()
        page = frontend.search(query)
        self._record_query_metrics(page, frontend)
        return page

    def search_batch(
        self, queries: Iterable[str], frontend: Optional[SearchFrontend] = None
    ) -> List[ResultPage]:
        """Answer a query stream through the batched (amortized) API."""
        frontend = frontend or self._frontend()
        pages = frontend.search_batch(list(queries))
        for page in pages:
            self._record_query_metrics(page, frontend)
        self.metrics.increment("query.batches")
        return pages

    def _frontend(self) -> SearchFrontend:
        if not hasattr(self, "_default_frontend"):
            self._default_frontend = self.create_frontend()
        return self._default_frontend

    def _record_query_metrics(
        self, page: ResultPage, frontend: Optional[SearchFrontend] = None
    ) -> None:
        self.stats.queries_served += 1
        self.metrics.observe("query.latency", page.latency)
        diagnostics = page.diagnostics
        self.metrics.increment("query.postings_scanned", diagnostics.get("postings_scanned", 0))
        self.metrics.increment("query.docs_scored", diagnostics.get("docs_scored", 0))
        self.metrics.increment("query.docs_pruned", diagnostics.get("docs_pruned", 0))
        self.metrics.increment("query.shards_skipped", diagnostics.get("shards_skipped", 0))
        if diagnostics.get("result_cache") == "hit":
            self.metrics.increment("query.result_cache_hits")
        if frontend is not None and frontend.result_cache is not None:
            self.metrics.set_gauges(
                {
                    "frontend.result_cache.hit_rate": frontend.result_cache.stats.hit_rate,
                    "frontend.result_cache.size": len(frontend.result_cache),
                }
            )
        if self.posting_cache is not None:
            cache_stats = self.posting_cache.stats
            self.metrics.set_gauges(
                {
                    "index.cache.hit_rate": cache_stats.hit_rate,
                    "index.cache.size": len(self.posting_cache),
                    "index.cache.invalidations": cache_stats.invalidations,
                    "index.cache.stale_hits": cache_stats.stale_hits,
                    "index.cache.stale_hit_rate": cache_stats.stale_hit_rate,
                }
            )

    # -- fault injection (used by the resilience experiment) ----------------------------

    def create_churn_model(self) -> ChurnModel:
        """A churn driver wired into the shard-placement repair loop.

        Callers schedule departures/arrivals of the engine's peer endpoints
        (storage addresses for shard-serving churn); every departure of a
        shard provider triggers the placement policy's repair — shards whose
        live providers drop below the replication floor are re-replicated
        onto fresh peers and the term manifests' provider hints refreshed —
        and every arrival retries repairs that previously found no live
        source.  With placement disabled the model drives bare connectivity
        churn, exactly as constructing :class:`ChurnModel` directly would.
        """
        churn = ChurnModel(self.simulator, self.network)
        if self.placement is not None:
            churn.add_leave_listener(self.placement.on_peer_down)
            churn.add_join_listener(self.placement.on_peer_up)
        return churn

    def fail_peers(self, fraction: float) -> List[str]:
        """Take a random fraction of peers (their DHT + storage endpoints) offline."""
        count = int(round(len(self.peer_ids) * fraction))
        victims = self._rng.sample(self.peer_ids, count)
        for peer_id in victims:
            self.network.set_offline(f"{peer_id}:dht")
            self.network.set_offline(f"{peer_id}:store")
        return victims

    def restore_peers(self, peer_ids: Iterable[str]) -> None:
        for peer_id in peer_ids:
            self.network.set_online(f"{peer_id}:dht")
            self.network.set_online(f"{peer_id}:store")

    # -- internals -----------------------------------------------------------------------

    def _pick_worker(self) -> WorkerBee:
        worker = self.workers[self._next_worker % len(self.workers)]
        self._next_worker += 1
        return worker

    def _register_ground_truth(self, document: Document) -> None:
        self.documents.add(document)
        self.link_graph.add_node(document.doc_id)
        for target_url in document.links:
            target = self.documents.maybe_get_by_url(target_url)
            if target is not None:
                self.link_graph.add_edge(document.doc_id, target.doc_id)
            else:
                # The link target has not been published yet; connect it when it is.
                self._pending_links.setdefault(target_url, []).append(document.doc_id)
        for source_doc_id in self._pending_links.pop(document.url, []):
            self.link_graph.add_edge(source_doc_id, document.doc_id)

    def _rank_hint_sink(self):
        """The per-term ``rv:<term>`` gossip writer for ceiling restamps."""

        def sink(term: str, manifest) -> None:
            value = json.dumps(
                {
                    "g": manifest.generation,
                    "rc": [info.rank_ceiling for info in manifest.shards],
                },
                sort_keys=True,
            )
            self.gossip.publish(
                "peer-000:store", RANK_CEILING_PREFIX + term, value, self._rank_version
            )

        return sink
