"""Content creators: the publish side of QueenBee's no-crawling design."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.contracts.queenbee import QueenBeeContracts
from repro.index.document import Document
from repro.storage.ipfs import DecentralizedStorage


@dataclass
class PublishReceipt:
    """What a creator gets back from publishing one page version."""

    url: str
    cid: str
    version: int
    accepted: bool
    published_at: float
    error: str = ""


class ContentPublisher:
    """A content creator's device.

    Publishing a page is a two-step pipeline, exactly as in the paper:

    1. store the content on the DWeb (decentralized storage), obtaining its
       tamper-proof CID;
    2. announce the (url, CID) pair through the publish smart contract, which
       both earns the creator honey and notifies worker bees that there is
       something new to index.
    """

    def __init__(
        self,
        owner: str,
        storage: DecentralizedStorage,
        contracts: QueenBeeContracts,
        storage_peer: Optional[str] = None,
    ) -> None:
        self.owner = owner
        self.storage = storage
        self.contracts = contracts
        self.storage_peer = storage_peer
        self.receipts: List[PublishReceipt] = []

    def publish(self, document: Document) -> PublishReceipt:
        """Publish one document version.  Never raises: rejected publishes
        (e.g. the dedup defense firing on mirrored content) return a receipt
        with ``accepted=False``."""
        store_receipt = self.storage.add_text(
            document.full_text, publisher=self.storage_peer
        )
        cid = store_receipt.cid
        record = self.contracts.publish_page(self.owner, document.url, cid)
        accepted = "error" not in record
        receipt = PublishReceipt(
            url=document.url,
            cid=cid,
            version=record.get("version", document.version) if accepted else document.version,
            accepted=accepted,
            published_at=record.get("published_at", 0.0) if accepted else 0.0,
            error=record.get("error", "") if not accepted else "",
        )
        self.receipts.append(receipt)
        return receipt

    @property
    def accepted_count(self) -> int:
        return sum(1 for receipt in self.receipts if receipt.accepted)

    @property
    def rejected_count(self) -> int:
        return sum(1 for receipt in self.receipts if not receipt.accepted)

    def honey_earned(self) -> int:
        """The creator's current honey balance."""
        return self.contracts.honey_balance(self.owner)
