"""Worker bees: the peers that maintain the index and compute page ranks."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.directory import DocumentDirectory
from repro.index.analysis import Analyzer
from repro.index.directory import TermDirectory
from repro.index.distributed import DistributedIndex
from repro.index.document import Document
from repro.index.postings import PostingList
from repro.index.statistics import CollectionStatistics
from repro.ranking.distributed import RankContribution, RankTask, compute_honest_contribution


@dataclass
class IndexTaskResult:
    """Outcome of indexing one published page version."""

    doc_id: int
    terms_updated: int
    is_update: bool


class WorkerBee:
    """A peer that volunteers index and rank work in exchange for honey.

    The worker is *fully* stateless about the corpus: it reads the published
    shards for each term it touches, merges, and republishes — and it learns
    a document's previous term vector from the versioned term directory
    (``doc:<doc_id>`` records in the DHT) rather than from local memory.  Any
    worker can therefore index, update, or delete any page, including pages
    whose earlier versions were handled by a different volunteer — the
    property that lets QueenBee parallelize indexing across volunteers
    without stale postings surviving an update.

    Republishing is shard-granular: ``DistributedIndex.publish_term``
    fingerprints each doc-id-range shard against the previous manifest, so
    an update that lands in one range of a head term's list re-stores only
    that shard (plus the small manifest) and leaves every other shard's
    cache entries valid — the cost of an update no longer scales with the
    whole posting list.

    Attack hooks
    ------------
    ``index_tamper`` and ``rank_tamper`` are optional callables the attack
    scenarios (E6) install on colluding workers.  Honest workers leave them
    ``None``.
    """

    def __init__(
        self,
        address: str,
        index: DistributedIndex,
        directory: DocumentDirectory,
        analyzer: Optional[Analyzer] = None,
        storage_peer: Optional[str] = None,
        damping: float = 0.85,
        index_tamper: Optional[Callable[[str, PostingList], PostingList]] = None,
        rank_tamper: Optional[Callable[[RankTask, RankContribution], RankContribution]] = None,
        term_directory: Optional[TermDirectory] = None,
    ) -> None:
        self.address = address
        self.index = index
        self.directory = directory
        self.analyzer = analyzer or Analyzer()
        self.storage_peer = storage_peer
        self.damping = damping
        self.index_tamper = index_tamper
        self.rank_tamper = rank_tamper
        # Workers sharing a DHT share directory state by construction, so a
        # default-constructed term directory still sees every other worker's
        # published records.
        self.term_directory = term_directory or TermDirectory(index.dht, index.storage)
        self.index_tasks_completed = 0
        self.rank_tasks_completed = 0

    @property
    def is_malicious(self) -> bool:
        return self.index_tamper is not None or self.rank_tamper is not None

    # -- indexing -------------------------------------------------------------------

    def index_document(
        self,
        document: Document,
        cid: str,
        statistics: Optional[CollectionStatistics] = None,
    ) -> IndexTaskResult:
        """Index one published page version into the distributed index.

        The previous term vector is fetched from the term directory, so
        updates remove the document from terms it no longer contains even
        when *this* worker never saw the previous version.  ``statistics``
        (the shared collection statistics, owned by the engine) is updated in
        place when provided.
        """
        frequencies = self.analyzer.term_frequencies(document.full_text)
        prior = self.term_directory.fetch(document.doc_id, requester=self.storage_peer)
        previous = prior.terms if prior is not None and not prior.deleted else {}
        is_update = bool(previous)
        removed_terms = [term for term in previous if term not in frequencies]

        def merge_thunk(term: str, frequency: int):
            def run():
                postings = PostingList()
                postings.add(document.doc_id, frequency)
                if self.index_tamper is not None:
                    postings = self.index_tamper(term, postings)
                return self.index.merge_term(term, postings, publisher=self.storage_peer)
            return run

        # Statistics are updated *before* the shard publishes: publish_term
        # stamps each shard with its range's minimum document length (the
        # per-shard bound ingredient), so the length source of truth must
        # already reflect this version.  During the publishes the document's
        # length is held at a *conservative* value — min(prior, new), or 0
        # (length-free) for a first version — so bounds stamped by a
        # partially-failed update stay admissible against both the
        # rolled-back and the retried state; the true length lands after
        # the shards commit (a pure length fix-up: df is untouched).  On
        # failure the mutation is rolled back so a retry applies the
        # df/length delta exactly once, not twice.
        prior_length = statistics.length_of(document.doc_id) if statistics is not None else 0
        conservative_length = min(prior_length, document.length) if previous else 0
        if statistics is not None:
            if previous:
                statistics.remove_document(document.doc_id, previous)
            statistics.add_document(document.doc_id, conservative_length, frequencies)

        merges = [
            merge_thunk(term, frequency) for term, frequency in sorted(frequencies.items())
        ]
        try:
            self._update_shards(document.doc_id, removed_terms, merges)
        except Exception:
            if statistics is not None:
                statistics.remove_document(document.doc_id, frequencies)
                if previous:
                    statistics.add_document(document.doc_id, prior_length, previous)
            raise
        if statistics is not None:
            statistics.add_document(document.doc_id, document.length, frequencies)

        self.term_directory.publish(
            document.doc_id,
            frequencies,
            publisher=self.storage_peer,
            prior_version=prior.version if prior is not None else 0,
        )
        self.directory.publish(document, cid)
        self.index_tasks_completed += 1
        return IndexTaskResult(
            doc_id=document.doc_id,
            terms_updated=len(frequencies) + len(removed_terms),
            is_update=is_update,
        )

    def delete_document(
        self,
        doc_id: int,
        statistics: Optional[CollectionStatistics] = None,
    ) -> bool:
        """Remove a document from every shard it appears in (first-class delete).

        The term set comes from the term directory, so any worker can process
        the delete.  Publishes a directory tombstone (version bumped) and
        clears the display metadata.  Returns False when the document was
        never indexed or is already deleted.
        """
        prior = self.term_directory.fetch(doc_id, requester=self.storage_peer)
        if prior is None or prior.deleted:
            return False
        # Same ordering rule as index_document: lengths must be current
        # before the shard republishes stamp their min-length bounds — and
        # the same rollback rule, so a failed delete retries cleanly.
        prior_length = statistics.length_of(doc_id) if statistics is not None else 0
        if statistics is not None:
            statistics.remove_document(doc_id, prior.terms)
        try:
            self._update_shards(doc_id, list(prior.terms), [])
        except Exception:
            if statistics is not None:
                statistics.add_document(doc_id, prior_length, prior.terms)
            raise
        self.term_directory.delete(
            doc_id, publisher=self.storage_peer, prior_version=prior.version
        )
        self.directory.mark_deleted(doc_id)
        self.index_tasks_completed += 1
        return True

    def _update_shards(self, doc_id, removed_terms, merge_thunks) -> None:
        """Issue removals for ``removed_terms`` plus ``merge_thunks`` concurrently.

        Per-term shard updates are independent of each other, so the worker
        runs them in one parallel region: the simulated cost is the slowest
        update, not the sum (cf. Simulator.parallel_region).
        """

        def removal_thunk(term: str):
            return lambda: self.index.remove_document(term, doc_id,
                                                      publisher=self.storage_peer)

        thunks = [removal_thunk(term) for term in removed_terms]
        thunks.extend(merge_thunks)
        if thunks:
            self.index.dht.simulator.parallel_region(thunks)

    # -- ranking ---------------------------------------------------------------------

    def rank_worker_fn(self) -> Callable[[RankTask], RankContribution]:
        """The callable the decentralized PageRank coordinator invokes."""

        def run(task: RankTask) -> RankContribution:
            contribution = compute_honest_contribution(task, damping=self.damping)
            if self.rank_tamper is not None:
                contribution = self.rank_tamper(task, contribution)
            self.rank_tasks_completed += 1
            return contribution

        return run
