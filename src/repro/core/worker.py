"""Worker bees: the peers that maintain the index and compute page ranks."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.directory import DocumentDirectory
from repro.index.analysis import Analyzer
from repro.index.distributed import DistributedIndex
from repro.index.document import Document
from repro.index.postings import PostingList
from repro.index.statistics import CollectionStatistics
from repro.ranking.distributed import RankContribution, RankTask, compute_honest_contribution


@dataclass
class IndexTaskResult:
    """Outcome of indexing one published page version."""

    doc_id: int
    terms_updated: int
    is_update: bool


class WorkerBee:
    """A peer that volunteers index and rank work in exchange for honey.

    The worker is deliberately stateless about the corpus: it reads the
    published shard for each term it touches, merges, and republishes, so any
    worker can index any page — the property that lets QueenBee parallelize
    indexing across volunteers.

    Attack hooks
    ------------
    ``index_tamper`` and ``rank_tamper`` are optional callables the attack
    scenarios (E6) install on colluding workers.  Honest workers leave them
    ``None``.
    """

    def __init__(
        self,
        address: str,
        index: DistributedIndex,
        directory: DocumentDirectory,
        analyzer: Optional[Analyzer] = None,
        storage_peer: Optional[str] = None,
        damping: float = 0.85,
        index_tamper: Optional[Callable[[str, PostingList], PostingList]] = None,
        rank_tamper: Optional[Callable[[RankTask, RankContribution], RankContribution]] = None,
    ) -> None:
        self.address = address
        self.index = index
        self.directory = directory
        self.analyzer = analyzer or Analyzer()
        self.storage_peer = storage_peer
        self.damping = damping
        self.index_tamper = index_tamper
        self.rank_tamper = rank_tamper
        self.index_tasks_completed = 0
        self.rank_tasks_completed = 0
        self._previous_terms: Dict[int, Dict[str, int]] = {}

    @property
    def is_malicious(self) -> bool:
        return self.index_tamper is not None or self.rank_tamper is not None

    # -- indexing -------------------------------------------------------------------

    def index_document(
        self,
        document: Document,
        cid: str,
        statistics: Optional[CollectionStatistics] = None,
    ) -> IndexTaskResult:
        """Index one published page version into the distributed index.

        Updates are handled by removing the document from terms it no longer
        contains and merging it into the terms it does.  ``statistics`` (the
        shared collection statistics, owned by the engine) is updated in place
        when provided.
        """
        frequencies = self.analyzer.term_frequencies(document.full_text)
        previous = self._previous_terms.get(document.doc_id, {})
        is_update = bool(previous)
        removed_terms = [term for term in previous if term not in frequencies]

        # Per-term shard updates are independent of each other, so the worker
        # issues them concurrently; the simulated cost is the slowest update,
        # not the sum (cf. Simulator.parallel_region).
        def removal_thunk(term: str):
            return lambda: self.index.remove_document(term, document.doc_id,
                                                      publisher=self.storage_peer)

        def merge_thunk(term: str, frequency: int):
            def run():
                postings = PostingList()
                postings.add(document.doc_id, frequency)
                if self.index_tamper is not None:
                    postings = self.index_tamper(term, postings)
                return self.index.merge_term(term, postings, publisher=self.storage_peer)
            return run

        thunks = [removal_thunk(term) for term in removed_terms]
        thunks.extend(merge_thunk(term, frequency) for term, frequency in frequencies.items())
        simulator = self.index.dht.simulator
        if thunks:
            simulator.parallel_region(thunks)

        self.directory.publish(document, cid)
        if statistics is not None:
            if is_update:
                statistics.remove_document(document.doc_id, previous)
            statistics.add_document(document.doc_id, document.length, frequencies)
        self._previous_terms[document.doc_id] = frequencies
        self.index_tasks_completed += 1
        return IndexTaskResult(
            doc_id=document.doc_id,
            terms_updated=len(frequencies) + len(removed_terms),
            is_update=is_update,
        )

    # -- ranking ---------------------------------------------------------------------

    def rank_worker_fn(self) -> Callable[[RankTask], RankContribution]:
        """The callable the decentralized PageRank coordinator invokes."""

        def run(task: RankTask) -> RankContribution:
            contribution = compute_honest_contribution(task, damping=self.damping)
            if self.rank_tamper is not None:
                contribution = self.rank_tamper(task, contribution)
            self.rank_tasks_completed += 1
            return contribution

        return run
