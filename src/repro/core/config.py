"""Configuration for a QueenBee deployment (one object, every knob).

Every field here must be declared in :mod:`repro.config_schema` — the
registry repro-lint rule RL005 and the runtime unknown-knob rejection are
built on (a schema/dataclass mismatch fails ``tests/test_repro_lint.py``).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, Mapping

from repro import config_schema


@dataclass
class QueenBeeConfig:
    """All tunables for one simulated QueenBee deployment.

    The defaults describe a small but realistic overlay: 32 peers that each
    participate in the DHT and in storage, 8 of which volunteer as worker
    bees.  Experiments override what they sweep and leave the rest alone.
    """

    # Simulation
    seed: int = 0

    # Network / overlay
    peer_count: int = 32
    worker_count: int = 8
    latency_median: float = 25.0
    latency_sigma: float = 0.45
    loss_rate: float = 0.0

    # Resilience
    # Ticks a lost RPC costs the sender — the explicit timeout budget,
    # charged uniformly on the single and parallel paths.  0 keeps the
    # legacy accounting (a sampled round trip per drop).
    rpc_timeout: float = 0.0
    # Attempts per resilient RPC (block fetch/push); 1 = no retry.
    rpc_retries: int = 1
    # Base backoff (ticks) before the second attempt; doubles per attempt.
    retry_backoff: float = 0.0
    # ± fraction of deterministic jitter on each backoff, drawn from a
    # dedicated RNG stream (never perturbs latency/loss sampling).
    retry_jitter: float = 0.0
    # Per-operation retry deadline budget (ticks); 0 = unbounded.
    retry_deadline: float = 0.0
    # Hedge storage block fetches across the two best-ranked providers,
    # charging the clock only the winner's round trip (tail-latency hedge).
    hedged_fetches: bool = False
    # Route liveness from the local FailureDetector (suspicion built from
    # observed RPC outcomes).  False restores the global is_online oracle
    # on the fetch path — the ablation that quantifies what an omniscient
    # membership view would buy.
    failure_detector: bool = True
    # Net failures before a peer is suspected (avoided by routing).
    detector_threshold: int = 3
    # Ticks after the last failure at which a suspected peer is probed
    # again (presumed alive for one request); 0 = never re-probe.
    detector_probe_after: float = 2_000.0

    # DHT
    dht_k: int = 8
    dht_alpha: int = 3
    dht_replicate: int = 4

    # Storage
    storage_replication: int = 3
    chunk_size: int = 8_192
    # Per-peer block-store medium: "memory" (dicts, the bit-identical
    # reference) or "sqlite" (single-file on-disk store; the E4 sweep's
    # 10k+-doc corpora run on it with identical sim-visible behaviour).
    storage_backend: str = "memory"
    # Directory for on-disk backend files; "" allocates a per-run temp dir.
    storage_path: str = ""

    # Index
    compress_index: bool = True
    top_k: int = 10
    # Capacity (in shards) of the LRU posting cache in front of
    # decentralized storage; 0 disables caching entirely.
    posting_cache_capacity: int = 256
    # Validate cached shards against their manifest generation (the epoch
    # invalidation protocol).  Disabling it is the E2 ablation that
    # quantifies the stale-hit rate the protocol eliminates.
    cache_validation: bool = True
    # Maximum postings per doc-id-range shard: posting lists above this
    # split into range shards behind a per-term manifest, so no single peer
    # serves a whole head term and per-shard impact bounds tighten MaxScore
    # pruning.  0 publishes every term as a single shard (the pre-sharding
    # layout).
    index_shard_size: int = 128
    # Provider-record-aware shard placement: publish each term's range
    # shards onto spread-maximizing replica sets (anti-affinity: no peer
    # provides more than ceil(shards/replication) shards of one term),
    # record the replica set as manifest routing hints, and repair shards
    # that churn drops below the replication floor.  False restores the
    # unsteered publisher-pins-everything path (the E4 placement ablation).
    index_placement: bool = True
    # Distinct providers per placed shard; 0 inherits storage_replication
    # so placed and unsteered content survive the same churn.
    placement_replication_factor: int = 0
    # Live providers below which churn-triggered repair re-replicates a
    # shard; 0 inherits the replication factor (repair on any departure).
    placement_repair_floor: int = 0
    # Grace period (ticks) before a departed provider's shards are repaired:
    # a peer that rejoins inside the window triggers zero repairs (flap
    # debounce).  0 repairs immediately on departure.
    placement_repair_grace: float = 0.0
    # Maximum repair attempts (shards found below the replication floor)
    # per churn event; overflow is recorded as a deficit and retried on the
    # next join/audit.  0 = unbounded.
    placement_repair_budget: int = 0
    # Publish per-generation patches (posting deltas, banded rank deltas)
    # next to every full artifact, so warm readers patch in place instead
    # of refetching wholesale.  The full artifact is still published and
    # stays authoritative; False is the wholesale ablation E2 measures.
    delta_publication: bool = True
    # Doc-id bands the rank vector is partitioned into per publication;
    # remote frontends refetch only bands whose fingerprint moved.  0
    # publishes the monolithic vector every round (wholesale).
    rank_delta_bands: int = 8
    # A shard patch larger than this fraction of the full shard payload is
    # not published (an all-docs-changed round degenerates to full fetch).
    delta_max_ratio: float = 0.5

    # Metadata plane
    # How frontends learn soft metadata (index epochs, the rank head,
    # serving-load hints).  "shared" reads the engine's in-process objects —
    # exactly consistent, the idealized ablation; "gossip" makes frontends
    # real remote nodes: each peer holds a gossip store reconciled by
    # periodic anti-entropy rounds (scheduled as simulator events), and
    # engine.create_frontend() returns a frontend holding no reference to
    # the engine's epoch registry, rank vector, or peer counters.  Stale
    # gossip costs extra fetches or looser pruning, never a wrong page.
    metadata_plane: str = "shared"
    # Push/pull exchanges each peer initiates per gossip round.
    gossip_fanout: int = 3
    # Ticks between scheduled gossip rounds.
    gossip_interval: float = 500.0
    # Publish quantized per-shard rank ceilings into every term manifest at
    # rank-publish time, letting any frontend prune shards by rank without
    # materialising the rank vector (the frontend-built RankRangeIndex
    # becomes the fallback/ablation).  Costs one manifest rewrite per term
    # per rank round.
    publish_rank_ceilings: bool = True

    # Ranking
    rank_redundancy: int = 3
    rank_damping: float = 0.85
    rank_max_iterations: int = 30
    rank_tolerance: float = 1e-6

    # Chain / incentives
    block_interval: float = 1_000.0
    min_worker_stake: int = 1_000
    publish_reward: int = 10
    task_reward: int = 5
    popularity_policy: str = "threshold"
    rank_threshold: float = 0.001
    popularity_budget: int = 10_000
    creator_share: float = 0.6
    worker_share: float = 0.3
    treasury_share: float = 0.1
    dedup_enabled: bool = True
    creator_funding: int = 10**9
    worker_funding: int = 10**7
    worker_stake: int = 2_000

    # Frontend
    max_ads: int = 2
    planning_strategy: str = "rarest_first"
    # "maxscore" is the document-at-a-time top-k engine with pruning;
    # "taat" is the reference term-at-a-time path (identical results).
    execution_mode: str = "maxscore"
    # Issue manifest/shard DHT lookups and content fetches concurrently
    # during query prefetch (latency bounded by the slowest chain instead of
    # the sum over terms).  False restores the sequential prefetch — the
    # overlap ablation measured in E10.
    overlapped_prefetch: bool = True
    # Capacity (in pages) of the frontend's top-k result cache, keyed by
    # (normalized query, term generations, rank version, stats version).
    # 0 (default) disables it: the cache is opt-in because its key tracks
    # index/rank/statistics freshness but *not* peer reachability, so
    # experiments that measure degraded service (E3) must not have repeated
    # queries silently answered from pre-failure pages.  E10 opts in.
    result_cache_capacity: int = 0
    # Loosen result-cache keys to BM25-relevant *buckets* of the collection
    # statistics (per-term df and average document length on a geometric
    # grid) instead of the exact statistics version, so update-heavy
    # streams keep their reuse.  Opt-in: a hit whose exact statistics
    # moved within the bucket replays a page whose scores may differ in
    # low-order digits from a fresh execution (the documented exactness
    # trade; loose hits are counter-tracked per frontend).
    result_cache_loose_keys: bool = False
    # Numpy-vectorized shard decode + array BM25 scoring in the executor.
    # Off by default: the scalar path is the bit-identical reference, and
    # the vectorized path must return identical top-k pages (asserted in
    # tests and the E10 bench).
    vectorized_scoring: bool = False

    @classmethod
    def from_dict(cls, knobs: Mapping[str, object]) -> "QueenBeeConfig":
        """Build a config from a knob mapping, rejecting undeclared knobs.

        The dataclass constructor already raises ``TypeError`` on unknown
        keywords; this entry point goes through the schema registry
        instead, so experiment scripts get an
        :class:`~repro.config_schema.UnknownConfigKnobError` with a
        did-you-mean hint rather than a bare constructor error.
        """
        config_schema.check_unknown_knobs(knobs)
        return cls(**dict(knobs))

    def as_dict(self) -> Dict[str, object]:
        """The config as a plain ``knob -> value`` mapping."""
        return asdict(self)

    def validate(self) -> None:
        """Raise ``ValueError`` on impossible combinations.

        Also re-checks the knob *names* against the schema registry: a
        config object that grew an undeclared attribute (a subclass, a
        monkeypatched experiment) is rejected the same way a typo'd
        ``from_dict`` key is.
        """
        config_schema.check_unknown_knobs(self.as_dict())
        if self.execution_mode not in ("taat", "maxscore"):
            raise ValueError(f"unknown execution_mode {self.execution_mode!r}")
        if self.rpc_timeout < 0:
            raise ValueError("rpc_timeout must be non-negative")
        if self.rpc_retries < 1:
            raise ValueError("rpc_retries must be at least 1")
        if self.retry_backoff < 0:
            raise ValueError("retry_backoff must be non-negative")
        if not 0.0 <= self.retry_jitter <= 1.0:
            raise ValueError("retry_jitter must be in [0, 1]")
        if self.retry_deadline < 0:
            raise ValueError("retry_deadline must be non-negative")
        if self.detector_threshold < 1:
            raise ValueError("detector_threshold must be at least 1")
        if self.detector_probe_after < 0:
            raise ValueError("detector_probe_after must be non-negative")
        if self.posting_cache_capacity < 0:
            raise ValueError("posting_cache_capacity must be non-negative")
        if self.index_shard_size < 0:
            raise ValueError("index_shard_size must be non-negative")
        if self.placement_replication_factor < 0:
            raise ValueError("placement_replication_factor must be non-negative")
        if self.placement_repair_floor < 0:
            raise ValueError("placement_repair_floor must be non-negative")
        if self.placement_repair_grace < 0:
            raise ValueError("placement_repair_grace must be non-negative")
        if self.placement_repair_budget < 0:
            raise ValueError("placement_repair_budget must be non-negative")
        if self.rank_delta_bands < 0:
            raise ValueError("rank_delta_bands must be non-negative")
        if not 0.0 < self.delta_max_ratio <= 1.0:
            raise ValueError("delta_max_ratio must be in (0, 1]")
        if self.metadata_plane not in ("shared", "gossip"):
            raise ValueError(f"unknown metadata_plane {self.metadata_plane!r}")
        if self.gossip_fanout < 1:
            raise ValueError("gossip_fanout must be at least 1")
        if self.gossip_interval <= 0:
            raise ValueError("gossip_interval must be positive")
        if self.result_cache_capacity < 0:
            raise ValueError("result_cache_capacity must be non-negative")
        if self.peer_count < 2:
            raise ValueError("peer_count must be at least 2")
        if not 0 < self.worker_count <= self.peer_count:
            raise ValueError("worker_count must be in [1, peer_count]")
        if self.dht_k < 1 or self.dht_alpha < 1:
            raise ValueError("dht_k and dht_alpha must be positive")
        if self.storage_replication < 1:
            raise ValueError("storage_replication must be at least 1")
        if self.storage_backend not in ("memory", "sqlite"):
            raise ValueError(f"unknown storage_backend {self.storage_backend!r}")
        if self.rank_redundancy < 1:
            raise ValueError("rank_redundancy must be at least 1")
        if self.worker_stake < self.min_worker_stake:
            raise ValueError("worker_stake must cover min_worker_stake")
