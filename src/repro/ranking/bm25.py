"""BM25 term-relevance scoring over posting lists and collection statistics."""

from __future__ import annotations

import math
from typing import Dict, Iterable, Mapping, Sequence, Tuple

from repro.index.postings import PostingList
from repro.index.statistics import CollectionStatistics

try:  # numpy backs the vectorized scoring path; scalar is the reference.
    import numpy as _np
except ImportError:  # pragma: no cover - the CI image always has numpy
    _np = None

DEFAULT_K1 = 1.2
DEFAULT_B = 0.75


class BM25Scorer:
    """Okapi BM25.

    The scorer only needs per-term posting lists plus the published
    collection statistics, so the frontend can run it without any access to
    the full corpus — a requirement for decentralized search.
    """

    def __init__(
        self,
        statistics: CollectionStatistics,
        k1: float = DEFAULT_K1,
        b: float = DEFAULT_B,
    ) -> None:
        if k1 < 0:
            raise ValueError(f"k1 must be non-negative, got {k1!r}")
        if not 0.0 <= b <= 1.0:
            raise ValueError(f"b must be in [0, 1], got {b!r}")
        self.statistics = statistics
        self.k1 = k1
        self.b = b

    def idf(self, term: str) -> float:
        """Robertson–Sparck Jones idf with the +0.5 smoothing (never negative)."""
        n = self.statistics.document_count
        df = self.statistics.df(term)
        if n == 0:
            return 0.0
        return max(0.0, math.log((n - df + 0.5) / (df + 0.5) + 1.0))

    def impact_parameters(self, term: str) -> Tuple[float, float]:
        """``(scale, tf_constant)`` of the term's length-free score bound.

        The per-term score ``idf * tf*(k1+1) / (tf + k1*(1-b+b*len/avgdl))``
        is increasing in ``tf`` and decreasing in ``len``, so in the limit
        ``len -> 0`` it is bounded by ``scale * tf / (tf + tf_constant)`` with
        ``scale = idf*(k1+1)`` and ``tf_constant = k1*(1-b)``.  This is the
        *max impact* form MaxScore pruning evaluates per posting; this method
        is its single definition — :meth:`upper_bound` and the executor's
        cursors both derive from it.
        """
        return self.idf(term) * (self.k1 + 1.0), self.k1 * (1.0 - self.b)

    def tf_denominator(self, length: int) -> float:
        """The BM25 tf-denominator constant for a document of ``length``.

        ``k1 * (1 - b + b * length / avgdl)`` — the per-term score is
        ``scale * tf / (tf + tf_denominator(length))`` and is decreasing in
        ``length``, so evaluating it at a *lower bound* on document length
        (e.g. a shard's quantized minimum length) yields an admissible upper
        bound on any contribution from that shard.  ``length = 0`` recovers
        the length-free bound of :meth:`impact_parameters`.
        """
        avgdl = self.statistics.average_length or 1.0
        return self.k1 * (1.0 - self.b + self.b * length / avgdl)

    def upper_bound(self, term: str, max_term_frequency: int) -> float:
        """The largest BM25 contribution ``term`` can make to any document."""
        if max_term_frequency <= 0:
            return 0.0
        scale, tf_constant = self.impact_parameters(term)
        return scale * max_term_frequency / (max_term_frequency + tf_constant)

    def score_document(self, doc_id: int, term_frequencies: Mapping[str, int]) -> float:
        """BM25 score of one document for the query terms it matched."""
        avgdl = self.statistics.average_length or 1.0
        length = self.statistics.length_of(doc_id) or avgdl
        score = 0.0
        for term, tf in term_frequencies.items():
            if tf <= 0:
                continue
            idf = self.idf(term)
            denominator = tf + self.k1 * (1.0 - self.b + self.b * length / avgdl)
            score += idf * (tf * (self.k1 + 1.0)) / denominator
        return score

    def lengths_array(self, doc_ids: Sequence[int]):
        """Float64 document lengths for ``doc_ids`` (unknown -> avgdl).

        Mirrors the scalar ``length_of(doc_id) or avgdl`` lookup; the
        int-to-float conversion is exact, so the vectorized scores built on
        this array match the scalar path bit for bit.
        """
        avgdl = self.statistics.average_length or 1.0
        length_of = self.statistics.length_of
        return _np.array(
            [length_of(doc_id) or avgdl for doc_id in doc_ids], dtype=_np.float64
        )

    def score_batch(self, query_terms, tf_arrays: Mapping[str, object], lengths):
        """Vectorized :meth:`score_document` over parallel candidate arrays.

        ``tf_arrays`` maps each matched term to a float64 array of term
        frequencies aligned with ``lengths``; terms absent from the mapping
        (or with tf 0 in a slot) contribute nothing, exactly like the scalar
        loop's ``tf <= 0`` skip.  Bit-identity argument: every elementwise
        operation replicates the scalar expression's operation order on the
        same float64 values, contributions accumulate term-by-term in the
        same order (never a reassociated ``np.sum``), and adding an exact
        ``0.0`` to a non-negative partial score is the identity — so each
        slot computes the same IEEE-754 value :meth:`score_document` would.
        """
        avgdl = self.statistics.average_length or 1.0
        denom_base = self.k1 * ((1.0 - self.b) + (self.b * lengths) / avgdl)
        scores = _np.zeros(len(lengths), dtype=_np.float64)
        # The scalar path builds a per-document dict keyed by term, which
        # collapses duplicate query terms; replicate that here.
        for term in dict.fromkeys(query_terms):
            tf = tf_arrays.get(term)
            if tf is None:
                continue
            idf = self.idf(term)
            with _np.errstate(divide="ignore", invalid="ignore"):
                contribution = (idf * (tf * (self.k1 + 1.0))) / (tf + denom_base)
            if not tf.all():
                # Zero-tf slots divide 0 by denom_base (fine) unless k1 == 0
                # makes it 0/0; mask them to the scalar path's exact skip.
                contribution = _np.where(tf > 0.0, contribution, 0.0)
            scores = scores + contribution
        return scores

    def score_postings(
        self,
        query_terms: Iterable[str],
        postings_by_term: Mapping[str, PostingList],
        candidate_doc_ids: Iterable[int],
    ) -> Dict[int, float]:
        """Score every candidate document against the query terms."""
        candidates = list(candidate_doc_ids)
        frequencies_by_term = {
            term: postings.frequencies() for term, postings in postings_by_term.items()
        }
        scores: Dict[int, float] = {}
        for doc_id in candidates:
            per_doc = {
                term: frequencies_by_term.get(term, {}).get(doc_id, 0)
                for term in query_terms
            }
            scores[doc_id] = self.score_document(doc_id, per_doc)
        return scores
