"""The hyperlink graph between published pages."""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple


class LinkGraph:
    """A directed graph over document ids.

    Kept deliberately small-surface: PageRank only needs out-links,
    in-links, and degrees.  Node ids are the corpus document ids.
    """

    def __init__(self) -> None:
        self._out: Dict[int, Set[int]] = {}
        self._in: Dict[int, Set[int]] = {}

    def __len__(self) -> int:
        return len(self._out)

    def __contains__(self, node: int) -> bool:
        return node in self._out

    def add_node(self, node: int) -> None:
        self._out.setdefault(node, set())
        self._in.setdefault(node, set())

    def add_edge(self, source: int, target: int) -> None:
        """Add a hyperlink from ``source`` to ``target`` (self-links ignored)."""
        if source == target:
            return
        self.add_node(source)
        self.add_node(target)
        self._out[source].add(target)
        self._in[target].add(source)

    def add_edges(self, edges: Iterable[Tuple[int, int]]) -> None:
        for source, target in edges:
            self.add_edge(source, target)

    def remove_node(self, node: int) -> None:
        """Drop a node and every edge touching it (page deletions)."""
        for target in self._out.pop(node, set()):
            self._in.get(target, set()).discard(node)
        for source in self._in.pop(node, set()):
            self._out.get(source, set()).discard(node)

    def nodes(self) -> List[int]:
        return sorted(self._out)

    def out_links(self, node: int) -> List[int]:
        return sorted(self._out.get(node, set()))

    def in_links(self, node: int) -> List[int]:
        return sorted(self._in.get(node, set()))

    def out_degree(self, node: int) -> int:
        return len(self._out.get(node, set()))

    def in_degree(self, node: int) -> int:
        return len(self._in.get(node, set()))

    def edge_count(self) -> int:
        return sum(len(targets) for targets in self._out.values())

    def dangling_nodes(self) -> List[int]:
        """Nodes with no out-links (their rank mass is spread uniformly)."""
        return sorted(node for node, targets in self._out.items() if not targets)

    def subgraph_nodes(self, nodes: Iterable[int]) -> "LinkGraph":
        """The induced subgraph over ``nodes`` (used to split work across bees)."""
        wanted = set(nodes)
        result = LinkGraph()
        for node in sorted(wanted):
            if node in self._out:
                result.add_node(node)
                for target in self._out[node]:
                    if target in wanted:
                        result.add_edge(node, target)
        return result

    def to_edge_list(self) -> List[Tuple[int, int]]:
        return sorted(
            (source, target) for source, targets in self._out.items() for target in targets
        )

    @classmethod
    def from_edge_list(cls, edges: Iterable[Tuple[int, int]]) -> "LinkGraph":
        graph = cls()
        graph.add_edges(edges)
        return graph
