"""Decentralized PageRank: worker bees compute partitions, a coordinator votes.

The paper's worker bees "compute the page ranks, which are hosted in a
decentralized storage", and its research challenge (II) anticipates
"an attack from colluded worker bees that aim at manipulating QueenBee's
indexes or page ranking data maliciously".  This module implements both the
honest computation and the defense knob:

* the link graph is partitioned across worker bees,
* every per-iteration partition task is assigned to ``redundancy`` distinct
  workers,
* the coordinator accepts the majority result for each task (and reports the
  workers whose answers disagreed, so the engine can slash their stake).

With ``redundancy = 1`` there is no defense — whatever a worker returns is
accepted — which is the vulnerable configuration E6 demonstrates.

The module also owns the *publication* side of a rank round's metadata:
:class:`RankCeilingPublisher` stamps every term manifest with quantized
per-shard **rank ceilings** at rank-publish time, so any frontend can prune
doc-id-range shards by rank without materialising the rank vector (the
frontend-built :class:`~repro.ranking.scoring.RankRangeIndex` becomes the
fallback/ablation).
"""

from __future__ import annotations

import bisect
import hashlib
import json
import math
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import AttackConfigError
from repro.ranking.graph import LinkGraph
from repro.ranking.pagerank import DEFAULT_DAMPING, PageRankResult
from repro.storage.cid import compute_cid


@dataclass
class RankTask:
    """One partition's work for one PageRank iteration.

    ``node_states`` maps each node in the partition to its current rank and
    its out-links, which is all a worker needs to compute the partition's
    contribution to the next rank vector.
    """

    iteration: int
    partition: int
    node_states: Dict[int, Tuple[float, Tuple[int, ...]]] = field(default_factory=dict)


@dataclass
class RankContribution:
    """A worker's answer to one :class:`RankTask`."""

    contributions: Dict[int, float] = field(default_factory=dict)
    dangling_mass: float = 0.0

    def fingerprint(self) -> str:
        """A canonical hash used for majority voting across replicas."""
        canonical = {
            "contributions": {str(k): round(v, 10) for k, v in sorted(self.contributions.items())},
            "dangling_mass": round(self.dangling_mass, 10),
        }
        return hashlib.sha256(json.dumps(canonical, sort_keys=True).encode("utf-8")).hexdigest()


def compute_honest_contribution(task: RankTask, damping: float = DEFAULT_DAMPING) -> RankContribution:
    """The correct partition computation every honest worker bee runs."""
    result = RankContribution()
    for _, (rank, out_links) in sorted(task.node_states.items()):
        if not out_links:
            result.dangling_mass += rank
            continue
        share = damping * rank / len(out_links)
        for target in out_links:
            result.contributions[target] = result.contributions.get(target, 0.0) + share
    return result


# A rank worker maps a task to a contribution; the worker's address lets the
# coordinator attribute faults for slashing.
RankWorkerFn = Callable[[RankTask], RankContribution]


@dataclass
class VoteOutcome:
    """What the coordinator decided for one task."""

    accepted: RankContribution
    agreeing_workers: List[str] = field(default_factory=list)
    dissenting_workers: List[str] = field(default_factory=list)
    unanimous: bool = True


@dataclass
class DecentralizedRankStats:
    """Counters for the PageRank accuracy (E8) and collusion (E6) experiments."""

    iterations: int = 0
    tasks_issued: int = 0
    task_executions: int = 0
    disputes_detected: int = 0
    dissent_events: Dict[str, int] = field(default_factory=dict)

    def record_dissent(self, worker: str) -> None:
        self.dissent_events[worker] = self.dissent_events.get(worker, 0) + 1
        self.disputes_detected += 1


class DecentralizedPageRank:
    """Coordinator for partitioned, redundantly-verified PageRank.

    Parameters
    ----------
    workers:
        Mapping of worker address -> callable executing a :class:`RankTask`.
        Honest workers use :func:`compute_honest_contribution`; attack
        scenarios register manipulated callables for colluding addresses.
    partitions:
        Number of graph partitions per iteration (defaults to the worker count).
    redundancy:
        Number of distinct workers assigned to each task (majority voting).
    verify_conservation:
        Extension beyond the paper's sketch: the coordinator knows each
        task's input ranks, so it can check that a returned contribution
        conserves rank mass (``sum(contributions) + damping * dangling ==
        damping * input mass``).  Results that violate conservation are
        rejected outright — before any vote — which defeats naive
        mass-injecting manipulations even when colluders form a replica
        majority.  A cartel can still cheat conservation-preservingly
        (shifting mass between pages), which is what voting remains for.
    """

    def __init__(
        self,
        workers: Dict[str, RankWorkerFn],
        damping: float = DEFAULT_DAMPING,
        partitions: Optional[int] = None,
        redundancy: int = 3,
        tolerance: float = 1e-6,
        max_iterations: int = 50,
        rng: Optional[random.Random] = None,
        verify_conservation: bool = False,
        conservation_tolerance: float = 1e-9,
    ) -> None:
        if not workers:
            raise AttackConfigError("decentralized PageRank needs at least one worker")
        if redundancy < 1:
            raise AttackConfigError(f"redundancy must be at least 1, got {redundancy!r}")
        self.workers = dict(workers)
        self.damping = damping
        self.partitions = partitions or len(self.workers)
        self.redundancy = min(redundancy, len(self.workers))
        self.tolerance = tolerance
        self.max_iterations = max_iterations
        self.rng = rng or random.Random(0)
        self.verify_conservation = verify_conservation
        self.conservation_tolerance = conservation_tolerance
        self.stats = DecentralizedRankStats()

    # -- main entry point -----------------------------------------------------------

    def compute(self, graph: LinkGraph) -> PageRankResult:
        """Run distributed PageRank to convergence and return the rank vector."""
        nodes = graph.nodes()
        n = len(nodes)
        result = PageRankResult()
        if n == 0:
            result.converged = True
            return result
        uniform = 1.0 / n
        ranks = {node: uniform for node in nodes}
        partition_map = self._partition_nodes(nodes)

        for iteration in range(1, self.max_iterations + 1):
            self.stats.iterations = iteration
            contributions: Dict[int, float] = {}
            dangling_mass = 0.0
            for partition_index, partition_nodes in enumerate(partition_map):
                task = RankTask(
                    iteration=iteration,
                    partition=partition_index,
                    node_states={
                        node: (ranks[node], tuple(graph.out_links(node)))
                        for node in partition_nodes
                    },
                )
                outcome = self._execute_with_voting(task)
                for target, mass in sorted(outcome.accepted.contributions.items()):
                    contributions[target] = contributions.get(target, 0.0) + mass
                dangling_mass += outcome.accepted.dangling_mass

            base = (1.0 - self.damping) * uniform + self.damping * dangling_mass * uniform
            next_ranks = {node: base + contributions.get(node, 0.0) for node in nodes}
            residual = sum(abs(next_ranks[node] - ranks[node]) for node in nodes)
            ranks = next_ranks
            if residual < self.tolerance:
                result.ranks = ranks
                result.iterations = iteration
                result.converged = True
                result.residual = residual
                return result

        result.ranks = ranks
        result.iterations = self.max_iterations
        result.converged = False
        result.residual = residual
        return result

    def dissenting_workers(self) -> List[str]:
        """Workers whose answers lost a vote at least once (slashing candidates)."""
        return sorted(self.stats.dissent_events)

    # -- internals ---------------------------------------------------------------------

    def _partition_nodes(self, nodes: Sequence[int]) -> List[List[int]]:
        partitions: List[List[int]] = [[] for _ in range(self.partitions)]
        for node in nodes:
            partitions[node % self.partitions].append(node)
        return [p for p in partitions if p] or [list(nodes)]

    def _execute_with_voting(self, task: RankTask) -> VoteOutcome:
        self.stats.tasks_issued += 1
        assigned = self._assign_workers(task)
        answers: List[Tuple[str, RankContribution]] = []
        rejected: List[str] = []
        for worker_address in assigned:
            worker_fn = self.workers[worker_address]
            contribution = worker_fn(task)
            self.stats.task_executions += 1
            if self.verify_conservation and not self._conserves_mass(task, contribution):
                rejected.append(worker_address)
                self.stats.record_dissent(worker_address)
                continue
            answers.append((worker_address, contribution))
        if not answers:
            # Every replica failed verification: the coordinator recomputes the
            # partition itself rather than accepting a provably bogus result.
            fallback = compute_honest_contribution(task, damping=self.damping)
            return VoteOutcome(accepted=fallback, agreeing_workers=[],
                               dissenting_workers=sorted(rejected), unanimous=False)
        # Group identical answers by fingerprint and accept the plurality.
        groups: Dict[str, List[str]] = {}
        by_fingerprint: Dict[str, RankContribution] = {}
        for worker_address, contribution in answers:
            fingerprint = contribution.fingerprint()
            groups.setdefault(fingerprint, []).append(worker_address)
            by_fingerprint[fingerprint] = contribution
        winning_fingerprint = max(
            groups, key=lambda fp: (len(groups[fp]), -self._first_index(answers, fp))
        )
        agreeing = groups[winning_fingerprint]
        dissenting = [
            w for fp, ws in sorted(groups.items()) if fp != winning_fingerprint for w in ws
        ]
        for worker_address in dissenting:
            self.stats.record_dissent(worker_address)
        return VoteOutcome(
            accepted=by_fingerprint[winning_fingerprint],
            agreeing_workers=sorted(agreeing),
            dissenting_workers=sorted(dissenting),
            unanimous=not dissenting,
        )

    def _conserves_mass(self, task: RankTask, contribution: RankContribution) -> bool:
        """Whether a returned contribution conserves the task's rank mass.

        For an honest computation, ``sum(contributions) + damping * dangling``
        equals ``damping * sum(input ranks)`` exactly; anything else has
        created or destroyed rank mass and is provably wrong.
        """
        input_mass = sum(rank for _, (rank, _out) in sorted(task.node_states.items()))
        expected = self.damping * input_mass
        observed = sum(contribution.contributions.values()) + self.damping * contribution.dangling_mass
        return abs(observed - expected) <= self.conservation_tolerance + 1e-12 * abs(expected)

    def _assign_workers(self, task: RankTask) -> List[str]:
        addresses = sorted(self.workers)
        if self.redundancy >= len(addresses):
            return addresses
        # Deterministic-but-spread assignment: seed from the task identity so
        # reruns of an experiment assign identically.
        task_rng = random.Random((task.iteration, task.partition, self.rng.random()).__hash__())
        return task_rng.sample(addresses, self.redundancy)

    @staticmethod
    def _first_index(answers: List[Tuple[str, RankContribution]], fingerprint: str) -> int:
        for index, (_, contribution) in enumerate(answers):
            if contribution.fingerprint() == fingerprint:
                return index
        return len(answers)


# -- rank-ceiling publication ---------------------------------------------------------

# Geometric grid for the per-shard rank ceiling carried in the manifest.
# Rounding is always *upward*, so a ceiling can only over-estimate the best
# rank in a shard's range — pruning against it stays admissible and the
# top-k stays bit-identical — while quantization keeps manifests compact
# and stable across rank rounds whose ranks only jitter.
RANK_CEILING_RATIO = 1.05


def quantize_rank_ceiling(value: float, ratio: float = RANK_CEILING_RATIO) -> float:
    """Round a rank value up to the geometric ceiling grid (conservative)."""
    if value <= 0.0:
        return 0.0
    exponent = math.ceil(math.log(value) / math.log(ratio))
    quantized = ratio ** exponent
    # Guard the float round-trip: the grid point must never undercut the
    # true value, or pruning against it would stop being admissible.
    while quantized < value:
        quantized *= ratio
    return quantized


class _DocRangeMax:
    """Exact max-rank-over-doc-id-range queries for the publisher side.

    The publisher holds the full rank vector anyway (it just computed it),
    so ceilings are computed from sorted (doc_id, rank) arrays — exact, one
    O(n log n) build per rank round, O(log n + span) per shard query.
    """

    def __init__(self, ranks: Dict[int, float]) -> None:
        pairs = sorted(ranks.items())
        self._doc_ids = [doc_id for doc_id, _ in pairs]
        self._ranks = [rank for _, rank in pairs]

    def range_max(self, lo: int, hi: int) -> float:
        left = bisect.bisect_left(self._doc_ids, lo)
        right = bisect.bisect_right(self._doc_ids, hi)
        if left >= right:
            return 0.0
        return max(self._ranks[left:right])


class RankCeilingPublisher:
    """Stamps quantized per-shard rank ceilings into every term manifest.

    Runs at rank-publish time (``QueenBeeEngine.compute_page_ranks``):
    for each manifest the index published, the ceiling of each non-empty
    shard is the exact maximum rank over its doc-id range, quantized up on
    the :data:`RANK_CEILING_RATIO` grid, and the manifest's ``rank_version``
    moves to the new round — generations are untouched, so every cache
    stays valid.  Remote frontends whose rank version matches then prune
    shards by rank straight from the manifest, with no rank-vector
    materialisation and no in-process link to the engine.
    """

    def __init__(self, index) -> None:
        # Duck-typed: needs authoritative_manifests() + refresh_rank_ceilings().
        self.index = index

    def publish(
        self,
        ranks: Dict[int, float],
        rank_version: int,
        hint_sink: Optional[Callable[[str, object], None]] = None,
    ) -> int:
        """Restamp every published manifest; returns the manifests touched.

        ``hint_sink(term, refreshed_manifest)`` is invoked for every manifest
        that was restamped — the engine uses it to gossip a per-term
        ``rv:<term>`` rank-version hint so remote frontends holding a cached
        manifest can adopt the new ceilings without a manifest refetch (and
        without an epoch bump, which would invalidate posting caches).
        """
        range_max = _DocRangeMax(dict(ranks))
        refreshed = 0
        for term, manifest in sorted(self.index.authoritative_manifests().items()):
            ceilings = {
                info.index: (
                    quantize_rank_ceiling(range_max.range_max(info.lo, info.hi))
                    if info.count
                    else 0.0
                )
                for info in manifest.shards
            }
            restamped = self.index.refresh_rank_ceilings(term, ceilings, rank_version)
            refreshed += 1
            if hint_sink is not None and restamped is not None:
                hint_sink(term, restamped)
        return refreshed


# -- banded rank-vector publication ----------------------------------------------------

# DHT record names of the published rank artifacts.  The full vector under
# RANK_VECTOR_DHT_KEY is the **resync anchor**: delta rounds leave it at the
# last wholesale version and readers reconstruct the current vector as
# anchor + changed bands per the band manifest under RANK_BANDS_DHT_KEY.
RANK_VECTOR_DHT_KEY = "rank:vector"
RANK_BANDS_DHT_KEY = "rank:bands"

RANK_BAND_MANIFEST_KIND = "qb-rank-bands"


def rank_band_width(max_doc_id: int, bands: int) -> int:
    """The fixed doc-id width of each band for this round's vector."""
    if bands < 1:
        raise ValueError(f"band count must be positive, got {bands!r}")
    return max(1, -(-(max_doc_id + 1) // bands))


def rank_band_payload(ranks: Mapping[int, float], lo: int, hi: int) -> str:
    """Canonical JSON for the slice of ``ranks`` with doc ids in [lo, hi].

    Both sides of the wire derive this independently (publisher from the
    vector it just computed, reader from the vector it already holds), so
    it must be a pure function of the slice: string keys, sorted, default
    float repr.  Its CID doubles as the band fingerprint.
    """
    slice_ = {
        str(doc_id): ranks[doc_id]
        for doc_id in sorted(ranks)
        if lo <= doc_id <= hi
    }
    return json.dumps(slice_, sort_keys=True)


def rank_vector_fingerprint(ranks: Mapping[int, float]) -> str:
    """Version-independent fingerprint of a whole rank vector.

    Computed over the ranks alone (not the versioned publication envelope),
    so a reader can verify a band-assembled vector against the manifest's
    ``ffp`` regardless of which versions its parts came from.
    """
    canonical = json.dumps(
        {str(doc_id): rank for doc_id, rank in sorted(ranks.items())}, sort_keys=True
    )
    return compute_cid(canonical)


@dataclass
class RankPublishReceipt:
    """What one rank-vector publication round actually shipped."""

    version: int
    wholesale: bool
    # Band manifest JSON (None when banding is disabled: pure wholesale).
    manifest_json: Optional[str] = None
    # CID of the full vector stored this round (wholesale rounds only).
    full_cid: Optional[str] = None
    bands_changed: int = 0
    bands_total: int = 0
    bytes_published: int = 0


@dataclass
class _BandState:
    """Publisher-side carry state: the previous round's band layout."""

    version: int
    width: int
    fingerprints: List[str]
    cids: List[Optional[str]]
    anchor_cid: str
    anchor_version: int


class RankVectorPublisher:
    """Publishes the rank vector wholesale or as banded deltas.

    The doc-id space is cut into ``bands`` fixed-width bands; each band's
    canonical payload is fingerprinted, and a round whose vector moved only
    a few bands stores just those bands plus a small **band manifest** —
    remote frontends holding the previous vector then fetch only the moved
    bands.  The last wholesale full vector stays published as the resync
    anchor; the invariant (held by induction across delta rounds) is that a
    band whose manifest entry carries no CID is bit-identical to its slice
    of the anchor, so any reader can always reconstruct the *current*
    vector as anchor + CID-carrying bands.

    Fallback to wholesale is automatic whenever deltas stop paying: no
    previous round, the band width changed (doc-id space grew past the old
    grid), or more than half the bands moved (a link-graph change ripples
    PageRank globally; text-only updates leave it bit-identical).  With
    ``bands=0`` every round is wholesale and no manifest is published —
    the ``delta_publication=False`` ablation is exactly the legacy path.

    The manifest is ``dht.put`` under :data:`RANK_BANDS_DHT_KEY`
    (authoritative); the engine additionally gossips it so frontends skip
    the DHT lookup on the happy path.
    """

    def __init__(self, storage, dht, bands: int, metrics=None) -> None:
        self.storage = storage
        self.dht = dht
        self.bands = bands
        self.metrics = metrics
        self._previous: Optional[_BandState] = None

    def publish(
        self,
        ranks: Mapping[int, float],
        version: int,
        publisher: Optional[str] = None,
    ) -> RankPublishReceipt:
        """Ship ``ranks`` at ``version``; returns what went on the wire."""
        if self.bands < 1 or not ranks:
            full_cid, nbytes = self._store_full(ranks, version, publisher)
            self._previous = None
            return RankPublishReceipt(
                version=version, wholesale=True, full_cid=full_cid,
                bytes_published=nbytes,
            )

        width = rank_band_width(max(ranks), self.bands)
        bounds = self._band_bounds(max(ranks), width)
        fingerprints = [
            compute_cid(rank_band_payload(ranks, lo, hi)) for lo, hi in bounds
        ]
        previous = self._previous
        changed = (
            [
                index
                for index, fingerprint in enumerate(fingerprints)
                if index >= len(previous.fingerprints)
                or fingerprint != previous.fingerprints[index]
            ]
            if previous is not None and previous.width == width
            else list(range(len(bounds)))
        )
        wholesale = (
            previous is None
            or previous.width != width
            or 2 * len(changed) > len(bounds)
        )
        if wholesale:
            return self._publish_wholesale(ranks, version, width, bounds, fingerprints, publisher)
        return self._publish_delta(
            ranks, version, width, bounds, fingerprints, changed, previous, publisher
        )

    # -- internals ---------------------------------------------------------------------

    def _publish_wholesale(self, ranks, version, width, bounds, fingerprints, publisher):
        full_cid, nbytes = self._store_full(ranks, version, publisher)
        cids: List[Optional[str]] = [None] * len(bounds)
        state = _BandState(
            version=version, width=width, fingerprints=fingerprints, cids=cids,
            anchor_cid=full_cid, anchor_version=version,
        )
        manifest_json = self._put_manifest(ranks, state, bounds)
        self._previous = state
        return RankPublishReceipt(
            version=version, wholesale=True, manifest_json=manifest_json,
            full_cid=full_cid, bands_changed=len(bounds), bands_total=len(bounds),
            bytes_published=nbytes + len(manifest_json),
        )

    def _publish_delta(
        self, ranks, version, width, bounds, fingerprints, changed, previous, publisher
    ):
        cids: List[Optional[str]] = [
            previous.cids[index] if index < len(previous.cids) else None
            for index in range(len(bounds))
        ]
        nbytes = 0
        for index in changed:
            lo, hi = bounds[index]
            payload = rank_band_payload(ranks, lo, hi)
            cids[index] = self.storage.add_text(payload, publisher=publisher).cid
            nbytes += len(payload)
            if self.metrics is not None:
                self.metrics.increment("publish.delta_bytes", len(payload))
        state = _BandState(
            version=version, width=width, fingerprints=fingerprints, cids=cids,
            anchor_cid=previous.anchor_cid, anchor_version=previous.anchor_version,
        )
        manifest_json = self._put_manifest(ranks, state, bounds)
        self._previous = state
        return RankPublishReceipt(
            version=version, wholesale=False, manifest_json=manifest_json,
            full_cid=None, bands_changed=len(changed), bands_total=len(bounds),
            bytes_published=nbytes + len(manifest_json),
        )

    def _store_full(self, ranks, version, publisher) -> Tuple[str, int]:
        """Store the full versioned vector (the legacy/anchor artifact)."""
        payload = json.dumps(
            {
                "version": version,
                # repro-lint: disable=RL004 -- sort_keys=True canonicalizes the payload
                "ranks": {str(doc_id): rank for doc_id, rank in ranks.items()},
            },
            sort_keys=True,
        )
        cid = self.storage.add_text(payload, publisher=publisher).cid
        self.dht.put(RANK_VECTOR_DHT_KEY, cid)
        if self.metrics is not None:
            self.metrics.increment("publish.full_bytes", len(payload))
        return cid, len(payload)

    def _put_manifest(self, ranks, state: _BandState, bounds) -> str:
        body = {
            "kind": RANK_BAND_MANIFEST_KIND,
            "v": state.version,
            "w": state.width,
            "ffp": rank_vector_fingerprint(ranks),
            "anchor": {"cid": state.anchor_cid, "v": state.anchor_version},
            "bands": [
                {
                    "b": index,
                    "lo": lo,
                    "hi": hi,
                    "fp": state.fingerprints[index],
                    "cid": state.cids[index],
                    "n": sum(1 for doc_id in ranks if lo <= doc_id <= hi),
                }
                for index, (lo, hi) in enumerate(bounds)
            ],
        }
        manifest_json = json.dumps(body, sort_keys=True)
        self.dht.put(RANK_BANDS_DHT_KEY, manifest_json)
        return manifest_json

    @staticmethod
    def _band_bounds(max_doc_id: int, width: int) -> List[Tuple[int, int]]:
        bounds = []
        lo = 0
        while lo <= max_doc_id:
            bounds.append((lo, lo + width - 1))
            lo += width
        return bounds


def assemble_banded_ranks(
    manifest_json: str,
    fetch_text: Callable[[str], str],
    local_ranks: Optional[Mapping[int, float]] = None,
) -> Optional[Dict[int, float]]:
    """Reconstruct the current rank vector from a band manifest.

    For each band: a locally-held slice whose fingerprint already matches is
    reused without any fetch; otherwise the band's own CID is fetched; a
    band with no CID is (by the publisher's invariant) bit-identical to its
    slice of the wholesale anchor, which is fetched once and sliced.  The
    assembled vector is verified against the manifest's whole-vector
    fingerprint — any mismatch, parse failure, or unreachable part returns
    None so the caller can fall back (authoritative DHT manifest, then the
    legacy full-vector path) instead of adopting a torn vector.
    """
    try:
        body = json.loads(manifest_json)
        if body.get("kind") != RANK_BAND_MANIFEST_KIND:
            return None
        local = dict(local_ranks) if local_ranks else {}
        anchor: Optional[Dict[int, float]] = None
        assembled: Dict[int, float] = {}
        for band in body["bands"]:
            lo, hi = int(band["lo"]), int(band["hi"])
            fingerprint = str(band["fp"])
            if local and compute_cid(rank_band_payload(local, lo, hi)) == fingerprint:
                for doc_id in sorted(local):
                    if lo <= doc_id <= hi:
                        assembled[doc_id] = local[doc_id]
                continue
            cid = band.get("cid")
            if cid is not None:
                slice_ = json.loads(fetch_text(str(cid)))
            else:
                if anchor is None:
                    anchor_body = json.loads(fetch_text(str(body["anchor"]["cid"])))
                    anchor = {
                        int(doc_id): float(rank)
                        for doc_id, rank in sorted(anchor_body["ranks"].items())
                    }
                slice_ = json.loads(rank_band_payload(anchor, lo, hi))
            for doc_id, rank in sorted(slice_.items()):
                assembled[int(doc_id)] = float(rank)
        if rank_vector_fingerprint(assembled) != str(body["ffp"]):
            return None
        return assembled
    except Exception:
        return None
