"""Exact PageRank by power iteration (the reference the decentralized version
is compared against in E8)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.ranking.graph import LinkGraph

DEFAULT_DAMPING = 0.85
DEFAULT_TOLERANCE = 1e-8
DEFAULT_MAX_ITERATIONS = 100


@dataclass
class PageRankResult:
    """Ranks plus convergence diagnostics."""

    ranks: Dict[int, float] = field(default_factory=dict)
    iterations: int = 0
    converged: bool = False
    residual: float = 0.0

    def top(self, count: int) -> Dict[int, float]:
        """The ``count`` highest-ranked nodes."""
        ordered = sorted(self.ranks.items(), key=lambda item: (-item[1], item[0]))
        return dict(ordered[:count])

    def l1_error(self, other: Dict[int, float]) -> float:
        """Sum of absolute rank differences against another rank vector."""
        keys = set(self.ranks) | set(other)
        return sum(abs(self.ranks.get(k, 0.0) - other.get(k, 0.0)) for k in sorted(keys))


def pagerank(
    graph: LinkGraph,
    damping: float = DEFAULT_DAMPING,
    tolerance: float = DEFAULT_TOLERANCE,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    initial: Optional[Dict[int, float]] = None,
) -> PageRankResult:
    """Standard PageRank with uniform teleport and dangling-mass redistribution.

    Ranks sum to 1.0 (within floating-point error), which the incentive
    contract's threshold policy relies on for comparability across corpus
    sizes.
    """
    if not 0.0 < damping < 1.0:
        raise ValueError(f"damping must be in (0, 1), got {damping!r}")
    nodes = graph.nodes()
    n = len(nodes)
    result = PageRankResult()
    if n == 0:
        result.converged = True
        return result

    uniform = 1.0 / n
    if initial:
        total = sum(initial.values()) or 1.0
        ranks = {node: initial.get(node, uniform) / total for node in nodes}
    else:
        ranks = {node: uniform for node in nodes}
    dangling = graph.dangling_nodes()

    for iteration in range(1, max_iterations + 1):
        dangling_mass = sum(ranks[node] for node in dangling)
        base = (1.0 - damping) * uniform + damping * dangling_mass * uniform
        next_ranks = {node: base for node in nodes}
        for node in nodes:
            out_degree = graph.out_degree(node)
            if out_degree == 0:
                continue
            share = damping * ranks[node] / out_degree
            for target in graph.out_links(node):
                next_ranks[target] += share
        residual = sum(abs(next_ranks[node] - ranks[node]) for node in nodes)
        ranks = next_ranks
        if residual < tolerance:
            result.ranks = ranks
            result.iterations = iteration
            result.converged = True
            result.residual = residual
            return result

    result.ranks = ranks
    result.iterations = max_iterations
    result.converged = False
    result.residual = residual
    return result
