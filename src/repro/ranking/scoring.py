"""Combining term relevance (BM25) with page importance (PageRank)."""

from __future__ import annotations

import math
from typing import Dict, Mapping


class CombinedScorer:
    """A weighted log-linear combination of BM25 and PageRank.

    ``final = bm25_weight * bm25 + rank_weight * log(1 + rank / uniform_rank)``

    Normalizing the rank by the uniform rank (1/N) makes the second component
    corpus-size independent: a page with exactly average importance adds
    ``log 2`` regardless of N.
    """

    def __init__(self, bm25_weight: float = 1.0, rank_weight: float = 1.0) -> None:
        if bm25_weight < 0 or rank_weight < 0:
            raise ValueError("scorer weights must be non-negative")
        self.bm25_weight = bm25_weight
        self.rank_weight = rank_weight

    def combine(
        self,
        bm25_scores: Mapping[int, float],
        page_ranks: Mapping[int, float],
        document_count: int,
    ) -> Dict[int, float]:
        """Final score for every candidate in ``bm25_scores``."""
        combined: Dict[int, float] = {}
        for doc_id, text_score in bm25_scores.items():
            rank = page_ranks.get(doc_id, 0.0)
            combined[doc_id] = self.bm25_weight * text_score + self.rank_component(
                rank, document_count
            )
        return combined

    def rank_component(self, rank: float, document_count: int) -> float:
        """The PageRank part of the combined score for one document."""
        uniform = 1.0 / document_count if document_count else 1.0
        return self.rank_weight * (math.log1p(rank / uniform) if rank > 0 else 0.0)

    def rank_upper_bound(self, page_ranks: Mapping[int, float], document_count: int) -> float:
        """The largest rank component any document can contribute.

        Used by the MaxScore executor to bound the score of documents whose
        rank it has not looked up yet.
        """
        if not page_ranks:
            return 0.0
        return self.rank_component(max(page_ranks.values()), document_count)

    def top_k(self, combined: Mapping[int, float], k: int) -> Dict[int, float]:
        """The ``k`` best documents, ties broken by doc_id for determinism."""
        ordered = sorted(combined.items(), key=lambda item: (-item[1], item[0]))
        return dict(ordered[:k])
