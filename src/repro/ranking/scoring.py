"""Combining term relevance (BM25) with page importance (PageRank)."""

from __future__ import annotations

import bisect
import math
from typing import Dict, Mapping, Optional


class CombinedScorer:
    """A weighted log-linear combination of BM25 and PageRank.

    ``final = bm25_weight * bm25 + rank_weight * log(1 + rank / uniform_rank)``

    Normalizing the rank by the uniform rank (1/N) makes the second component
    corpus-size independent: a page with exactly average importance adds
    ``log 2`` regardless of N.
    """

    def __init__(self, bm25_weight: float = 1.0, rank_weight: float = 1.0) -> None:
        if bm25_weight < 0 or rank_weight < 0:
            raise ValueError("scorer weights must be non-negative")
        self.bm25_weight = bm25_weight
        self.rank_weight = rank_weight

    def combine(
        self,
        bm25_scores: Mapping[int, float],
        page_ranks: Mapping[int, float],
        document_count: int,
    ) -> Dict[int, float]:
        """Final score for every candidate in ``bm25_scores``."""
        combined: Dict[int, float] = {}
        for doc_id, text_score in bm25_scores.items():
            rank = page_ranks.get(doc_id, 0.0)
            combined[doc_id] = self.bm25_weight * text_score + self.rank_component(
                rank, document_count
            )
        return combined

    def rank_component(self, rank: float, document_count: int) -> float:
        """The PageRank part of the combined score for one document."""
        uniform = 1.0 / document_count if document_count else 1.0
        return self.rank_weight * (math.log1p(rank / uniform) if rank > 0 else 0.0)

    def rank_upper_bound(self, page_ranks: Mapping[int, float], document_count: int) -> float:
        """The largest rank component any document can contribute.

        Used by the MaxScore executor to bound the score of documents whose
        rank it has not looked up yet.
        """
        if not page_ranks:
            return 0.0
        return self.rank_component(max(page_ranks.values()), document_count)

    def top_k(self, combined: Mapping[int, float], k: int) -> Dict[int, float]:
        """The ``k`` best documents, ties broken by doc_id for determinism."""
        ordered = sorted(combined.items(), key=lambda item: (-item[1], item[0]))
        return dict(ordered[:k])


class RankRangeIndex:
    """Doc-id-range maxima over a rank vector (bucketed, O(1)-ish queries).

    The single global rank upper bound is the weak link of MaxScore pruning
    on head terms: their idf — hence their text bound — is tiny, so whether
    a doc-id-range shard can reach the top-k threshold is decided almost
    entirely by the best *rank* in the shard's range, not by term
    frequencies.  This index buckets the rank vector by doc id and keeps
    per-bucket and suffix maxima, so the executor can bound "the best rank
    any document in ``[lo, hi]`` (or ``>= lo``) can have" without touching
    the corpus-sized vector per query.

    Built once per rank version (the frontend memoizes it) in O(corpus);
    bounds are conservative by construction — bucket maxima round the range
    outward — so pruning against them is admissible.
    """

    def __init__(self, page_ranks: Mapping[int, float], bucket_size: int = 8) -> None:
        if bucket_size < 1:
            raise ValueError(f"bucket_size must be positive, got {bucket_size!r}")
        self.bucket_size = bucket_size
        buckets: Dict[int, float] = {}
        for doc_id, rank in page_ranks.items():
            bucket = doc_id // bucket_size
            if rank > buckets.get(bucket, 0.0):
                buckets[bucket] = rank
        self._buckets = buckets
        self._ordered = sorted(buckets)
        # suffix_max[i] = max rank over ordered buckets i..end.
        self._suffix = [buckets[b] for b in self._ordered]
        for i in range(len(self._suffix) - 2, -1, -1):
            self._suffix[i] = max(self._suffix[i], self._suffix[i + 1])
        self.global_max = self._suffix[0] if self._suffix else 0.0

    def range_max(self, lo: int, hi: Optional[int] = None) -> float:
        """Max rank of any document with ``lo <= doc_id`` (``<= hi`` if given).

        Rounded outward to bucket boundaries, so the result can only be an
        over-estimate — never tighter than the true range maximum.
        """
        if not self._ordered:
            return 0.0
        first = lo // self.bucket_size
        if hi is None:
            # Suffix query: max over every bucket at or after `first`.
            position = self._bisect(first)
            return self._suffix[position] if position < len(self._suffix) else 0.0
        last = hi // self.bucket_size
        span = last - first + 1
        if span >= len(self._ordered):
            position = self._bisect(first)
            best = 0.0
            while position < len(self._ordered) and self._ordered[position] <= last:
                value = self._buckets[self._ordered[position]]
                if value > best:
                    best = value
                position += 1
            return best
        best = 0.0
        for bucket in range(first, last + 1):
            value = self._buckets.get(bucket, 0.0)
            if value > best:
                best = value
        return best

    def _bisect(self, bucket: int) -> int:
        return bisect.bisect_left(self._ordered, bucket)
