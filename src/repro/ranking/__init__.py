"""Ranking: link analysis (PageRank) and text relevance (BM25).

Worker bees "compute the page ranks, which are hosted in a decentralized
storage"; the frontend combines page rank with term relevance when composing
results.  The decentralized PageRank implementation partitions the link
graph across worker bees and supports redundant assignment with majority
voting, which is the defense evaluated against the collusion attack (E6).
"""

from repro.ranking.graph import LinkGraph
from repro.ranking.pagerank import PageRankResult, pagerank
from repro.ranking.bm25 import BM25Scorer
from repro.ranking.distributed import DecentralizedPageRank, RankTask
from repro.ranking.scoring import CombinedScorer

__all__ = [
    "LinkGraph",
    "pagerank",
    "PageRankResult",
    "BM25Scorer",
    "DecentralizedPageRank",
    "RankTask",
    "CombinedScorer",
]
