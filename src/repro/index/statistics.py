"""Collection statistics needed by the BM25 scorer."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class CollectionStatistics:
    """Document counts, lengths, and per-term document frequencies.

    The distributed index publishes these alongside its shard directory so
    the frontend can score results without seeing the whole corpus.
    """

    document_count: int = 0
    total_length: int = 0
    document_lengths: Dict[int, int] = field(default_factory=dict)
    document_frequency: Dict[str, int] = field(default_factory=dict)
    # Monotonic mutation counter: bumped on every add/remove so consumers
    # that memoize statistics-derived values (the frontend's result cache)
    # can detect in-place changes without hashing the whole object.
    version: int = 0

    @property
    def average_length(self) -> float:
        if not self.document_count:
            return 0.0
        return self.total_length / self.document_count

    def add_document(self, doc_id: int, length: int, terms: Dict[str, int]) -> None:
        """Register one document's length and the terms it contains."""
        self.version += 1
        previous = self.document_lengths.get(doc_id)
        if previous is not None:
            # Re-adding a document (page update): lengths are replaced, but
            # per-term document frequencies of the old version are unknown
            # here, so callers should remove first for exact stats.
            self.total_length -= previous
        else:
            self.document_count += 1
        self.document_lengths[doc_id] = length
        self.total_length += length
        for term in terms:
            self.document_frequency[term] = self.document_frequency.get(term, 0) + (
                0 if previous is not None else 1
            )

    def remove_document(self, doc_id: int, terms: Dict[str, int]) -> None:
        """Unregister a document (deletions and the removal half of updates)."""
        self.version += 1
        length = self.document_lengths.pop(doc_id, None)
        if length is None:
            return
        self.document_count -= 1
        self.total_length -= length
        for term in terms:
            current = self.document_frequency.get(term, 0)
            if current <= 1:
                self.document_frequency.pop(term, None)
            else:
                self.document_frequency[term] = current - 1

    def df(self, term: str) -> int:
        """Document frequency of ``term``."""
        return self.document_frequency.get(term, 0)

    def length_of(self, doc_id: int) -> int:
        return self.document_lengths.get(doc_id, 0)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable snapshot published to decentralized storage.

        The version counter travels with the snapshot: consumers that key
        memoized values on it (the frontend result cache) stay freshness-
        safe even when their statistics arrive via fetch rather than by
        sharing the engine's live object.
        """
        return {
            "document_count": self.document_count,
            "total_length": self.total_length,
            "version": self.version,
            "document_lengths": {str(k): v for k, v in self.document_lengths.items()},
            "document_frequency": dict(self.document_frequency),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "CollectionStatistics":
        stats = cls()
        stats.version = int(payload.get("version", 0))
        stats.document_count = int(payload.get("document_count", 0))
        stats.total_length = int(payload.get("total_length", 0))
        stats.document_lengths = {
            int(k): int(v) for k, v in dict(payload.get("document_lengths", {})).items()
        }
        stats.document_frequency = {
            str(k): int(v) for k, v in dict(payload.get("document_frequency", {})).items()
        }
        return stats
