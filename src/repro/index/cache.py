"""An LRU cache for posting lists.

The distributed index resolves a term with one DHT lookup plus one content
fetch over the simulated network — the dominant cost of every query (E1).
Query streams are Zipfian, so a small LRU in front of decentralized storage
absorbs most fetches for the head terms.  The cache is write-through: a
publish for a cached term replaces the entry, so a frontend colocated with
the publishing path never serves a stale shard.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from repro.index.postings import PostingList


@dataclass
class PostingCacheStats:
    """Hit/miss accounting (the E10 cache column)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0


class PostingCache:
    """A bounded term -> :class:`PostingList` cache with LRU eviction."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be positive, got {capacity!r}")
        self.capacity = capacity
        self._entries: "OrderedDict[str, PostingList]" = OrderedDict()
        self.stats = PostingCacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, term: str) -> bool:
        return term in self._entries

    def get(self, term: str) -> Optional[PostingList]:
        """The cached list for ``term`` (marking it most-recently-used), or None."""
        entry = self._entries.get(term)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(term)
        self.stats.hits += 1
        return entry

    def put(self, term: str, postings: PostingList) -> None:
        """Insert or replace the entry for ``term``, evicting the LRU tail."""
        if term in self._entries:
            self._entries.move_to_end(term)
        self._entries[term] = postings
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def invalidate(self, term: str) -> bool:
        """Drop ``term`` from the cache (shard superseded remotely)."""
        if term not in self._entries:
            return False
        del self._entries[term]
        self.stats.invalidations += 1
        return True

    def clear(self) -> None:
        self._entries.clear()
