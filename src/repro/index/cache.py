"""An LRU cache for posting-list shards, with index-epoch invalidation.

The distributed index resolves a term with one DHT lookup (its shard
manifest) plus one content fetch per needed shard over the simulated
network — the dominant cost of every query (E1).  Query streams are Zipfian,
so a small LRU in front of decentralized storage absorbs most fetches for
the head terms.

Entries are **per shard**: keys are the shard's DHT key
(:func:`~repro.index.distributed.shard_key`), so a republish that touches
one range shard of a long list invalidates only that shard's entry and the
untouched shards keep serving from cache.

Freshness is handled by the index-epoch protocol rather than write-through:
every published shard carries the generation it was last changed at (see
:class:`~repro.index.distributed.DistributedIndex`), cache entries remember
the generation they were filled at, and a lookup that passes the current
manifest's generation detects a superseded entry, drops it, and reports a
miss so the caller lazily refreshes from the network.  Validation compares
by *equality*, not ordering: per-shard generations are carried forward for
content-identical shards, so an entry whose generation merely differs from
the manifest's cannot be trusted to hold the manifest's content.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.index.postings import PostingList
from repro.sim import monitor as state_monitor


@dataclass
class PostingCacheStats:
    """Hit/miss accounting (the E10 cache column, E2's stale-hit column)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0
    # Lookups that served an entry whose generation was already superseded —
    # only possible with generation validation disabled (the E2 ablation).
    stale_hits: int = 0
    # Stale entries brought current by applying a published patch instead
    # of refetching the full shard (the delta channel's cache-side win).
    patched_in_place: int = 0
    # Patch attempts that fell back to a full fetch (base fingerprint
    # mismatch, unreachable patch, or failed post-patch verification).
    delta_fallbacks: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    @property
    def stale_hit_rate(self) -> float:
        lookups = self.lookups
        return self.stale_hits / lookups if lookups else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self.stale_hits = 0
        self.patched_in_place = 0
        self.delta_fallbacks = 0


class PostingCache:
    """A bounded term -> :class:`PostingList` cache with LRU eviction.

    Entries carry the index generation of the shard they were filled from;
    :meth:`get` validates them against the caller-supplied current generation
    and treats superseded entries as misses (counted as invalidations).
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be positive, got {capacity!r}")
        self.capacity = capacity
        self._entries: "OrderedDict[str, Tuple[PostingList, int, str]]" = OrderedDict()
        self.stats = PostingCacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, term: str) -> bool:
        return term in self._entries

    def get(self, term: str, generation: Optional[int] = None) -> Optional[PostingList]:
        """The cached list for ``term`` (marking it most-recently-used), or None.

        When ``generation`` is given (the shard's generation per the current
        manifest), an entry filled at any *other* generation is stale: it is
        dropped, counted as an invalidation, and reported as a miss so the
        caller refreshes from the authoritative shard.
        """
        entry = self._entries.get(term)
        if entry is None:
            self.stats.misses += 1
            state_monitor.record_read("posting_cache", self, term)
            return None
        postings, entry_generation, _ = entry
        if generation is not None and entry_generation != generation:
            del self._entries[term]
            self.stats.invalidations += 1
            self.stats.misses += 1
            state_monitor.record_write("posting_cache", self, term, None, replaced=entry)
            return None
        self._entries.move_to_end(term)
        self.stats.hits += 1
        state_monitor.record_read("posting_cache", self, term, entry)
        return postings

    def generation_of(self, term: str) -> Optional[int]:
        """The generation the cached entry was filled at (stats-neutral probe)."""
        entry = self._entries.get(term)
        return entry[1] if entry is not None else None

    def peek(self, term: str) -> Optional[Tuple[PostingList, int, str]]:
        """The full ``(postings, generation, fingerprint)`` entry, or None.

        Stats-neutral and LRU-neutral: the patch path uses this to inspect a
        possibly-stale entry *before* deciding whether to patch it in place
        or let :meth:`get` invalidate it and fall through to a full fetch.
        """
        entry = self._entries.get(term)
        state_monitor.record_read(
            "posting_cache", self, term, entry if entry is not None else state_monitor.ABSENT
        )
        return entry

    def put(
        self,
        term: str,
        postings: PostingList,
        generation: int = 0,
        fingerprint: str = "",
    ) -> None:
        """Insert or replace the entry for ``term``, evicting the LRU tail.

        ``fingerprint`` is the shard's manifest content fingerprint; the
        patch channel matches a published patch's ``base_fp`` against it to
        decide whether this entry can be patched in place after a republish.
        """
        state_monitor.record_write(
            "posting_cache", self, term, (postings, generation, fingerprint),
            replaced=self._entries.get(term, state_monitor.ABSENT),
        )
        if term in self._entries:
            self._entries.move_to_end(term)
        self._entries[term] = (postings, generation, fingerprint)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def invalidate(self, term: str) -> bool:
        """Drop ``term`` from the cache (shard superseded remotely)."""
        if term not in self._entries:
            return False
        state_monitor.record_write(
            "posting_cache", self, term, None, replaced=self._entries[term]
        )
        del self._entries[term]
        self.stats.invalidations += 1
        return True

    def clear(self) -> None:
        self._entries.clear()
