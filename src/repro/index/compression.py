"""Posting-list compression: delta encoding plus variable-length integers.

Posting lists travel over the simulated network (worker bee -> decentralized
storage -> query frontend), so their encoded size directly affects query
latency and index storage cost.  The E4 ablation compares this codec against
uncompressed lists.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.errors import IndexError_


def varint_encode(value: int) -> bytes:
    """Encode a non-negative integer as a LEB128-style varint."""
    if value < 0:
        raise IndexError_(f"varints encode non-negative integers, got {value!r}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def varint_decode(data: bytes, offset: int = 0) -> Tuple[int, int]:
    """Decode one varint starting at ``offset``; returns ``(value, next_offset)``."""
    result = 0
    shift = 0
    position = offset
    while True:
        if position >= len(data):
            raise IndexError_("truncated varint")
        byte = data[position]
        position += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, position
        shift += 7
        if shift > 63:
            raise IndexError_("varint too long")


def encode_sequence(values: Sequence[int]) -> bytes:
    """Encode a sequence of non-negative integers as concatenated varints."""
    out = bytearray()
    for value in values:
        out.extend(varint_encode(value))
    return bytes(out)


def decode_sequence(data: bytes, count: int, offset: int = 0) -> Tuple[List[int], int]:
    """Decode ``count`` varints; returns ``(values, next_offset)``."""
    values: List[int] = []
    position = offset
    for _ in range(count):
        value, position = varint_decode(data, position)
        values.append(value)
    return values, position


def delta_encode(sorted_values: Sequence[int]) -> List[int]:
    """Gap-encode a strictly increasing sequence (first value kept as-is)."""
    deltas: List[int] = []
    previous = None
    for value in sorted_values:
        if previous is None:
            deltas.append(value)
        else:
            gap = value - previous
            if gap <= 0:
                raise IndexError_(f"delta encoding requires strictly increasing input, got gap {gap}")
            deltas.append(gap)
        previous = value
    return deltas


def delta_decode(deltas: Iterable[int]) -> List[int]:
    """Invert :func:`delta_encode`."""
    values: List[int] = []
    running = 0
    for index, delta in enumerate(deltas):
        running = delta if index == 0 else running + delta
        values.append(running)
    return values


def compress_postings(doc_ids: Sequence[int], frequencies: Sequence[int]) -> bytes:
    """Compress parallel ``doc_ids`` (sorted ascending) and ``frequencies`` arrays."""
    if len(doc_ids) != len(frequencies):
        raise IndexError_(
            f"doc_ids and frequencies must align, got {len(doc_ids)} vs {len(frequencies)}"
        )
    header = varint_encode(len(doc_ids))
    gaps = encode_sequence(delta_encode(doc_ids))
    freqs = encode_sequence(frequencies)
    return header + gaps + freqs


def decompress_postings(data: bytes) -> Tuple[List[int], List[int]]:
    """Invert :func:`compress_postings`; returns ``(doc_ids, frequencies)``."""
    count, offset = varint_decode(data)
    gaps, offset = decode_sequence(data, count, offset)
    frequencies, offset = decode_sequence(data, count, offset)
    if offset != len(data):
        raise IndexError_("trailing bytes after posting list payload")
    return delta_decode(gaps), frequencies
