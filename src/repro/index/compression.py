"""Posting-list compression: delta encoding plus variable-length integers.

Posting lists travel over the simulated network (worker bee -> decentralized
storage -> query frontend), so their encoded size directly affects query
latency and index storage cost.  The E4 ablation compares this codec against
uncompressed lists.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.errors import IndexError_

try:  # numpy accelerates bulk decode; the scalar path is the reference.
    import numpy as _np
except ImportError:  # pragma: no cover - the CI image always has numpy
    _np = None

# Below this payload size the numpy fixed costs (frombuffer, reduceat)
# exceed the scalar loop; measured crossover is ~tens of bytes.
_BULK_DECODE_MIN_BYTES = 48


def varint_encode(value: int) -> bytes:
    """Encode a non-negative integer as a LEB128-style varint."""
    if value < 0:
        raise IndexError_(f"varints encode non-negative integers, got {value!r}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def varint_decode(data: bytes, offset: int = 0) -> Tuple[int, int]:
    """Decode one varint starting at ``offset``; returns ``(value, next_offset)``."""
    result = 0
    shift = 0
    position = offset
    while True:
        if position >= len(data):
            raise IndexError_("truncated varint")
        byte = data[position]
        position += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, position
        shift += 7
        if shift > 63:
            raise IndexError_("varint too long")


def encode_sequence(values: Sequence[int]) -> bytes:
    """Encode a sequence of non-negative integers as concatenated varints."""
    out = bytearray()
    for value in values:
        out.extend(varint_encode(value))
    return bytes(out)


def decode_sequence(data: bytes, count: int, offset: int = 0) -> Tuple[List[int], int]:
    """Decode ``count`` varints; returns ``(values, next_offset)``."""
    values: List[int] = []
    position = offset
    for _ in range(count):
        value, position = varint_decode(data, position)
        values.append(value)
    return values, position


def delta_encode(sorted_values: Sequence[int]) -> List[int]:
    """Gap-encode a strictly increasing sequence (first value kept as-is)."""
    deltas: List[int] = []
    previous = None
    for value in sorted_values:
        if previous is None:
            deltas.append(value)
        else:
            gap = value - previous
            if gap <= 0:
                raise IndexError_(f"delta encoding requires strictly increasing input, got gap {gap}")
            deltas.append(gap)
        previous = value
    return deltas


def delta_decode(deltas: Iterable[int]) -> List[int]:
    """Invert :func:`delta_encode`."""
    values: List[int] = []
    running = 0
    for index, delta in enumerate(deltas):
        running = delta if index == 0 else running + delta
        values.append(running)
    return values


def encode_posting_delta(
    base_ids: Sequence[int],
    base_tfs: Sequence[int],
    new_ids: Sequence[int],
    new_tfs: Sequence[int],
) -> bytes:
    """Encode the patch that rewrites ``base`` into ``new``.

    Wire format: ``varint(n_removes) · gap-varints(removed doc ids) ·
    varint(n_upserts) · gap-varints(upsert doc ids) · varints(upsert tfs)``.
    Removes are base doc ids absent from ``new``; upserts cover both fresh
    doc ids and term-frequency changes.  Both inputs must be sorted
    ascending (the :class:`~repro.index.postings.PostingList` invariant),
    which keeps the id streams gap-encodable.
    """
    base = dict(zip(base_ids, base_tfs))
    new = dict(zip(new_ids, new_tfs))
    removes = [doc_id for doc_id in base_ids if doc_id not in new]
    upserts = [
        doc_id for doc_id in new_ids if base.get(doc_id) != new[doc_id]
    ]
    out = bytearray()
    out.extend(varint_encode(len(removes)))
    out.extend(encode_sequence(delta_encode(removes)))
    out.extend(varint_encode(len(upserts)))
    out.extend(encode_sequence(delta_encode(upserts)))
    out.extend(encode_sequence([new[doc_id] for doc_id in upserts]))
    return bytes(out)


def apply_posting_delta(
    base_ids: Sequence[int],
    base_tfs: Sequence[int],
    data: bytes,
) -> Tuple[List[int], List[int]]:
    """Invert :func:`encode_posting_delta`: patch ``base`` into ``new``."""
    n_removes, offset = varint_decode(data)
    remove_gaps, offset = decode_sequence(data, n_removes, offset)
    n_upserts, offset = varint_decode(data, offset)
    upsert_gaps, offset = decode_sequence(data, n_upserts, offset)
    upsert_tfs, offset = decode_sequence(data, n_upserts, offset)
    if offset != len(data):
        raise IndexError_("trailing bytes after posting delta payload")
    merged = dict(zip(base_ids, base_tfs))
    for doc_id in delta_decode(remove_gaps):
        merged.pop(doc_id, None)
    for doc_id, frequency in zip(delta_decode(upsert_gaps), upsert_tfs):
        merged[doc_id] = frequency
    doc_ids = sorted(merged)
    return doc_ids, [merged[doc_id] for doc_id in doc_ids]


def compress_postings(doc_ids: Sequence[int], frequencies: Sequence[int]) -> bytes:
    """Compress parallel ``doc_ids`` (sorted ascending) and ``frequencies`` arrays."""
    if len(doc_ids) != len(frequencies):
        raise IndexError_(
            f"doc_ids and frequencies must align, got {len(doc_ids)} vs {len(frequencies)}"
        )
    header = varint_encode(len(doc_ids))
    gaps = encode_sequence(delta_encode(doc_ids))
    freqs = encode_sequence(frequencies)
    return header + gaps + freqs


def decompress_postings(data: bytes) -> Tuple[List[int], List[int]]:
    """Invert :func:`compress_postings`; returns ``(doc_ids, frequencies)``.

    Large payloads take the numpy bulk path (:func:`_decompress_bulk`):
    identical values and identical error behaviour, one vectorized pass
    instead of a per-byte python loop.  The scalar path below is the
    reference implementation and the fallback when numpy is unavailable.
    """
    if _np is not None and len(data) >= _BULK_DECODE_MIN_BYTES:
        decoded = _decompress_bulk(data)
        if decoded is not None:
            return decoded
    count, offset = varint_decode(data)
    gaps, offset = decode_sequence(data, count, offset)
    frequencies, offset = decode_sequence(data, count, offset)
    if offset != len(data):
        raise IndexError_("trailing bytes after posting list payload")
    return delta_decode(gaps), frequencies


def _decompress_bulk(data: bytes):
    """Vectorized LEB128 + delta decode of a whole posting payload.

    Handles only the clean common case; returns ``None`` on *any* anomaly
    (truncated or overlong varints, group-count mismatch, values too large
    for the uint64 shift arithmetic) so the scalar reference decoder both
    defines the semantics and raises the exact reference error.  Well-formed
    shards produced by :func:`compress_postings` always stay on this path.
    """
    arr = _np.frombuffer(data, dtype=_np.uint8)
    if arr[-1] & 0x80:
        # The final varint group is incomplete; let the scalar path decide
        # whether that is "truncated varint" or trailing garbage.
        return None
    # A varint ends on each byte without the continuation bit.
    ends = _np.flatnonzero((arr & 0x80) == 0)
    starts = _np.empty_like(ends)
    starts[0] = 0
    starts[1:] = ends[:-1] + 1
    lengths = ends - starts + 1
    if int(lengths.max()) > 9:
        # Shifts beyond 56 can exceed uint64-safe range (the scalar decoder
        # allows shift 63); the codec never emits such groups.
        return None
    # Per-byte shift = 7 * (offset within its varint group).
    within = _np.arange(len(arr), dtype=_np.uint64) - _np.repeat(
        starts.astype(_np.uint64), lengths
    )
    shifted = (arr & 0x7F).astype(_np.uint64) << (_np.uint64(7) * within)
    values = _np.add.reduceat(shifted, starts)
    count = int(values[0])
    if len(values) != 1 + 2 * count:
        return None
    if int(values.max()) >= 1 << 31:
        # Keeps the uint64 cumsum below any wraparound risk (count * max
        # < 2**62); real doc ids, gaps and term frequencies are far smaller.
        return None
    gaps = values[1 : 1 + count]
    frequencies = values[1 + count :]
    doc_ids = _np.cumsum(gaps, dtype=_np.uint64)
    return doc_ids.tolist(), frequencies.tolist()
