"""The distributed inverted index.

Each term's posting list is serialized, published to decentralized storage
(so it is content-addressed and replicated like any other DWeb content), and
the CID of the latest version is recorded in the DHT under ``idx:<term>``.
The query frontend resolves a term with one DHT lookup plus one content
fetch — exactly the cost model that drives QueenBee's query latency in E1.

Index epochs
------------
Every publish of a term's shard bumps that term's *generation*, a
monotonically increasing counter carried inside the shard payload and
tracked in the index's epoch registry.  Posting caches stamp their entries
with the generation they were filled at; a later fetch validates the entry
against the current generation and lazily refreshes superseded ones.  This
replaces the old write-through-on-publish scheme, which refreshed only
entries the publishing instance happened to have cached and gave readers no
way to notice a superseded shard.

The registry itself is in-process state: it stands in for the lightweight
epoch feed a deployed system would gossip or piggyback on DHT traffic so
that *remote* caches learn of supersession without refetching shards.  In
this simulator every participant shares one ``DistributedIndex`` per engine,
which makes the shared registry exactly consistent; a frontend running its
own index instance would need the real feed (or CID-pointer revalidation)
to get the same guarantee.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import KeyNotFoundError, TermNotFoundError
from repro.dht.dht import DHTNetwork
from repro.index.cache import PostingCache
from repro.index.postings import PostingList
from repro.index.statistics import CollectionStatistics
from repro.storage.ipfs import DecentralizedStorage

STATS_KEY = "idx:__collection_statistics__"


def term_key(term: str) -> str:
    """DHT key under which a term's current shard CID is stored."""
    return f"idx:{term}"


@dataclass
class DistributedIndexStats:
    """Counters for the scalability and latency experiments."""

    terms_published: int = 0
    terms_fetched: int = 0
    fetch_misses: int = 0
    bytes_published: int = 0
    bytes_fetched: int = 0
    per_fetch_bytes: List[int] = field(default_factory=list)

    def reset(self) -> None:
        self.terms_published = 0
        self.terms_fetched = 0
        self.fetch_misses = 0
        self.bytes_published = 0
        self.bytes_fetched = 0
        self.per_fetch_bytes.clear()


class DistributedIndex:
    """Publish/fetch interface to the term shards living on the DWeb.

    Parameters
    ----------
    dht / storage:
        The lookup and content substrates.
    compress:
        When true (default), posting lists use the delta+varint codec; the E4
        ablation disables it to quantify the saving.
    cache:
        Optional :class:`~repro.index.cache.PostingCache` consulted before
        the DHT.  Entries are validated against the term's current generation
        (see *Index epochs* above); superseded entries are refreshed lazily.
    validate_generations:
        When false, cache entries are served without the generation check —
        the ablation the E2 freshness bench uses to quantify the stale-hit
        rate the protocol eliminates.
    """

    def __init__(
        self,
        dht: DHTNetwork,
        storage: DecentralizedStorage,
        compress: bool = True,
        cache: Optional[PostingCache] = None,
        validate_generations: bool = True,
    ) -> None:
        self.dht = dht
        self.storage = storage
        self.compress = compress
        self.cache = cache
        self.validate_generations = validate_generations
        self.stats = DistributedIndexStats()
        # The epoch registry: term -> latest published generation, seeded
        # from fetched shard payloads for terms this instance did not publish
        # itself.  Stands in for the epoch feed of a real deployment (see
        # the module docstring); consistent here because all participants
        # share the engine's single index instance.
        self._generations: Dict[str, int] = {}

    # -- epochs ---------------------------------------------------------------------

    def generation(self, term: str) -> int:
        """The latest known generation of ``term`` (0 when never published)."""
        return self._generations.get(term, 0)

    def _bump_generation(self, term: str) -> int:
        generation = self._generations.get(term, 0) + 1
        self._generations[term] = generation
        return generation

    def _observe_generation(self, term: str, generation: int) -> None:
        if generation > self._generations.get(term, 0):
            self._generations[term] = generation

    # -- publishing (worker-bee side) ----------------------------------------------

    def publish_term(
        self,
        term: str,
        postings: PostingList,
        publisher: Optional[str] = None,
    ) -> str:
        """Publish ``postings`` as the authoritative shard for ``term``.

        Returns the CID of the stored shard.  The previous shard (if any)
        stays in storage — content addressing makes old versions immutable —
        but the DHT pointer moves to the new CID, and the term's generation
        is bumped so cached copies of the old shard stop validating.
        """
        generation = self._bump_generation(term)
        payload = self._encode_shard(term, postings, generation)
        cid = self.storage.add_text(payload, publisher=publisher)
        self.dht.put(term_key(term), cid)
        self.stats.terms_published += 1
        self.stats.bytes_published += len(payload)
        return cid

    def merge_term(
        self,
        term: str,
        new_postings: PostingList,
        publisher: Optional[str] = None,
    ) -> str:
        """Fold ``new_postings`` into the published shard for ``term``.

        Fetches the current shard (if one exists), merges with the new data
        winning on conflicts, and republishes.  This is the incremental path
        worker bees use when a publish event touches an already-indexed term.
        """
        try:
            # Publish-path reads always resolve the authoritative shard: a
            # cached copy may predate another publisher's update, and merging
            # from it would republish (resurrect) postings that were removed.
            existing = self.fetch_term(term, use_cache=False)
        except TermNotFoundError:
            existing = PostingList()
        merged = existing.merge(new_postings)
        return self.publish_term(term, merged, publisher=publisher)

    def remove_document(self, term: str, doc_id: int, publisher: Optional[str] = None) -> bool:
        """Remove one document from a term's shard (page deletion/update)."""
        try:
            # Authoritative read, same as merge_term: removing from a stale
            # cached shard would republish other documents' dead postings.
            existing = self.fetch_term(term, use_cache=False)
        except TermNotFoundError:
            return False
        # The fetched list may be shared with other readers; never mutate it
        # in place.
        updated = existing.copy()
        if not updated.remove(doc_id):
            return False
        self.publish_term(term, updated, publisher=publisher)
        return True

    def publish_statistics(
        self, statistics: CollectionStatistics, publisher: Optional[str] = None
    ) -> str:
        """Publish the collection statistics the frontend needs for BM25."""
        payload = json.dumps(statistics.to_dict(), sort_keys=True)
        cid = self.storage.add_text(payload, publisher=publisher)
        self.dht.put(STATS_KEY, cid)
        self.stats.bytes_published += len(payload)
        return cid

    # -- fetching (frontend side) -----------------------------------------------------

    def fetch_term(
        self,
        term: str,
        requester: Optional[str] = None,
        use_cache: bool = True,
    ) -> PostingList:
        """Resolve and fetch the posting list for ``term``.

        The returned list may be shared with the posting cache and other
        readers — treat it as read-only and :meth:`PostingList.copy` before
        mutating.  Raises :class:`TermNotFoundError` when the term has never
        been published or its shard is unreachable (the recall loss counted
        in E3).  ``use_cache=False`` bypasses the posting cache entirely
        (reads and fills) — the reference path the E2 bench compares against.
        """
        if self.cache is not None and use_cache:
            # Hit/miss accounting lives in self.cache.stats, the single
            # source of truth for cache behaviour.
            current = self.generation(term) if self.validate_generations else None
            cached = self.cache.get(term, generation=current)
            if cached is not None:
                if not self.validate_generations:
                    entry_generation = self.cache.generation_of(term)
                    if entry_generation is not None and entry_generation < self.generation(term):
                        self.cache.stats.stale_hits += 1
                return cached
        try:
            cid = self.dht.get(term_key(term))
        except KeyNotFoundError as exc:
            self.stats.fetch_misses += 1
            raise TermNotFoundError(f"term {term!r} has no published shard") from exc
        try:
            payload = self.storage.get_text(cid, requester=requester)
        except Exception as exc:
            self.stats.fetch_misses += 1
            raise TermNotFoundError(f"shard for term {term!r} is unreachable") from exc
        self.stats.terms_fetched += 1
        self.stats.bytes_fetched += len(payload)
        self.stats.per_fetch_bytes.append(len(payload))
        postings, generation = self._decode_shard(payload)
        self._observe_generation(term, generation)
        if self.cache is not None and use_cache:
            self.cache.put(term, postings, generation=generation)
        return postings

    def fetch_statistics(self, requester: Optional[str] = None) -> CollectionStatistics:
        """Fetch the published collection statistics (empty stats if absent)."""
        try:
            cid = self.dht.get(STATS_KEY)
            payload = self.storage.get_text(cid, requester=requester)
        except Exception:
            return CollectionStatistics()
        return CollectionStatistics.from_dict(json.loads(payload))

    def has_term(self, term: str) -> bool:
        """Whether a shard pointer exists for ``term`` (no content fetch)."""
        return self.dht.contains(term_key(term))

    # -- serialization ----------------------------------------------------------------

    def _encode_shard(self, term: str, postings: PostingList, generation: int) -> str:
        # max_tf rides along with every shard: it lets a frontend compute the
        # term's best-case (MaxScore) contribution without scanning the list.
        # gen is the shard's index generation, the epoch caches validate
        # their entries against.
        if self.compress:
            body = {
                "term": term,
                "encoding": "delta-varint",
                "gen": generation,
                "max_tf": postings.max_term_frequency,
                "postings": postings.to_payload(),
            }
        else:
            body = {
                "term": term,
                "encoding": "raw",
                "gen": generation,
                "max_tf": postings.max_term_frequency,
                "postings": [[p.doc_id, p.term_frequency] for p in postings],
            }
        return json.dumps(body, sort_keys=True)

    def _decode_shard(self, payload: str) -> Tuple[PostingList, int]:
        # The shard's max_tf field is not needed here — PostingList computes
        # it lazily — but stays in the payload so index-level consumers (e.g.
        # a future bound-only planner fetch) can read it without decoding.
        body = json.loads(payload)
        generation = int(body.get("gen", 0))
        if body.get("encoding") == "delta-varint":
            return PostingList.from_payload(body["postings"]), generation
        result = PostingList()
        for doc_id, frequency in body.get("postings", []):
            result.add(int(doc_id), int(frequency))
        return result, generation
