"""The distributed inverted index: doc-id-range shards behind a term manifest.

Layout
------
A term's postings no longer live in one monolithic shard.  ``publish_term``
splits the sorted posting list into **doc-id-range shards** of at most
``shard_size`` postings each; every shard payload is published to
decentralized storage (content-addressed and replicated like any other DWeb
content) and its CID is recorded in the DHT under ``idx:<term>:<shard>``.
The DHT value under ``idx:<term>`` is a small JSON **shard manifest**:

* the term's current *generation* (the index epoch, bumped per publish),
* one entry per shard with its doc-id boundaries (``lo``/``hi``), posting
  count, **quantized max term frequency** (the ingredient of the per-shard
  MaxScore impact bound — quantized *upward* on a geometric grid so the bound
  stays conservative while manifests stay small), the shard's own generation,
  its content CID, and a content fingerprint.

The query frontend resolves a term with one DHT lookup (the manifest) plus
one content fetch per shard it actually needs — the per-shard bounds let the
executor skip shards that cannot reach the current top-k threshold, and
conjunctive queries skip shards outside the terms' feasible doc-id window
without fetching them at all.  Lists at or below ``shard_size`` publish as a
single shard, so the cost model degrades gracefully to the paper's original
one-lookup-one-fetch shape (E1/E4).

Index epochs
------------
Every publish bumps the term's *generation*, carried in the manifest and
announced on the **epoch feed**.  Shards, however, keep **per-shard
generations**: a republish that leaves a shard's content byte-identical
(fingerprint match against the previous manifest) carries the old shard
generation forward and skips re-storing and re-pointing it — so posting
caches keep serving the untouched shards of an updated term, and only the
shard an update actually touched is refetched.  Cache entries are stamped
with the shard generation they were filled at and validate by *equality*
against the current manifest's entry.

The epoch feed has two implementations, selected by the engine's
``metadata_plane`` config.  On the ``"shared"`` plane it is this instance's
in-process registry — exactly consistent because publisher and readers
share one ``DistributedIndex``, the idealized ablation.  On the
``"gossip"`` plane it is the real thing: each publish enters the new
generation into the publishing peer's gossip store, anti-entropy rounds
spread it (:mod:`repro.net.gossip`), and a *remote* frontend running its
own ``DistributedIndex`` validates its cached manifests against its own
peer's view of the feed.  The DHT record under ``idx:<term>`` stays
authoritative either way, which is what keeps staleness benign: a cached
manifest is reused only when its generation *equals* the feed's, so a
lagging feed forces an authoritative re-fetch (extra lookup, fresh answer)
and a leading feed invalidates eagerly — the freshness guarantee degrades
to "bounded by gossip convergence", never to serving a generation the feed
has already superseded.  Fetched manifests are observed back into the
local feed, so authoritative knowledge piggybacks on gossip.

Rank ceilings
-------------
At rank-publish time the engine stamps every manifest entry with a
**quantized per-shard rank ceiling** — the largest PageRank of any document
in the shard's doc-id range, rounded *up* on a geometric grid — plus the
rank version the ceilings were computed at (see
:class:`~repro.ranking.distributed.RankCeilingPublisher`).  The executor
uses matching-version ceilings to skip shards whose best possible rank
cannot reach the top-k threshold, which lets any frontend (local or
remote) prune by rank **without materialising the rank vector**; the
frontend-built :class:`~repro.ranking.scoring.RankRangeIndex` remains as
the fallback/ablation.  A stale or missing ceiling only loosens pruning —
bounds are conservative by construction, so pages stay bit-identical.

Shard placement & replication
-----------------------------
With a :class:`~repro.index.placement.PlacementPolicy` attached, shard
*content* is no longer pinned wherever the publisher happens to sit:
``publish_term`` asks the policy for a spread-maximizing replica set per
changed shard (anti-affinity: no peer provides more than
``ceil(shards/replication_factor)`` shards of one term), pushes the payload
onto exactly those peers, and records the chosen providers in the shard's
manifest entry (``prov``).  The query path uses those hints as a routing
table: each shard fetch is steered to the **least-loaded live** hinted
provider (ranked by blocks actually served), falling back to the remaining
hinted peers and then to the DHT provider record on failure — so a head
term's serving load stays spread even under a skewed query stream.
Carried-forward shards keep their placement along with their CID and
generation.  When churn drops a shard below the replication floor, the
policy re-replicates it and calls back into
:meth:`DistributedIndex.refresh_shard_providers` to update the manifest's
hints *in place* (same generations — content is untouched, caches stay
valid).
"""

from __future__ import annotations

import base64
import json
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import KeyNotFoundError, ReproError, TermNotFoundError
from repro.dht.dht import DHTNetwork
from repro.index.cache import PostingCache
from repro.index.placement import PlacementPolicy, rank_replicas
from repro.index.postings import PostingList
from repro.index.statistics import CollectionStatistics
from repro.storage.cid import compute_cid
from repro.storage.ipfs import DecentralizedStorage
from repro.storage.patches import PatchChannel, PatchInfo

STATS_KEY = "idx:__collection_statistics__"

# Postings per shard above which a term's list splits into range shards.
# 0 disables splitting (single-shard manifests, the pre-sharding layout).
DEFAULT_SHARD_SIZE = 0

# Geometric quantization grid for the per-shard max-tf bound carried in the
# manifest.  Quantization always rounds *up*, so the derived impact bound can
# only be looser than exact, never tighter — pruning stays admissible and the
# sharded top-k stays bit-identical to the unsharded reference.
_QUANT_RATIO = 1.2


def term_key(term: str) -> str:
    """DHT key under which a term's shard manifest is stored."""
    return f"idx:{term}"


def shard_key(term: str, shard: int) -> str:
    """DHT key under which one range shard's content CID is stored."""
    return f"idx:{term}:{shard}"


def quantize_max_tf(max_tf: int) -> int:
    """Round ``max_tf`` up to the geometric quantization grid (conservative)."""
    if max_tf <= 1:
        return max(0, max_tf)
    level = 1.0
    while True:
        level *= _QUANT_RATIO
        quantized = int(level) if level == int(level) else int(level) + 1
        if quantized >= max_tf:
            return quantized


def quantize_min_length_down(length: int) -> int:
    """Round a minimum document length *down* to the quantization grid.

    The per-shard impact bound evaluates BM25's length normalization at the
    shard's minimum document length; rounding the minimum down can only
    loosen the bound, never tighten it, so pruning stays admissible.  (This
    is what makes per-shard bounds genuinely tighter than the length-free
    whole-list bound: the length-free form saturates in tf almost
    immediately, while a shard of normal-length documents is bounded well
    below it.)
    """
    if length <= 1:
        return max(0, length)
    level = 1.0
    best = 1
    while True:
        level *= _QUANT_RATIO
        quantized = int(level) if level == int(level) else int(level) + 1
        if quantized > length:
            return best
        best = quantized


@dataclass(frozen=True)
class ShardInfo:
    """One manifest entry: a shard's doc-id range, bounds, and identity."""

    index: int
    lo: int
    hi: int
    count: int
    max_tf: int  # quantized upward; >= the shard's true max term frequency
    generation: int
    cid: str
    fingerprint: str
    # Quantized-down minimum document length in the shard (0 = unknown, the
    # length-free fallback).  Evaluating BM25's length normalization at this
    # floor upper-bounds every contribution the shard can make.
    min_len: int = 0
    # Provider hints: the replica set the placement policy pushed this
    # shard's content onto (empty = unsteered publish, route via the DHT
    # provider record only).  Hints are routing advice, never authority —
    # a fetch falls back to the provider record when every hint fails.
    providers: Tuple[str, ...] = ()
    # Quantized-up maximum PageRank of any document in [lo, hi], stamped at
    # rank-publish time and valid only at the manifest's rank_version
    # (-1 = unknown; the executor falls back to its other rank bounds).
    rank_ceiling: float = -1.0
    # The published patch rewriting the *previous* generation's content into
    # this one (None = no patch this generation).  It rides in the manifest,
    # so the crash ordering below covers it: the patch payload is stored
    # before the manifest commit point, never after.
    patch: Optional[PatchInfo] = None

    def to_dict(self) -> Dict[str, object]:
        body: Dict[str, object] = {
            "i": self.index, "lo": self.lo, "hi": self.hi, "n": self.count,
            "qtf": self.max_tf, "ml": self.min_len, "gen": self.generation,
            "cid": self.cid, "fp": self.fingerprint,
        }
        if self.providers:
            body["prov"] = list(self.providers)
        if self.rank_ceiling >= 0.0:
            body["rc"] = self.rank_ceiling
        if self.patch is not None:
            body["patch"] = self.patch.to_dict()
        return body

    @classmethod
    def from_dict(cls, body: Dict[str, object]) -> "ShardInfo":
        patch = body.get("patch")
        return cls(
            index=int(body["i"]), lo=int(body["lo"]), hi=int(body["hi"]),
            count=int(body["n"]), max_tf=int(body["qtf"]),
            generation=int(body["gen"]), cid=str(body["cid"]),
            fingerprint=str(body["fp"]), min_len=int(body.get("ml", 0)),
            providers=tuple(str(p) for p in body.get("prov", ())),
            rank_ceiling=float(body.get("rc", -1.0)),
            patch=PatchInfo.from_dict(patch) if isinstance(patch, dict) else None,
        )


@dataclass(frozen=True)
class TermManifest:
    """The small per-term record the DHT serves under ``idx:<term>``."""

    term: str
    generation: int
    shards: Tuple[ShardInfo, ...]
    # The rank-vector version the shards' rank ceilings were computed at
    # (-1 = never stamped).  Consumers use ceilings only when this matches
    # their current rank version; anything else falls back to looser
    # bounds, never to a wrong page.
    rank_version: int = -1

    @property
    def posting_count(self) -> int:
        return sum(shard.count for shard in self.shards)

    @property
    def min_doc_id(self) -> Optional[int]:
        # Empty shards (kept to stabilise shard numbering across
        # republishes) carry sentinel ranges; skip them.
        for shard in self.shards:
            if shard.count:
                return shard.lo
        return None

    @property
    def max_doc_id(self) -> Optional[int]:
        for shard in reversed(self.shards):
            if shard.count:
                return shard.hi
        return None

    def to_json(self) -> str:
        body: Dict[str, object] = {
            "kind": "qb-manifest",
            "term": self.term,
            "gen": self.generation,
            "shards": [shard.to_dict() for shard in self.shards],
        }
        if self.rank_version >= 0:
            body["rv"] = self.rank_version
        return json.dumps(body, sort_keys=True)

    @classmethod
    def from_json(cls, payload: str) -> "TermManifest":
        body = json.loads(payload)
        return cls(
            term=str(body["term"]),
            generation=int(body["gen"]),
            shards=tuple(ShardInfo.from_dict(entry) for entry in body["shards"]),
            rank_version=int(body.get("rv", -1)),
        )


class ShardedPostings:
    """Lazy reader over one term's range shards.

    The executor's cursor layer consumes this instead of a materialized
    :class:`PostingList`: shard boundaries and quantized bounds come from the
    manifest without any content fetch, and :meth:`shard` fetches (and
    memoizes) individual shard contents on demand — so shards the executor
    skips are never pulled over the network.  :meth:`materialize` rebuilds
    the full list for consumers that need it (the TAAT reference path, the
    publish-side merge).
    """

    def __init__(
        self,
        manifest: TermManifest,
        loader: Callable[[int], PostingList],
        preloaded: Optional[Dict[int, PostingList]] = None,
    ) -> None:
        self.manifest = manifest
        self._loader = loader
        self._shards: Dict[int, PostingList] = dict(preloaded or {})

    @property
    def term(self) -> str:
        return self.manifest.term

    @property
    def shard_infos(self) -> Tuple[ShardInfo, ...]:
        return self.manifest.shards

    @property
    def rank_version(self) -> int:
        """Rank version the manifest's shard rank ceilings are valid at."""
        return self.manifest.rank_version

    @property
    def min_doc_id(self) -> Optional[int]:
        return self.manifest.min_doc_id

    @property
    def max_doc_id(self) -> Optional[int]:
        return self.manifest.max_doc_id

    def __len__(self) -> int:
        return self.manifest.posting_count

    def loaded(self, index: int) -> bool:
        return index in self._shards

    def shard(self, index: int) -> PostingList:
        """The postings of shard ``index`` (fetched on first access)."""
        postings = self._shards.get(index)
        if postings is None:
            postings = self._loader(index)
            self._shards[index] = postings
        return postings

    def materialize(self) -> PostingList:
        """The full posting list (fetches every non-empty shard not loaded)."""
        chunks = [
            self.shard(info.index) for info in self.manifest.shards if info.count
        ]
        if not chunks:
            return PostingList()
        return PostingList.concatenate(chunks)


@dataclass
class DistributedIndexStats:
    """Counters for the scalability and latency experiments.

    ``terms_fetched`` counts shard content fetches that went to the network
    (one per shard, so a multi-shard term counts each shard it actually
    loads); ``shards_unchanged`` counts republishes that carried a shard
    forward untouched (fingerprint match — no store, no DHT write).
    """

    terms_published: int = 0
    terms_fetched: int = 0
    fetch_misses: int = 0
    bytes_published: int = 0
    bytes_fetched: int = 0
    manifest_fetches: int = 0
    manifest_bytes_fetched: int = 0
    shards_published: int = 0
    shards_unchanged: int = 0
    rank_ceiling_refreshes: int = 0
    # Patch channel (the delta publication path).  ``shards_patched`` counts
    # cache entries brought current by applying a patch (the fetch they
    # replaced would have cost the full shard payload); ``delta_fallbacks``
    # counts patch attempts that degraded to a full fetch.  Patch payload
    # bytes are folded into ``bytes_fetched``/``per_fetch_bytes`` (they are
    # real wire bytes) and broken out in ``delta_bytes_fetched``;
    # ``terms_fetched`` still counts only full shard content fetches.
    deltas_published: int = 0
    delta_bytes_published: int = 0
    shards_patched: int = 0
    delta_fallbacks: int = 0
    delta_bytes_fetched: int = 0
    # Cached manifests whose rank ceilings were refreshed from the gossiped
    # per-term rv hint (no DHT refetch, no epoch bump).
    rank_hint_refreshes: int = 0
    per_fetch_bytes: List[int] = field(default_factory=list)

    def reset(self) -> None:
        self.terms_published = 0
        self.terms_fetched = 0
        self.fetch_misses = 0
        self.bytes_published = 0
        self.bytes_fetched = 0
        self.manifest_fetches = 0
        self.manifest_bytes_fetched = 0
        self.shards_published = 0
        self.shards_unchanged = 0
        self.rank_ceiling_refreshes = 0
        self.deltas_published = 0
        self.delta_bytes_published = 0
        self.shards_patched = 0
        self.delta_fallbacks = 0
        self.delta_bytes_fetched = 0
        self.rank_hint_refreshes = 0
        self.per_fetch_bytes.clear()


class DistributedIndex:
    """Publish/fetch interface to the term shards living on the DWeb.

    Parameters
    ----------
    dht / storage:
        The lookup and content substrates.
    compress:
        When true (default), posting lists use the delta+varint codec; the E4
        ablation disables it to quantify the saving.
    cache:
        Optional :class:`~repro.index.cache.PostingCache` consulted before
        the DHT.  Entries are **per shard** (keyed by :func:`shard_key`) and
        carry the shard generation they were filled at; they validate by
        equality against the current manifest (see *Index epochs* above).
    validate_generations:
        When false, cached manifests and shards are served without the
        generation check — the ablation the E2 freshness bench uses to
        quantify the stale-hit rate the protocol eliminates.
    shard_size:
        Maximum postings per shard; lists above it split into range shards.
        0 (default) publishes every term as a single shard.
    length_lookup:
        Optional ``doc_id -> document length`` (the engine wires the shared
        collection statistics).  When present, each shard's manifest entry
        carries the quantized-down minimum length of its documents, which
        tightens the per-shard impact bound; absent, bounds fall back to
        BM25's length-free form.
    placement:
        Optional :class:`~repro.index.placement.PlacementPolicy`.  When
        present, changed shards are pushed onto policy-chosen replica sets
        (pinned placement, provider hints in the manifest) and shard fetches
        are routed to the least-loaded live hinted provider; the index binds
        itself as the policy's manifest updater so churn repairs refresh the
        published hints.  Absent, publishes and fetches use the unsteered
        random-replica path (the E4 placement ablation).
    epoch_feed:
        Optional gossiped epoch feed (``generation(term)`` / ``publish`` /
        ``observe`` — a :class:`~repro.net.gossip.GossipView` on a remote
        frontend, a :class:`~repro.net.gossip.PlaneEpochFeed` on the
        publisher).  Generations published here are announced on the feed,
        generations learned from fetched manifests are observed into it,
        and :meth:`generation` takes the max of the local registry and the
        feed — so cached manifests are validated against whatever the feed
        has delivered.  Absent, the local registry is the whole feed (the
        shared metadata plane).
    load_lookup:
        Optional ``address -> serving load`` used to rank a shard's hinted
        providers at fetch time.  Remote frontends pass the gossiped coarse
        load hints; absent, the true served-block counters are read off the
        shared peer objects (the shared-plane behaviour).
    delta_publication:
        When true (default), updates that supply the pre-update list
        (``publish_term(base_postings=...)``) also publish a per-shard
        *patch* through the :class:`~repro.storage.patches.PatchChannel`,
        keyed by the previous shard's content fingerprint, and fetches
        patch superseded cache entries in place instead of refetching the
        full shard.  False is the wholesale ablation (E2).  The full shard
        payload is always published either way — patches are an overlay,
        never the authority.
    delta_max_ratio:
        A patch larger than this fraction of the full shard payload is not
        published (an all-docs-changed round degenerates to full fetch).
    metrics:
        Optional :class:`~repro.metrics.collector.MetricsCollector`; the
        delta channel's byte counters (``publish.delta_bytes`` /
        ``publish.full_bytes`` / ``cache.patched_in_place`` /
        ``cache.delta_fallbacks``) land here when present.
    """

    def __init__(
        self,
        dht: DHTNetwork,
        storage: DecentralizedStorage,
        compress: bool = True,
        cache: Optional[PostingCache] = None,
        validate_generations: bool = True,
        shard_size: int = DEFAULT_SHARD_SIZE,
        length_lookup: Optional[Callable[[int], int]] = None,
        placement: Optional[PlacementPolicy] = None,
        epoch_feed: Optional[object] = None,
        load_lookup: Optional[Callable[[str], int]] = None,
        delta_publication: bool = True,
        delta_max_ratio: float = 0.5,
        metrics: Optional[object] = None,
    ) -> None:
        if shard_size < 0:
            raise ValueError(f"shard_size must be non-negative, got {shard_size!r}")
        self.dht = dht
        self.storage = storage
        self.compress = compress
        self.cache = cache
        self.validate_generations = validate_generations
        self.shard_size = shard_size
        self.length_lookup = length_lookup
        self.placement = placement
        self.epoch_feed = epoch_feed
        self.load_lookup = load_lookup
        self.delta_publication = delta_publication
        self.delta_max_ratio = delta_max_ratio
        self.metrics = metrics
        self.patches = PatchChannel(storage, metrics=metrics)
        if placement is not None:
            placement.manifest_updater = self.refresh_shard_providers
        self.stats = DistributedIndexStats()
        # The local half of the epoch registry: term -> latest generation
        # this instance published or observed itself.  With an epoch_feed
        # attached, :meth:`generation` merges in whatever gossip delivered;
        # without one this registry *is* the feed (exactly consistent when
        # all participants share the engine's single index instance).
        self._generations: Dict[str, int] = {}
        # Manifest cache, filled on fetch only (never on publish, so the
        # validation-off ablation really does model a cache that does not
        # learn of supersession).  Entries validate against the registry.
        self._manifests: Dict[str, TermManifest] = {}
        # Publisher-side record of the latest manifest per term.  This is
        # ground truth for *instrumentation only* (exact stale-hit
        # accounting in the validation-off ablation: a carried-forward,
        # content-identical shard is not a stale read even though the term
        # generation moved on); the read path never consults it.
        self._authoritative: Dict[str, TermManifest] = {}

    # -- epochs ---------------------------------------------------------------------

    def generation(self, term: str) -> int:
        """The latest known generation of ``term`` (0 when never published).

        "Known" is the union of what this instance published or observed
        itself and what the epoch feed has delivered — a remote frontend's
        knowledge therefore advances with gossip, without any in-process
        link to the publisher.
        """
        local = self._generations.get(term, 0)
        if self.epoch_feed is not None:
            return max(local, self.epoch_feed.generation(term))
        return local

    def _observe_generation(self, term: str, generation: int) -> None:
        if generation > self._generations.get(term, 0):
            self._generations[term] = generation
        if self.epoch_feed is not None:
            # Authoritative knowledge piggybacks on gossip: this peer now
            # spreads the epoch it just fetched.
            self.epoch_feed.observe(term, generation)

    # -- publishing (worker-bee side) ----------------------------------------------

    def publish_term(
        self,
        term: str,
        postings: PostingList,
        publisher: Optional[str] = None,
        base_postings: Optional[PostingList] = None,
    ) -> str:
        """Publish ``postings`` as the authoritative shards for ``term``.

        ``base_postings`` is the authoritative pre-update list the caller
        already holds (the merge/remove paths fetch it anyway); when given
        and ``delta_publication`` is on, each changed shard also publishes a
        patch against its previous content so warm caches update in place.
        Patches are best-effort — a base that does not re-fingerprint to the
        previous manifest entry, or a patch bigger than
        ``delta_max_ratio`` of the full payload, simply ships no patch.

        Splits the list into doc-id-range shards, stores the shards whose
        content changed (fingerprint diff against the previous manifest —
        unchanged shards keep their CID *and* their generation, so caches
        holding them stay valid), moves the ``idx:<term>:<i>`` pointers, and
        publishes the new manifest under ``idx:<term>``.  Old shard payloads
        stay in storage — content addressing makes them immutable — but the
        manifest is what readers resolve.  Returns the CID of the first
        shard (the whole list's CID in the common single-shard case).

        The per-shard DHT pointers are deliberately redundant with the
        manifest's ``cid`` fields: the query path fetches shard content
        straight from the manifest (no per-shard lookup), while the pointers
        give repair/rebalance jobs an address for one shard without reading
        the manifest.  A pointer left behind by a shrinking list keeps
        resolving to its (immutable) old payload; it is harmless because
        nothing resolves shards the current manifest does not name.

        **Crash ordering.**  Every side effect a *reader* can observe is
        sequenced so the ``idx:<term>`` manifest write is the commit point:
        shard payloads are stored and announced first, per-shard pointers
        move next, and only after the manifest DHT put succeeds does this
        publisher's own generation registry (and epoch-feed announcement)
        advance.  A publisher that dies anywhere before the commit point
        leaves the old manifest — and the old, still-immutable shard
        payloads it names — fully intact: readers see the *old* generation
        or the *new* one, never a torn mix.  (Dying between the commit
        point and the feed announcement just delays remote frontends one
        gossip round; they read old-but-consistent until the epoch lands.)
        """
        # generation() merges the local registry with the epoch feed, so a
        # publisher that learned a newer epoch via gossip bumps past it.
        # The registry itself is NOT written here — that happens after the
        # manifest commit below, so a crash mid-publish cannot leave this
        # publisher believing in a generation no reader can fetch.
        generation = self.generation(term) + 1
        previous = self._previous_manifest(term) if generation > 1 else None
        chunks = self._split_for_republish(postings, previous)

        # Recover the previous per-shard contents from the pre-update list
        # by splitting it along the previous manifest's boundaries.  Each
        # recovered chunk is verified against the published fingerprint
        # before any patch is derived from it (see _publish_shard_patch), so
        # a base that missed a generation or drifted across a re-split can
        # only suppress a patch, never produce a wrong one.
        base_chunks: Optional[List[PostingList]] = None
        if self.delta_publication and base_postings is not None and previous is not None:
            if len(previous.shards) > 1:
                base_chunks = base_postings.split_at(
                    [shard.hi for shard in previous.shards[:-1]]
                )
            else:
                base_chunks = [base_postings]

        # First pass: fingerprint every chunk so carried-forward shards (and
        # their placements) are known before any replica set is chosen — the
        # anti-affinity cap must count the providers of untouched shards.
        prepared: List[Tuple[PostingList, Dict[str, object], str, int]] = []
        carried: Dict[int, ShardInfo] = {}
        changed: List[int] = []
        for index, chunk in enumerate(chunks):
            min_len = self._chunk_min_length(chunk)
            body = self._encode_shard_body(term, chunk, index, min_len)
            fingerprint = compute_cid(json.dumps(body, sort_keys=True))
            prior = (
                previous.shards[index]
                if previous is not None and index < len(previous.shards)
                else None
            )
            if prior is not None and prior.fingerprint == fingerprint:
                # Byte-identical shard: carry the whole manifest entry —
                # generation, CID, bounds, placement — forward untouched.
                # (The fingerprint covers min_len, so a document-length
                # change always republishes — the stored bound never goes
                # stale.)
                carried[index] = prior
            else:
                changed.append(index)
            prepared.append((chunk, body, fingerprint, min_len))

        placements: Dict[int, Tuple[str, ...]] = {}
        if self.placement is not None and changed:
            placements = self.placement.assign(
                term,
                len(chunks),
                {index: info.providers for index, info in sorted(carried.items())},
                changed,
            )

        infos: List[ShardInfo] = []
        for index, (chunk, body, fingerprint, min_len) in enumerate(prepared):
            prior = carried.get(index)
            if prior is not None:
                infos.append(prior)
                self.stats.shards_unchanged += 1
                if self.placement is not None:
                    self.placement.record(term, index, prior.cid, prior.providers)
                continue
            body["gen"] = generation
            payload = json.dumps(body, sort_keys=True)
            patch = None
            if base_chunks is not None and index < len(base_chunks):
                prior = (
                    previous.shards[index]
                    if previous is not None and index < len(previous.shards)
                    else None
                )
                patch = self._publish_shard_patch(
                    term, index, base_chunks[index], chunk, prior, payload, publisher
                )
            requested = placements.get(index, ())
            receipt = self.storage.add_text(
                payload, publisher=publisher, providers=requested or None
            )
            cid = receipt.cid
            # Hints and the repair registry record the providers the push
            # actually reached (a chosen peer lost at push time is dropped;
            # the publisher fallback is announced) — a hint naming a peer
            # without the content would defeat the repair floor check.
            achieved = receipt.providers if requested else ()
            self.dht.put(shard_key(term, index), cid)
            self.stats.shards_published += 1
            self.stats.bytes_published += len(payload)
            if self.metrics is not None:
                self.metrics.increment("publish.full_bytes", len(payload))
            lo = chunk.min_doc_id if len(chunk) else 0
            hi = chunk.max_doc_id if len(chunk) else -1
            info = ShardInfo(
                index=index, lo=lo, hi=hi, count=len(chunk),
                max_tf=quantize_max_tf(chunk.max_term_frequency),
                generation=generation, cid=cid, fingerprint=fingerprint,
                min_len=min_len, providers=achieved, patch=patch,
            )
            if self.placement is not None:
                self.placement.record(term, index, cid, info.providers)
            infos.append(info)

        # Carried shards keep the rank ceilings stamped at the previous
        # rank-publish; changed shards enter with no ceiling (-1), so the
        # executor falls back to looser bounds for exactly those until the
        # next rank round restamps the manifest.
        manifest = TermManifest(
            term=term, generation=generation, shards=tuple(infos),
            rank_version=previous.rank_version if previous is not None else -1,
        )
        manifest_json = manifest.to_json()
        self.dht.put(term_key(term), manifest_json)
        # Commit point passed: only now does the new generation become the
        # one this publisher asserts (and gossips).
        if generation > self._generations.get(term, 0):
            self._generations[term] = generation
        self._authoritative[term] = manifest
        if self.epoch_feed is not None:
            # Announce the epoch on the feed at the peer that published it.
            self.epoch_feed.publish(term, generation, origin=publisher)
        self.stats.terms_published += 1
        self.stats.bytes_published += len(manifest_json)
        if previous is not None:
            # Shard keys beyond the new shard count can never validate again;
            # drop them eagerly instead of waiting for LRU pressure, and
            # release their placement slots.
            for stale in previous.shards[len(infos):]:
                if self.cache is not None:
                    self.cache.invalidate(shard_key(term, stale.index))
                if self.placement is not None:
                    self.placement.forget(term, stale.index)
        return infos[0].cid

    def _publish_shard_patch(
        self,
        term: str,
        index: int,
        base_chunk: PostingList,
        chunk: PostingList,
        prior: Optional[ShardInfo],
        full_payload: str,
        publisher: Optional[str],
    ) -> Optional[PatchInfo]:
        """Publish the patch rewriting shard ``index``'s previous content
        into ``chunk``, when one is worth shipping (else ``None``).

        The recovered base must re-encode to exactly the previous manifest
        entry's fingerprint — anything else (missed generation, boundary
        drift after a re-split) suppresses the patch rather than risking a
        wrong one.  A patch that would not clearly beat the full payload
        (the ``delta_max_ratio`` gate) is also suppressed: an
        all-docs-changed round ships nothing and readers refetch wholesale.
        """
        if prior is None or not prior.fingerprint:
            return None
        base_body = self._encode_shard_body(term, base_chunk, index, prior.min_len)
        if compute_cid(json.dumps(base_body, sort_keys=True)) != prior.fingerprint:
            return None
        payload = json.dumps(
            {
                "kind": "qb-postings-patch",
                "term": term,
                "shard": index,
                "bfp": prior.fingerprint,
                "patch": base64.b64encode(base_chunk.delta_to(chunk)).decode("ascii"),
            },
            sort_keys=True,
        )
        if len(payload) > self.delta_max_ratio * len(full_payload):
            return None
        info = self.patches.publish(payload, prior.fingerprint, publisher=publisher)
        self.stats.deltas_published += 1
        self.stats.delta_bytes_published += info.size
        if self.metrics is not None:
            self.metrics.increment("publish.delta_bytes", info.size)
        return info

    def merge_term(
        self,
        term: str,
        new_postings: PostingList,
        publisher: Optional[str] = None,
    ) -> str:
        """Fold ``new_postings`` into the published shards for ``term``.

        Fetches the current list (if one exists), merges with the new data
        winning on conflicts, and republishes.  Thanks to the fingerprint
        diff in :meth:`publish_term`, only the range shards the merge
        actually changed are re-stored.  This is the incremental path worker
        bees use when a publish event touches an already-indexed term.

        A term that is *published but currently unreachable* (a shard's
        providers are offline) re-raises instead of merging: treating it as
        empty would republish a manifest containing only ``new_postings``
        and permanently wipe every other document from the term.  The
        caller retries when the network heals; only a term with no DHT
        pointer at all starts from empty.
        """
        try:
            # Publish-path reads always resolve the authoritative shards: a
            # cached copy may predate another publisher's update, and merging
            # from it would republish (resurrect) postings that were removed.
            existing = self.fetch_term(term, use_cache=False)
        except TermNotFoundError:
            if self.has_term(term):
                raise
            existing = PostingList()
        merged = existing.merge(new_postings)
        # The just-fetched authoritative list is exactly the base the patch
        # channel needs — no extra fetch to publish deltas.
        return self.publish_term(term, merged, publisher=publisher, base_postings=existing)

    def remove_document(self, term: str, doc_id: int, publisher: Optional[str] = None) -> bool:
        """Remove one document from a term's shards (page deletion/update).

        Returns False only for a term that was never published.  A published
        term whose shards are currently unreachable re-raises (same rule as
        :meth:`merge_term`): swallowing the failure would silently leave the
        stale posting the removal exists to eliminate.
        """
        try:
            # Authoritative read, same as merge_term: removing from a stale
            # cached shard would republish other documents' dead postings.
            existing = self.fetch_term(term, use_cache=False)
        except TermNotFoundError:
            if self.has_term(term):
                raise
            return False
        # The fetched list may be shared with other readers; never mutate it
        # in place.
        updated = existing.copy()
        if not updated.remove(doc_id):
            return False
        self.publish_term(term, updated, publisher=publisher, base_postings=existing)
        return True

    def publish_statistics(
        self, statistics: CollectionStatistics, publisher: Optional[str] = None
    ) -> str:
        """Publish the collection statistics the frontend needs for BM25."""
        payload = json.dumps(statistics.to_dict(), sort_keys=True)
        cid = self.storage.add_text(payload, publisher=publisher).cid
        self.dht.put(STATS_KEY, cid)
        self.stats.bytes_published += len(payload)
        return cid

    # -- fetching (frontend side) -----------------------------------------------------

    def fetch_term_manifest(
        self,
        term: str,
        requester: Optional[str] = None,
        use_cache: bool = True,
    ) -> TermManifest:
        """Resolve the shard manifest for ``term`` (one DHT lookup, no content).

        Raises :class:`TermNotFoundError` when the term has never been
        published.  Cached manifests validate against the epoch registry;
        with ``validate_generations`` off, a cached manifest is served as-is
        (the E2 ablation) and superseded shard reads count as stale hits.
        Manifest caching rides the posting-cache config: an instance built
        without a cache pays the full one-DHT-lookup-per-resolution cost
        model on every fetch (what the cache-free benchmark rows measure).
        """
        use_cache = use_cache and self.cache is not None
        if use_cache:
            cached = self._manifests.get(term)
            if cached is not None:
                if not self.validate_generations or cached.generation == self.generation(term):
                    return self._overlay_rank_hint(term, cached)
        try:
            value = self.dht.get(term_key(term))
        except KeyNotFoundError as exc:
            self.stats.fetch_misses += 1
            raise TermNotFoundError(f"term {term!r} has no published shard") from exc
        manifest = self._decode_manifest(term, value, requester=requester)
        self.stats.manifest_fetches += 1
        self.stats.manifest_bytes_fetched += len(str(value))
        self._observe_generation(term, manifest.generation)
        if use_cache:
            self._manifests[term] = manifest
        return manifest

    def _overlay_rank_hint(self, term: str, cached: TermManifest) -> TermManifest:
        """Refresh a cached manifest's rank ceilings from the gossiped rv hint.

        The epoch feed may carry a per-term ``rv`` hint — the rank version
        plus the quantized per-shard ceilings stamped at the last rank
        publish (see :class:`~repro.ranking.distributed.RankCeilingPublisher`).
        A hint that is newer than the cached stamp *and* describes exactly
        this generation's shard layout is applied in place, which is
        identical to what an authoritative manifest refetch would deliver —
        so ceilings refresh without an epoch bump or a DHT round trip.
        Anything else (older hint, generation moved, layout mismatch) leaves
        the cached manifest untouched; stale ceilings only loosen pruning.
        """
        hint_of = getattr(self.epoch_feed, "rank_ceiling_hint", None)
        if hint_of is None:
            return cached
        hint = hint_of(term)
        if hint is None:
            return cached
        version, generation, ceilings = hint
        if (
            version <= cached.rank_version
            or generation != cached.generation
            or len(ceilings) != len(cached.shards)
        ):
            return cached
        shards = tuple(
            replace(info, rank_ceiling=float(ceiling))
            for info, ceiling in zip(cached.shards, ceilings)
        )
        refreshed = TermManifest(
            term=term, generation=cached.generation, shards=shards,
            rank_version=int(version),
        )
        self._manifests[term] = refreshed
        self.stats.rank_hint_refreshes += 1
        return refreshed

    def fetch_term_sharded(
        self,
        term: str,
        requester: Optional[str] = None,
        use_cache: bool = True,
    ) -> ShardedPostings:
        """Resolve ``term`` to a lazy :class:`ShardedPostings` reader.

        The manifest is fetched eagerly (it is the DHT lookup); shard
        contents load on demand through the per-shard posting cache, so
        consumers that skip shards never pay their content fetch.
        """
        manifest = self.fetch_term_manifest(term, requester=requester, use_cache=use_cache)

        def loader(index: int) -> PostingList:
            return self._fetch_shard(manifest, index, requester=requester, use_cache=use_cache)

        return ShardedPostings(manifest, loader)

    def fetch_term(
        self,
        term: str,
        requester: Optional[str] = None,
        use_cache: bool = True,
    ) -> PostingList:
        """Resolve and fetch the full posting list for ``term``.

        The returned list may be shared with the posting cache and other
        readers — treat it as read-only and :meth:`PostingList.copy` before
        mutating.  Raises :class:`TermNotFoundError` when the term has never
        been published or a shard is unreachable (the recall loss counted
        in E3).  ``use_cache=False`` bypasses the manifest and posting
        caches entirely (reads and fills) — the reference path the E2 bench
        compares against.
        """
        return self.fetch_term_sharded(
            term, requester=requester, use_cache=use_cache
        ).materialize()

    def _fetch_shard(
        self,
        manifest: TermManifest,
        index: int,
        requester: Optional[str] = None,
        use_cache: bool = True,
    ) -> PostingList:
        """One shard's postings, through the per-shard posting cache."""
        info = manifest.shards[index]
        key = shard_key(manifest.term, index)
        if self.cache is not None and use_cache:
            # Hit/miss accounting lives in self.cache.stats, the single
            # source of truth for cache behaviour.
            expected = info.generation if self.validate_generations else None
            if expected is not None and info.patch is not None:
                entry = self.cache.peek(key)
                if entry is not None and entry[1] != expected:
                    patched = self._patch_cached_shard(manifest, info, key, entry, requester)
                    if patched is not None:
                        return patched
            cached = self.cache.get(key, generation=expected)
            if cached is not None:
                if not self.validate_generations:
                    # The manifest itself may be superseded (it was served
                    # without validation): count the read as a stale hit iff
                    # the entry's generation differs from the shard's
                    # generation in the *authoritative* manifest — a
                    # carried-forward, content-identical shard is not stale
                    # even though the term's generation moved on.
                    entry_generation = self.cache.generation_of(key)
                    authoritative = self._authoritative.get(manifest.term)
                    if authoritative is not None and entry_generation is not None:
                        if index >= len(authoritative.shards):
                            self.cache.stats.stale_hits += 1
                        elif entry_generation != authoritative.shards[index].generation:
                            self.cache.stats.stale_hits += 1
                return cached
        try:
            payload = self.storage.get_text(
                info.cid, requester=requester, preferred=self._route_providers(info)
            )
        except Exception as exc:
            self.stats.fetch_misses += 1
            raise TermNotFoundError(
                f"shard {index} of term {manifest.term!r} is unreachable"
            ) from exc
        self.stats.terms_fetched += 1
        self.stats.bytes_fetched += len(payload)
        self.stats.per_fetch_bytes.append(len(payload))
        postings, generation = self._decode_shard(payload)
        if self.cache is not None and use_cache:
            # Stamp the entry with the manifest's content fingerprint so a
            # later republish's patch (keyed by this fingerprint) can apply.
            self.cache.put(key, postings, generation=generation, fingerprint=info.fingerprint)
        return postings

    def _patch_cached_shard(
        self,
        manifest: TermManifest,
        info: ShardInfo,
        key: str,
        entry: Tuple[PostingList, int, str],
        requester: Optional[str],
    ) -> Optional[PostingList]:
        """Bring a superseded cache entry current by applying the shard's patch.

        Returns the patched postings, or ``None`` to fall through to the
        full fetch (the next rung of the ladder).  The patched result must
        re-encode to exactly the manifest entry's content fingerprint before
        it is served or cached — a successful patch is therefore
        bit-identical to a wholesale refetch by construction, and any
        mismatch (wrong base, corrupt patch, unreachable payload) costs one
        counted fallback, never a wrong page.
        """
        postings, _, fingerprint = entry
        patch = info.patch
        if not fingerprint or fingerprint != patch.base_fp:
            return self._delta_fallback()
        payload = self.patches.fetch(
            patch, requester=requester, preferred=self._route_providers(info)
        )
        if payload is None:
            return self._delta_fallback()
        try:
            body = json.loads(payload)
            patched = postings.apply_delta(base64.b64decode(body["patch"]))
        except (ReproError, ValueError, KeyError, TypeError):
            return self._delta_fallback()
        check = self._encode_shard_body(manifest.term, patched, info.index, info.min_len)
        if compute_cid(json.dumps(check, sort_keys=True)) != info.fingerprint:
            return self._delta_fallback()
        self.stats.shards_patched += 1
        self.stats.delta_bytes_fetched += len(payload)
        self.stats.bytes_fetched += len(payload)
        self.stats.per_fetch_bytes.append(len(payload))
        self.cache.stats.patched_in_place += 1
        self.cache.put(key, patched, generation=info.generation, fingerprint=info.fingerprint)
        if self.metrics is not None:
            self.metrics.increment("cache.patched_in_place")
        return patched

    def _delta_fallback(self) -> None:
        """Count one patch attempt degrading to a full fetch; returns None."""
        self.stats.delta_fallbacks += 1
        if self.cache is not None:
            self.cache.stats.delta_fallbacks += 1
        if self.metrics is not None:
            self.metrics.increment("cache.delta_fallbacks")
        return None

    def _route_providers(self, info: ShardInfo) -> Optional[List[str]]:
        """Live manifest hints for one shard, least-loaded first, or ``None``.

        The ranking itself lives in :func:`repro.index.placement.rank_replicas`;
        what varies is the load signal.  Without a ``load_lookup`` it is each
        provider's *actual* serving count
        (:attr:`~repro.storage.peer.StoragePeer.blocks_served` — readable
        here only because the simulator shares the peer objects, the
        shared-plane idealization); with one (remote frontends) it is the
        gossiped coarse serving-load hint, so independent frontends get the
        same spread-the-replicas signal without touching any peer object.
        Either way a skewed query stream round-robins across a term's
        replica set instead of hammering the first provider the DHT happens
        to list.
        """
        if not info.providers:
            return None
        load_of = self.load_lookup
        if load_of is None:
            peers = self.storage.peers

            def load_of(address: str) -> int:
                peer = peers.get(address)
                return peer.blocks_served if peer is not None else 0

        # Liveness comes from the storage facade's presumed_alive — the
        # local failure detector when one is attached, never the global
        # oracle directly (RL007).  A wrongly-suspected provider drops out
        # of the *hint* only; the fetch path still falls through to the
        # full announced provider set.
        return rank_replicas(info.providers, self.storage.presumed_alive, load_of)

    def authoritative_manifests(self) -> Dict[str, TermManifest]:
        """The latest manifest this instance published, per term (a copy).

        Publisher-side only (empty on a purely-fetching frontend); the rank
        ceiling publisher iterates it at rank-publish time.
        """
        return dict(self._authoritative)

    def refresh_rank_ceilings(
        self, term: str, ceilings_by_shard: Dict[int, float], rank_version: int
    ) -> Optional[TermManifest]:
        """Restamp one manifest's per-shard rank ceilings at ``rank_version``.

        Generations (term and per-shard) are untouched — shard *content*
        did not change, so posting/manifest caches stay valid and result
        caches keep their keys; only the pruning metadata moves.  Returns
        the refreshed manifest (the rank ceiling publisher derives the
        gossiped ``rv`` hint from it), or ``None`` for an unknown term.
        """
        manifest = self._authoritative.get(term)
        if manifest is None:
            try:
                manifest = self._decode_manifest(term, self.dht.get(term_key(term)))
            except (KeyNotFoundError, TermNotFoundError):
                return None
        shards = tuple(
            replace(
                info,
                rank_ceiling=float(ceilings_by_shard.get(info.index, info.rank_ceiling)),
            )
            for info in manifest.shards
        )
        refreshed = TermManifest(
            term=term, generation=manifest.generation, shards=shards,
            rank_version=rank_version,
        )
        self._authoritative[term] = refreshed
        self.dht.put(term_key(term), refreshed.to_json())
        self.stats.rank_ceiling_refreshes += 1
        if term in self._manifests:
            self._manifests[term] = refreshed
        return refreshed

    def refresh_shard_providers(
        self, term: str, providers_by_shard: Dict[int, Tuple[str, ...]]
    ) -> None:
        """Rewrite the manifest's provider hints after a placement repair.

        Generations (term and per-shard) are untouched: the shard *content*
        did not change, only where it lives, so posting/manifest caches stay
        valid and the result cache's keys do not shift.
        """
        manifest = self._authoritative.get(term)
        if manifest is None:
            try:
                manifest = self._decode_manifest(term, self.dht.get(term_key(term)))
            except (KeyNotFoundError, TermNotFoundError):
                return
        shards = tuple(
            replace(info, providers=tuple(providers_by_shard.get(info.index, info.providers)))
            for info in manifest.shards
        )
        refreshed = TermManifest(
            term=term, generation=manifest.generation, shards=shards,
            rank_version=manifest.rank_version,
        )
        self._authoritative[term] = refreshed
        self.dht.put(term_key(term), refreshed.to_json())
        if term in self._manifests:
            self._manifests[term] = refreshed

    def fetch_statistics(self, requester: Optional[str] = None) -> CollectionStatistics:
        """Fetch the published collection statistics (empty stats if absent)."""
        try:
            cid = self.dht.get(STATS_KEY)
            payload = self.storage.get_text(cid, requester=requester)
        except Exception:
            return CollectionStatistics()
        return CollectionStatistics.from_dict(json.loads(payload))

    def has_term(self, term: str) -> bool:
        """Whether a manifest exists for ``term`` (no content fetch)."""
        return self.dht.contains(term_key(term))

    # -- serialization ----------------------------------------------------------------

    def _previous_manifest(self, term: str) -> Optional[TermManifest]:
        """The authoritative manifest published before this publish, if any."""
        try:
            value = self.dht.get(term_key(term))
        except KeyNotFoundError:
            return None
        try:
            return self._decode_manifest(term, value)
        except TermNotFoundError:
            return None

    def _decode_manifest(
        self, term: str, value: object, requester: Optional[str] = None
    ) -> TermManifest:
        """Decode a DHT value into a manifest.

        A plain CID string (the pre-manifest layout) is upgraded on the fly
        into a synthetic single-shard manifest by fetching the legacy shard.
        """
        if isinstance(value, str) and value.startswith("{"):
            return TermManifest.from_json(value)
        try:
            payload = self.storage.get_text(str(value), requester=requester)
        except Exception as exc:
            self.stats.fetch_misses += 1
            raise TermNotFoundError(f"shard for term {term!r} is unreachable") from exc
        postings, generation = self._decode_shard(payload)
        return TermManifest(
            term=term,
            generation=generation,
            shards=(
                ShardInfo(
                    index=0,
                    lo=postings.min_doc_id if len(postings) else 0,
                    hi=postings.max_doc_id if len(postings) else -1,
                    count=len(postings),
                    max_tf=quantize_max_tf(postings.max_term_frequency),
                    generation=generation,
                    cid=str(value),
                    fingerprint="",
                ),
            ),
        )

    def _split_for_republish(
        self, postings: PostingList, previous: Optional[TermManifest]
    ) -> List[PostingList]:
        """Range chunks for a (re)publish, keeping edits shard-local.

        A fresh publish chunks by count.  A *republish* splits along the
        previous manifest's doc-id boundaries instead, so a delete or
        insert in one range leaves every other range byte-identical (their
        fingerprints match and they carry generation + CID forward); a
        count-based re-chunk would shift every boundary after the edit and
        republish the whole tail.  A chunk that outgrows twice the shard
        size is re-split by count (boundaries after it shift — the usual
        append path); empty chunks are kept so shard numbering, and hence
        the fingerprints of later shards, stay stable.
        """
        if (
            self.shard_size <= 0
            or previous is None
            or len(previous.shards) < 2
            or len(postings) <= self.shard_size
        ):
            return postings.split_chunks(self.shard_size)
        boundaries = [shard.hi for shard in previous.shards[:-1]]
        chunks: List[PostingList] = []
        for chunk in postings.split_at(boundaries):
            if len(chunk) > 2 * self.shard_size:
                chunks.extend(chunk.split_chunks(self.shard_size))
            else:
                chunks.append(chunk)
        return chunks

    def _chunk_min_length(self, chunk: PostingList) -> int:
        """Quantized-down minimum document length in ``chunk`` (0 = unknown)."""
        if self.length_lookup is None or not len(chunk):
            return 0
        shortest = min(self.length_lookup(posting.doc_id) for posting in chunk)
        return quantize_min_length_down(max(0, shortest))

    def _encode_shard_body(
        self, term: str, postings: PostingList, index: int, min_len: int
    ) -> Dict[str, object]:
        # The body (everything except gen) is what the publish-path
        # fingerprint hashes, so an unchanged shard republished under a new
        # term generation still fingerprints identically — and a change to
        # any bound ingredient (postings, min_len) forces a republish.
        if self.compress:
            return {
                "term": term,
                "shard": index,
                "encoding": "delta-varint",
                "max_tf": postings.max_term_frequency,
                "min_len": min_len,
                "postings": postings.to_payload(),
            }
        return {
            "term": term,
            "shard": index,
            "encoding": "raw",
            "max_tf": postings.max_term_frequency,
            "min_len": min_len,
            "postings": [[p.doc_id, p.term_frequency] for p in postings],
        }

    def _decode_shard(self, payload: str) -> Tuple[PostingList, int]:
        body = json.loads(payload)
        generation = int(body.get("gen", 0))
        if body.get("encoding") == "delta-varint":
            return PostingList.from_payload(body["postings"]), generation
        result = PostingList()
        for doc_id, frequency in body.get("postings", []):
            result.add(int(doc_id), int(frequency))
        return result, generation
