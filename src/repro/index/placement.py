"""Provider-record-aware placement and replication of index shards.

Why placement exists
--------------------
Doc-id-range sharding (PR 3) spreads a head term's postings across shard
*keys*, but shards were published like any other content: the publishing
peer pinned every block and announced itself as a provider, so one peer
routinely ended up providing *every* shard of a head term — exactly the
hot-spot the decentralized design is meant to avoid.  :class:`PlacementPolicy`
closes that gap: at publish time it consults the current provider records and
steers each term's range shards onto a spread-maximizing replica set.

The policy enforces two properties:

* **replication** — every shard is pushed to ``replication_factor`` distinct
  online peers (fewer only when the overlay itself is smaller);
* **anti-affinity** — no peer provides more than
  ``ceil(shard_count / replication_factor)`` shards of any one term (the
  :func:`anti_affinity_bound`), so a term's serving load cannot re-concentrate
  on a single provider.  The bound is exceeded only when the online overlay is
  too small to honour it, never by preference.

Assignment is fully deterministic: candidates are ranked by (this term's
load, global placed-shard load, a SHA-256 tie-break keyed on term+peer so
low-sorting addresses are not systematically favoured).  Given the same
seeded DHT/storage state, two runs place identically.

Repair under churn
------------------
The policy keeps an in-memory registry of every placement it made.  When a
provider leaves (a :class:`~repro.net.churn.ChurnModel` leave listener, see
``QueenBeeEngine.create_churn_model``), every shard the peer provided is
checked against the **replication floor**; shards that dropped below it are
re-replicated onto fresh peers via
:meth:`~repro.storage.ipfs.DecentralizedStorage.replicate_to`, the provider
records are extended, and the term manifests' provider hints are refreshed in
place (same generation — content is untouched, so caches stay valid).  A
repair that finds no live source is recorded as a deficit and retried when a
peer rejoins.

Two deployment knobs debounce the repair loop.  A **grace period**
(``repair_grace``) delays the reaction to a departure: the repair scan is
scheduled ``grace`` ticks out, and a peer that rejoins inside the window
triggers zero repairs — short connectivity flaps, the common case in session
churn, cost nothing.  A **repair budget** (``repair_budget``) caps the
shards re-replicated per churn event; overflow is recorded as a deficit and
drained by later joins or an :meth:`~PlacementPolicy.audit`, bounding the
repair bandwidth any single departure can consume.

Replica routing
---------------
:func:`rank_replicas` is the read-side half of placement: given a shard's
manifest provider hints it returns the live hinted providers least-loaded
first.  The load signal is pluggable — the shared metadata plane reads each
peer's true served-block counter straight off the peer object, while the
gossiped plane substitutes the coarse serving-load hints peers piggyback on
anti-entropy rounds (see :mod:`repro.net.gossip`), which is what lets a
frontend with no reference to the peer objects spread a head term's load
the same way.  Hints are routing advice, never authority: a stale load
ranking can only mis-order the fallback chain, not lose content.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.storage.ipfs import DecentralizedStorage

# A manifest-refresh hook: (term, {shard index -> new provider tuple}).
# Wired by DistributedIndex so repairs keep the published hints accurate.
ManifestUpdater = Callable[[str, Dict[int, Tuple[str, ...]]], None]


def rank_replicas(
    providers: Sequence[str],
    is_online: Callable[[str], bool],
    load_of: Callable[[str], int],
) -> Optional[List[str]]:
    """Live hinted providers for one shard, least-loaded first, or ``None``.

    ``load_of`` supplies each provider's serving load — exact counters on
    the shared metadata plane, gossiped coarse hints on the gossip plane —
    with address order breaking ties deterministically.  Returns ``None``
    when no hinted provider is live (the caller falls back to the DHT
    provider record).
    """
    live = [address for address in providers if is_online(address)]
    if not live:
        return None
    live.sort(key=lambda address: (load_of(address), address))
    return live


def anti_affinity_bound(shard_count: int, replication_factor: int) -> int:
    """Max shards of one term a single peer may provide.

    With ``S`` shards each on ``R`` providers there are ``S*R`` provider
    slots; capping any one peer at ``ceil(S/R)`` keeps a term's serving load
    spread across at least ``R`` peers however small the overlay, and on a
    healthy overlay the least-loaded assignment lands far below the cap
    (typically one shard per provider).
    """
    if shard_count <= 0:
        return 1
    return max(1, math.ceil(shard_count / max(1, replication_factor)))


@dataclass(frozen=True)
class PlacedShard:
    """One registry entry: where a shard's content lives right now."""

    cid: str
    providers: Tuple[str, ...]


@dataclass
class PlacementStats:
    """Counters for the placement/repair experiments (E4 placement rows,
    E3 shard-repair-under-churn)."""

    terms_placed: int = 0
    shards_placed: int = 0
    cap_overflows: int = 0
    repairs_triggered: int = 0
    shards_repaired: int = 0
    repairs_failed: int = 0
    manifest_refreshes: int = 0
    # Departures whose grace window expired with the peer back online —
    # flaps the debounce absorbed at zero repair cost.
    repairs_debounced: int = 0
    # Shards a churn event's repair budget pushed to the deficit queue.
    budget_deferrals: int = 0

    def reset(self) -> None:
        self.terms_placed = 0
        self.shards_placed = 0
        self.cap_overflows = 0
        self.repairs_triggered = 0
        self.shards_repaired = 0
        self.repairs_failed = 0
        self.manifest_refreshes = 0
        self.repairs_debounced = 0
        self.budget_deferrals = 0


class PlacementPolicy:
    """Chooses, records, and repairs the replica set of every index shard.

    Parameters
    ----------
    storage:
        The decentralized storage layer; supplies the peer population,
        liveness, and the :meth:`~DecentralizedStorage.replicate_to` repair
        primitive.
    replication_factor:
        Distinct providers each shard is placed on (capped at the online
        overlay size).
    repair_floor:
        Live providers below which a shard is re-replicated; defaults to the
        replication factor (any departure triggers an immediate top-up).
    repair_grace:
        Ticks to wait after a departure before repairing the peer's shards;
        a rejoin inside the window cancels the repair entirely (flap
        debounce).  Needs ``simulator``; 0 (default) repairs immediately.
    repair_budget:
        Maximum repair attempts (shards found below the floor) per churn
        event — attempts spend budget even when their pushes fail, so the
        cap really bounds replication traffic; overflow is recorded as a
        deficit and drained by later joins or an :meth:`audit`.  ``None``
        (default) is unbounded.
    simulator:
        Event scheduler for the grace window (the engine wires its own).
    """

    def __init__(
        self,
        storage: DecentralizedStorage,
        replication_factor: int = 3,
        repair_floor: Optional[int] = None,
        repair_grace: float = 0.0,
        repair_budget: Optional[int] = None,
        simulator=None,
    ) -> None:
        if replication_factor < 1:
            raise ValueError(
                f"replication_factor must be at least 1, got {replication_factor!r}"
            )
        if repair_floor is not None and repair_floor < 1:
            raise ValueError(f"repair_floor must be at least 1, got {repair_floor!r}")
        if repair_grace < 0:
            raise ValueError(f"repair_grace must be non-negative, got {repair_grace!r}")
        if repair_budget is not None and repair_budget < 1:
            raise ValueError(f"repair_budget must be at least 1, got {repair_budget!r}")
        if repair_grace > 0 and simulator is None:
            raise ValueError("repair_grace needs a simulator to schedule the window")
        self.storage = storage
        self.replication_factor = replication_factor
        self.repair_floor = repair_floor if repair_floor is not None else replication_factor
        self.repair_grace = repair_grace
        self.repair_budget = repair_budget
        self.simulator = simulator
        self.stats = PlacementStats()
        # The DistributedIndex binds this so repairs refresh manifest hints.
        self.manifest_updater: Optional[ManifestUpdater] = None
        # term -> shard index -> PlacedShard; the policy's ground truth.
        self._placements: Dict[str, Dict[int, PlacedShard]] = {}
        # Global placed-shard slots per peer (secondary balance key).
        self._peer_shards: Dict[str, int] = {}
        # provider -> {(term, shard index)}: the reverse map that makes a
        # departure O(shards the peer provided), not O(whole registry).
        self._by_provider: Dict[str, Set[Tuple[str, int]]] = {}
        # Shards whose repair failed or stopped short of the floor; retried
        # on peer joins.
        self._deficits: Set[Tuple[str, int]] = set()

    # -- assignment --------------------------------------------------------------

    def assign(
        self,
        term: str,
        shard_count: int,
        existing: Dict[int, Tuple[str, ...]],
        needed: Sequence[int],
    ) -> Dict[int, Tuple[str, ...]]:
        """Replica sets for the shards in ``needed`` of a ``shard_count``-shard term.

        ``existing`` maps carried-forward shard indexes to their current
        providers; their load counts toward the anti-affinity cap so a
        republish that touches one shard cannot pile it onto a peer already
        serving the untouched ones.  Returns ``{}`` when no peer is online
        (the caller falls back to unsteered publication).
        """
        online = self._online_peers()
        if not online or not needed:
            return {}
        bound = anti_affinity_bound(shard_count, self.replication_factor)
        term_load: Dict[str, int] = {}
        # repro-lint: disable=RL004 -- commutative integer counting, order-free result
        for providers in existing.values():
            for provider in providers:
                term_load[provider] = term_load.get(provider, 0) + 1
        assignments: Dict[int, Tuple[str, ...]] = {}
        for index in sorted(needed):
            want = min(self.replication_factor, len(online))
            replicas: List[str] = []
            for _ in range(want):
                pool = [address for address in online if address not in replicas]
                under_cap = [a for a in pool if term_load.get(a, 0) < bound]
                if under_cap:
                    pool = under_cap
                else:
                    self.stats.cap_overflows += 1
                choice = min(
                    pool,
                    key=lambda a: (
                        term_load.get(a, 0),
                        self._peer_shards.get(a, 0),
                        self._tiebreak(term, a),
                    ),
                )
                replicas.append(choice)
                term_load[choice] = term_load.get(choice, 0) + 1
            assignments[index] = tuple(replicas)
        self.stats.terms_placed += 1
        self.stats.shards_placed += len(assignments)
        return assignments

    # -- registry ----------------------------------------------------------------

    def record(self, term: str, index: int, cid: str, providers: Tuple[str, ...]) -> None:
        """Register (or refresh) where one shard's content was placed."""
        shards = self._placements.setdefault(term, {})
        previous = shards.get(index)
        if previous is not None:
            self._release(term, index, previous.providers)
        for provider in providers:
            self._peer_shards[provider] = self._peer_shards.get(provider, 0) + 1
            self._by_provider.setdefault(provider, set()).add((term, index))
        shards[index] = PlacedShard(cid=cid, providers=tuple(providers))

    def forget(self, term: str, index: int) -> None:
        """Drop a shard the latest manifest no longer names."""
        shards = self._placements.get(term)
        if not shards:
            return
        placed = shards.pop(index, None)
        if placed is not None:
            self._release(term, index, placed.providers)
        self._deficits.discard((term, index))
        if not shards:
            self._placements.pop(term, None)

    def _release(self, term: str, index: int, providers: Tuple[str, ...]) -> None:
        """Drop one shard's provider slots from the load and reverse maps."""
        for provider in providers:
            count = self._peer_shards.get(provider, 0) - 1
            if count > 0:
                self._peer_shards[provider] = count
            else:
                self._peer_shards.pop(provider, None)
            entries = self._by_provider.get(provider)
            if entries is not None:
                entries.discard((term, index))
                if not entries:
                    self._by_provider.pop(provider, None)

    def placements_for(self, term: str) -> Dict[int, PlacedShard]:
        """The recorded placement of every shard of ``term`` (read-only copy)."""
        return dict(self._placements.get(term, {}))

    def term_provider_counts(self, term: str) -> Dict[str, int]:
        """How many shards of ``term`` each recorded provider serves."""
        counts: Dict[str, int] = {}
        # repro-lint: disable=RL004 -- commutative integer counting, order-free result
        for placed in self._placements.get(term, {}).values():
            for provider in placed.providers:
                counts[provider] = counts.get(provider, 0) + 1
        return counts

    def max_shards_per_provider(self, term: str) -> int:
        """The anti-affinity invariant's left-hand side for ``term``."""
        counts = self.term_provider_counts(term)
        return max(counts.values()) if counts else 0

    # -- churn integration / repair ----------------------------------------------

    def on_peer_down(self, address: str) -> int:
        """Churn leave hook: repair every shard ``address`` was providing.

        With a grace window configured the repair scan is *scheduled*
        ``repair_grace`` ticks out instead of running inline, and a rejoin
        inside the window cancels it — the hook then returns 0 (nothing
        repaired yet).  Returns the number of shards re-replicated.
        """
        if self.repair_grace > 0:
            self.simulator.schedule(
                self.repair_grace,
                lambda: self._graced_repair(address),
                label=f"placement-grace:{address}",
            )
            return 0
        return self._repair_provider(address)

    def _graced_repair(self, address: str) -> int:
        """The deferred half of a debounced departure."""
        if self._is_online(address):
            # The flap healed itself inside the grace window: zero repairs.
            self.stats.repairs_debounced += 1
            return 0
        return self._repair_provider(address)

    def _repair_provider(self, address: str) -> int:
        """Repair every shard ``address`` was providing (one churn event)."""
        return self._repair_pairs(
            sorted(self._by_provider.get(address, ())), budget=self.repair_budget
        )

    def on_peer_up(self, address: str) -> int:
        """Churn join hook: retry repairs that previously found no live source."""
        del address  # any join can unblock a deficit; the address itself is moot
        if not self._deficits:
            return 0
        return self._repair_pairs(sorted(self._deficits), budget=self.repair_budget)

    def audit(self) -> int:
        """Scan every placement and repair shards under the replication floor.

        Audits are unbudgeted: they are the explicit drain for deficits the
        per-event budget deferred.
        """
        pairs = [
            (term, index)
            for term in sorted(self._placements)
            for index in sorted(self._placements[term])
        ]
        return self._repair_pairs(pairs, budget=None)

    def _repair_pairs(
        self, pairs: Sequence[Tuple[str, int]], budget: Optional[int]
    ) -> int:
        """Repair the given shards, refreshing each touched manifest once.

        ``budget`` caps repair *attempts* for this event — every shard
        found below the floor spends budget whether or not its pushes
        succeed, so a lossy network cannot turn one departure into
        unbounded replication traffic.  Shards past the cap are queued as
        deficits (drained by joins/audits); healthy shards cost nothing.
        """
        attempted = 0
        repaired = 0
        updates_by_term: Dict[str, Dict[int, Tuple[str, ...]]] = {}
        for position, (term, index) in enumerate(pairs):
            if budget is not None and attempted >= budget:
                remainder = pairs[position:]
                fresh = sum(1 for pair in remainder if pair not in self._deficits)
                self._deficits.update(remainder)
                self.stats.budget_deferrals += fresh
                break
            triggered_before = self.stats.repairs_triggered
            refreshed = self._repair_shard(term, index)
            if self.stats.repairs_triggered > triggered_before:
                attempted += 1
            if refreshed is not None:
                updates_by_term.setdefault(term, {})[index] = refreshed
                repaired += 1
        for term, updates in sorted(updates_by_term.items()):
            if self.manifest_updater is not None:
                self.manifest_updater(term, updates)
                self.stats.manifest_refreshes += 1
        return repaired

    def _repair_shard(self, term: str, index: int) -> Optional[Tuple[str, ...]]:
        """Re-replicate one shard if its live providers dropped below the floor.

        Returns the new provider tuple when content moved, ``None`` when the
        shard was healthy or the repair failed (failure is recorded as a
        deficit and retried on the next join).
        """
        placed = self._placements.get(term, {}).get(index)
        if placed is None:
            return None
        live = [p for p in placed.providers if self._is_online(p)]
        online = self._online_peers()
        floor = min(self.repair_floor, len(online))
        if len(live) >= floor:
            self._deficits.discard((term, index))
            return None
        self.stats.repairs_triggered += 1
        needed = floor - len(live)
        term_load = self.term_provider_counts(term)
        bound = anti_affinity_bound(
            len(self._placements.get(term, {})), self.replication_factor
        )
        candidates = [a for a in online if a not in placed.providers]
        under_cap = [a for a in candidates if term_load.get(a, 0) < bound]
        pool = under_cap or candidates
        pool.sort(
            key=lambda a: (
                term_load.get(a, 0),
                self._peer_shards.get(a, 0),
                self._tiebreak(term, a),
            )
        )
        targets = pool[:needed]
        pushed = self.storage.replicate_to(placed.cid, targets) if targets else []
        if not pushed:
            self.stats.repairs_failed += 1
            self._deficits.add((term, index))
            return None
        # Dead providers drop out of the hint set (their pinned copy and DHT
        # provider record survive for when they return); live + new is the
        # routable set.
        providers = tuple(live + pushed)
        self.record(term, index, placed.cid, providers)
        self.stats.shards_repaired += 1
        if len(pushed) < needed:
            # Partial repair (not enough eligible targets, or pushes lost):
            # the shard is healthier but still below the floor, so it stays
            # a deficit and is retried on the next join.
            self._deficits.add((term, index))
        else:
            self._deficits.discard((term, index))
        return providers

    # -- internals ---------------------------------------------------------------

    def _online_peers(self) -> List[str]:
        # Choosing repair *targets* is publisher-side work, where oracle
        # membership stands in for the join/leave feed churn already
        # delivers; routing reads go through rank_replicas with an
        # injected liveness callable instead.
        network = self.storage.network
        # repro-lint: disable=RL007 -- repair-side membership scan, not a routing read
        return [a for a in self.storage.peer_addresses() if network.is_online(a)]

    def _is_online(self, address: str) -> bool:
        # The churn model itself drives on_peer_down/up from oracle events,
        # so the repair-floor check may consult the same source.
        # repro-lint: disable=RL007 -- repair-side liveness (sanctioned ablation site)
        return self.storage.network.is_online(address)

    @staticmethod
    def _tiebreak(term: str, address: str) -> int:
        # SHA-256, not hash(): the builtin is salted per process and would
        # break cross-run placement determinism.
        digest = hashlib.sha256(f"{term}|{address}".encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")
