"""Inverted indexing.

QueenBee's search results are composed "by intersecting the matched inverted
lists".  This package provides the text analysis chain, compressed posting
lists, a local inverted index (used by the worker bees while building shards
and by the centralized baseline), and the *distributed* index in which each
term's posting list lives in decentralized storage with a pointer published
in the DHT.
"""

from repro.index.analysis import Analyzer, tokenize
from repro.index.document import Document, DocumentStore
from repro.index.postings import Posting, PostingList
from repro.index.statistics import CollectionStatistics
from repro.index.inverted_index import LocalInvertedIndex
from repro.index.distributed import (
    DistributedIndex,
    ShardedPostings,
    ShardInfo,
    TermManifest,
    shard_key,
    term_key,
)
from repro.index.directory import TermDirectory, TermDirectoryRecord

__all__ = [
    "Analyzer",
    "tokenize",
    "Document",
    "DocumentStore",
    "Posting",
    "PostingList",
    "CollectionStatistics",
    "LocalInvertedIndex",
    "DistributedIndex",
    "ShardedPostings",
    "ShardInfo",
    "TermManifest",
    "shard_key",
    "term_key",
    "TermDirectory",
    "TermDirectoryRecord",
]
