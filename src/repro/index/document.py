"""Documents (DWeb pages) and an in-memory document store."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import IndexError_
from repro.storage.cid import compute_cid


@dataclass
class Document:
    """One DWeb page.

    ``doc_id`` is a small integer assigned by whoever manages the corpus
    (workload generator or document store); ``url`` is the page's DWeb name;
    ``links`` are outgoing URLs used to build the link graph for PageRank.
    """

    doc_id: int
    url: str
    title: str = ""
    text: str = ""
    owner: str = ""
    links: Tuple[str, ...] = field(default_factory=tuple)
    published_at: float = 0.0
    version: int = 1

    @property
    def cid(self) -> str:
        """Content identifier of the page body (title + text)."""
        return compute_cid(self.full_text)

    @property
    def full_text(self) -> str:
        """The text that gets indexed (title weighted by simple repetition)."""
        if not self.title:
            return self.text
        return f"{self.title}\n{self.text}"

    @property
    def length(self) -> int:
        """Whitespace token count of the indexed text (for BM25 normalization)."""
        return len(self.full_text.split())

    def updated(self, text: Optional[str] = None, title: Optional[str] = None,
                published_at: Optional[float] = None) -> "Document":
        """A new version of this document with updated content."""
        return Document(
            doc_id=self.doc_id,
            url=self.url,
            title=self.title if title is None else title,
            text=self.text if text is None else text,
            owner=self.owner,
            links=self.links,
            published_at=self.published_at if published_at is None else published_at,
            version=self.version + 1,
        )


class DocumentStore:
    """A mapping of doc_id -> :class:`Document` with URL lookup.

    The centralized baseline keeps its whole corpus here; QueenBee's frontend
    keeps only result snippets fetched from decentralized storage.
    """

    def __init__(self) -> None:
        self._by_id: Dict[int, Document] = {}
        self._by_url: Dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._by_id)

    def __iter__(self) -> Iterator[Document]:
        return iter(self._by_id.values())

    def __contains__(self, doc_id: int) -> bool:
        return doc_id in self._by_id

    def add(self, document: Document) -> None:
        """Insert or replace a document (URL collisions must share the doc_id)."""
        existing_id = self._by_url.get(document.url)
        if existing_id is not None and existing_id != document.doc_id:
            raise IndexError_(
                f"url {document.url!r} already registered as doc {existing_id}, "
                f"cannot register it again as doc {document.doc_id}"
            )
        self._by_id[document.doc_id] = document
        self._by_url[document.url] = document.doc_id

    def get(self, doc_id: int) -> Document:
        document = self._by_id.get(doc_id)
        if document is None:
            raise IndexError_(f"no document with id {doc_id}")
        return document

    def get_by_url(self, url: str) -> Document:
        doc_id = self._by_url.get(url)
        if doc_id is None:
            raise IndexError_(f"no document with url {url!r}")
        return self._by_id[doc_id]

    def maybe_get(self, doc_id: int) -> Optional[Document]:
        return self._by_id.get(doc_id)

    def maybe_get_by_url(self, url: str) -> Optional[Document]:
        doc_id = self._by_url.get(url)
        return self._by_id.get(doc_id) if doc_id is not None else None

    def remove(self, doc_id: int) -> bool:
        document = self._by_id.pop(doc_id, None)
        if document is None:
            return False
        self._by_url.pop(document.url, None)
        return True

    def doc_ids(self) -> List[int]:
        return sorted(self._by_id)

    def urls(self) -> List[str]:
        return sorted(self._by_url)
