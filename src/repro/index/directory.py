"""The versioned per-document term directory: ``doc:<doc_id>`` records in the DHT.

Updating or deleting a page requires knowing which terms its *previous*
version contained, so the stale postings can be removed from the distributed
index.  Keeping that term vector in worker-local memory is wrong in a system
where any volunteer can index any page: the worker that receives the update
may never have seen the previous version, and the dropped terms keep matching
removed content forever.

This module makes the per-document state a first-class published object
instead.  Every index operation writes a small pointer record under
``doc:<doc_id>`` in the DHT::

    {"doc_id": ..., "version": n, "cid": <term-vector CID>, "deleted": false}

``version`` is a monotonically increasing *directory* version (bumped on
every publish, update, and delete — independent of the creator-facing
document version), and ``cid`` content-addresses the full term-frequency
vector in decentralized storage.  Any worker handling an update fetches the
record, diffs term sets, emits ``remove_document`` for the dropped terms, and
publishes the successor record.  Deletes publish a tombstone (``deleted:
true``, no term vector) so the document's absence is itself authoritative,
versioned state.

The same version counter is what the index-epoch invalidation protocol hangs
off: validating published state against an authoritative registry rather than
local memory (the same shape as route-object validation in RPKI-style
conflict detection).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import KeyNotFoundError
from repro.dht.dht import DHTNetwork
from repro.storage.ipfs import DecentralizedStorage


def doc_terms_key(doc_id: int) -> str:
    """DHT key under which a document's current term-directory record lives."""
    return f"doc:{doc_id}"


@dataclass
class TermDirectoryRecord:
    """One version of one document's published index-side state."""

    doc_id: int
    version: int
    terms_cid: Optional[str] = None
    deleted: bool = False
    # The hydrated term-frequency vector.  Empty for tombstones and for
    # records whose term-vector content was unreachable (peer churn); callers
    # treating an unreachable vector as empty degrade to the seed behaviour
    # (stale postings linger) instead of failing the update.
    terms: Dict[str, int] = field(default_factory=dict)

    def to_pointer(self) -> Dict[str, object]:
        return {
            "doc_id": self.doc_id,
            "version": self.version,
            "cid": self.terms_cid,
            "deleted": self.deleted,
        }


@dataclass
class TermDirectoryStats:
    """Counters for the freshness/invalidation experiments."""

    records_published: int = 0
    tombstones_published: int = 0
    records_fetched: int = 0
    fetch_misses: int = 0
    unreachable_vectors: int = 0


class TermDirectory:
    """Publish/fetch the versioned per-document term vectors over the DWeb.

    The directory is deliberately thin: one DHT pointer per document plus one
    content-addressed term-vector blob per version.  Old versions stay in
    storage (content addressing makes them immutable); the pointer always
    names the latest.
    """

    def __init__(self, dht: DHTNetwork, storage: DecentralizedStorage) -> None:
        self.dht = dht
        self.storage = storage
        self.stats = TermDirectoryStats()

    # -- publishing (worker-bee side) ------------------------------------------------

    def publish(
        self,
        doc_id: int,
        terms: Dict[str, int],
        publisher: Optional[str] = None,
        prior_version: Optional[int] = None,
    ) -> TermDirectoryRecord:
        """Publish ``terms`` as the authoritative term vector for ``doc_id``.

        ``prior_version`` is the directory version the caller observed before
        computing its diff (0 for a brand-new document); passing it skips the
        extra DHT read.  When omitted, the current pointer is read so the
        successor version is still monotonic.
        """
        version = self._next_version(doc_id, prior_version)
        payload = json.dumps(
            {"doc_id": doc_id, "version": version, "terms": terms}, sort_keys=True
        )
        cid = self.storage.add_text(payload, publisher=publisher).cid
        record = TermDirectoryRecord(
            doc_id=doc_id, version=version, terms_cid=cid, terms=dict(terms)
        )
        self.dht.put(doc_terms_key(doc_id), record.to_pointer())
        self.stats.records_published += 1
        return record

    def delete(
        self,
        doc_id: int,
        publisher: Optional[str] = None,
        prior_version: Optional[int] = None,
    ) -> TermDirectoryRecord:
        """Publish a tombstone for ``doc_id`` (no term vector, version bumped)."""
        version = self._next_version(doc_id, prior_version)
        record = TermDirectoryRecord(doc_id=doc_id, version=version, deleted=True)
        self.dht.put(doc_terms_key(doc_id), record.to_pointer())
        self.stats.tombstones_published += 1
        return record

    # -- fetching (any worker / auditor) ---------------------------------------------

    def fetch(self, doc_id: int, requester: Optional[str] = None) -> Optional[TermDirectoryRecord]:
        """The latest record for ``doc_id`` with its term vector hydrated.

        Returns ``None`` when the document has never been indexed.  Tombstones
        are returned as-is (``deleted`` set, empty terms) so callers can
        distinguish "never existed" from "deleted".
        """
        pointer = self._read_pointer(doc_id)
        if pointer is None:
            self.stats.fetch_misses += 1
            return None
        record = TermDirectoryRecord(
            doc_id=int(pointer.get("doc_id", doc_id)),
            version=int(pointer.get("version", 0)),
            terms_cid=pointer.get("cid"),
            deleted=bool(pointer.get("deleted", False)),
        )
        if record.deleted or record.terms_cid is None:
            self.stats.records_fetched += 1
            return record
        try:
            payload = self.storage.get_text(record.terms_cid, requester=requester)
        except Exception:
            self.stats.unreachable_vectors += 1
            return record
        body = json.loads(payload)
        record.terms = {str(term): int(tf) for term, tf in body.get("terms", {}).items()}
        self.stats.records_fetched += 1
        return record

    def version_of(self, doc_id: int) -> int:
        """The current directory version of ``doc_id`` (0 when never indexed)."""
        pointer = self._read_pointer(doc_id)
        return int(pointer.get("version", 0)) if pointer else 0

    # -- internals --------------------------------------------------------------------

    def _next_version(self, doc_id: int, prior_version: Optional[int]) -> int:
        if prior_version is None:
            prior_version = self.version_of(doc_id)
        return prior_version + 1

    def _read_pointer(self, doc_id: int) -> Optional[Dict[str, object]]:
        try:
            pointer = self.dht.get(doc_terms_key(doc_id))
        except KeyNotFoundError:
            return None
        return pointer if isinstance(pointer, dict) else None
