"""Text analysis: tokenization, normalization, stopword removal, light stemming."""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Set

_TOKEN_RE = re.compile(r"[a-z0-9]+")

# A compact English stopword list — enough to keep the most common glue words
# out of the index without pulling in an external dependency.
DEFAULT_STOPWORDS: Set[str] = {
    "a", "an", "and", "are", "as", "at", "be", "but", "by", "for", "from",
    "has", "have", "he", "her", "his", "if", "in", "into", "is", "it", "its",
    "no", "not", "of", "on", "or", "our", "she", "so", "such", "that", "the",
    "their", "then", "there", "these", "they", "this", "to", "was", "we",
    "were", "which", "will", "with", "you", "your",
}

_SUFFIXES = ("ingly", "edly", "ings", "ing", "ied", "ies", "ed", "es", "s", "ly")


def tokenize(text: str) -> List[str]:
    """Lowercase ``text`` and split it into alphanumeric tokens."""
    return _TOKEN_RE.findall(text.lower())


def light_stem(token: str) -> str:
    """Strip a small set of English suffixes (a light, dependency-free stemmer).

    The stem is only applied when it leaves at least three characters, which
    avoids collapsing short tokens ("is", "as") into nonsense.
    """
    for suffix in _SUFFIXES:
        if token.endswith(suffix) and len(token) - len(suffix) >= 3:
            return token[: -len(suffix)]
    return token


class Analyzer:
    """The analysis chain applied to both documents and queries.

    Using one analyzer object for both sides guarantees that query terms and
    index terms agree, which the distributed index depends on (terms are DHT
    keys).
    """

    def __init__(
        self,
        stopwords: Iterable[str] = DEFAULT_STOPWORDS,
        stem: bool = True,
        min_token_length: int = 2,
    ) -> None:
        if min_token_length < 1:
            raise ValueError(f"min_token_length must be at least 1, got {min_token_length!r}")
        self.stopwords = set(stopwords)
        self.stem = stem
        self.min_token_length = min_token_length

    def analyze(self, text: str) -> List[str]:
        """Full analysis: tokenize, drop stopwords/short tokens, stem."""
        terms = []
        for token in tokenize(text):
            if len(token) < self.min_token_length:
                continue
            if token in self.stopwords:
                continue
            terms.append(light_stem(token) if self.stem else token)
        return terms

    def term_frequencies(self, text: str) -> Dict[str, int]:
        """Term -> occurrence count for one document."""
        frequencies: Dict[str, int] = {}
        for term in self.analyze(text):
            frequencies[term] = frequencies.get(term, 0) + 1
        return frequencies

    def unique_terms(self, text: str) -> List[str]:
        """Sorted unique analyzed terms (used when a query is a bag of words)."""
        return sorted(set(self.analyze(text)))
