"""Posting lists: the per-term document lists the frontend intersects."""

from __future__ import annotations

import base64
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import IndexError_
from repro.index.compression import (
    apply_posting_delta,
    compress_postings,
    decompress_postings,
    encode_posting_delta,
)


@dataclass(frozen=True)
class Posting:
    """One document's entry in a term's posting list."""

    doc_id: int
    term_frequency: int = 1

    def __post_init__(self) -> None:
        if self.term_frequency < 1:
            raise IndexError_(f"term_frequency must be positive, got {self.term_frequency!r}")


class PostingList:
    """A sorted-by-doc_id list of postings with merge and intersection support.

    Intersection uses galloping (exponential) search from the shorter list
    into the longer one, the standard technique for skewed list sizes; the
    query planner orders terms rarest-first to exploit it.
    """

    def __init__(self, postings: Optional[Sequence[Posting]] = None) -> None:
        self._postings: List[Posting] = []
        self._max_tf: Optional[int] = None
        self._arrays: Optional[Tuple[List[int], List[int]]] = None
        if postings:
            for posting in sorted(postings, key=lambda p: p.doc_id):
                self.add(posting.doc_id, posting.term_frequency)

    def __len__(self) -> int:
        return len(self._postings)

    def __iter__(self) -> Iterator[Posting]:
        return iter(self._postings)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PostingList):
            return NotImplemented
        return self._postings == other._postings

    @property
    def doc_ids(self) -> List[int]:
        return [posting.doc_id for posting in self._postings]

    def copy(self) -> "PostingList":
        """A detached copy safe to mutate (postings themselves are frozen).

        Callers that fetched a list from a shared place (the posting cache,
        another index) and want to modify it must copy first — the fetched
        object may be aliased by other readers.
        """
        result = PostingList()
        result._postings = list(self._postings)
        return result

    @property
    def min_doc_id(self) -> Optional[int]:
        """Smallest doc_id in the list (None when empty)."""
        return self._postings[0].doc_id if self._postings else None

    @property
    def max_doc_id(self) -> Optional[int]:
        """Largest doc_id in the list (None when empty)."""
        return self._postings[-1].doc_id if self._postings else None

    def split_chunks(self, chunk_size: int) -> List["PostingList"]:
        """Split into consecutive doc-id-range chunks of at most ``chunk_size``.

        The chunks partition the list: concatenating them in order reproduces
        it exactly (see :meth:`concatenate`), which is what makes the sharded
        index layout bit-identical to the unsharded one.  ``chunk_size <= 0``
        returns the whole list as a single chunk.
        """
        if chunk_size <= 0 or len(self._postings) <= chunk_size:
            return [self]
        chunks: List[PostingList] = []
        for start in range(0, len(self._postings), chunk_size):
            chunk = PostingList()
            chunk._postings = self._postings[start : start + chunk_size]
            chunks.append(chunk)
        return chunks

    def split_at(self, boundaries: Sequence[int]) -> List["PostingList"]:
        """Split at fixed doc-id ``boundaries`` (ascending, inclusive upper).

        Chunk ``i`` holds postings with ``doc_id <= boundaries[i]`` (and
        above the previous boundary); a final chunk takes the remainder.
        Chunks may be empty.  Used to re-publish an updated list along its
        previous shard boundaries so an edit in one doc-id range leaves the
        other ranges byte-identical.
        """
        chunks: List[PostingList] = []
        start = 0
        for boundary in boundaries:
            end = start
            while end < len(self._postings) and self._postings[end].doc_id <= boundary:
                end += 1
            chunk = PostingList()
            chunk._postings = self._postings[start:end]
            chunks.append(chunk)
            start = end
        tail = PostingList()
        tail._postings = self._postings[start:]
        chunks.append(tail)
        return chunks

    @classmethod
    def concatenate(cls, chunks: Sequence["PostingList"]) -> "PostingList":
        """Rebuild one list from disjoint, doc-id-ordered range chunks.

        The inverse of :meth:`split_chunks`.  Chunk ranges must be disjoint
        and ascending (the shard manifest guarantees this); the result is the
        exact postings sequence, no re-sorting or conflict resolution.
        """
        if len(chunks) == 1:
            return chunks[0]
        result = cls()
        for chunk in chunks:
            result._postings.extend(chunk._postings)
        return result

    def arrays(self) -> Tuple[List[int], List[int]]:
        """Cached parallel ``(doc_ids, term_frequencies)`` arrays.

        DAAT cursors and galloping intersection consume these on every query,
        so they are materialised once per list version and invalidated on
        mutation.  Treat the returned lists as read-only.
        """
        if self._arrays is None:
            self._arrays = (
                [posting.doc_id for posting in self._postings],
                [posting.term_frequency for posting in self._postings],
            )
        return self._arrays

    @property
    def max_term_frequency(self) -> int:
        """The largest term frequency in the list (0 when empty).

        This is the term's *max impact* ingredient: together with the
        collection statistics it upper-bounds the BM25 contribution any
        document can receive from this term, which is what MaxScore pruning
        needs.  Cached and invalidated on mutation.
        """
        if self._max_tf is None:
            self._max_tf = max(
                (posting.term_frequency for posting in self._postings), default=0
            )
        return self._max_tf

    def add(self, doc_id: int, term_frequency: int = 1) -> None:
        """Insert or update a posting, keeping the list sorted by doc_id."""
        self._max_tf = None
        self._arrays = None
        position = self._find(doc_id)
        if position is not None:
            self._postings[position] = Posting(doc_id, term_frequency)
            return
        new_posting = Posting(doc_id, term_frequency)
        # Most inserts are appends (doc_ids grow monotonically during builds).
        if not self._postings or doc_id > self._postings[-1].doc_id:
            self._postings.append(new_posting)
            return
        low, high = 0, len(self._postings)
        while low < high:
            mid = (low + high) // 2
            if self._postings[mid].doc_id < doc_id:
                low = mid + 1
            else:
                high = mid
        self._postings.insert(low, new_posting)

    def remove(self, doc_id: int) -> bool:
        """Drop a document from the list (page deletions / updates)."""
        position = self._find(doc_id)
        if position is None:
            return False
        self._postings.pop(position)
        self._max_tf = None
        self._arrays = None
        return True

    def get(self, doc_id: int) -> Optional[Posting]:
        position = self._find(doc_id)
        return self._postings[position] if position is not None else None

    def frequencies(self) -> Dict[int, int]:
        """doc_id -> term frequency mapping (scorers use this)."""
        return {posting.doc_id: posting.term_frequency for posting in self._postings}

    # -- set operations ----------------------------------------------------------

    def intersect(self, other: "PostingList") -> "PostingList":
        """Documents present in both lists (AND semantics)."""
        short, long_ = (self, other) if len(self) <= len(other) else (other, self)
        long_ids = long_.arrays()[0]
        result = PostingList()
        cursor = 0
        for posting in short:
            cursor = _gallop_to(long_ids, posting.doc_id, cursor)
            if cursor < len(long_ids) and long_ids[cursor] == posting.doc_id:
                own = self.get(posting.doc_id)
                result.add(posting.doc_id, own.term_frequency if own else posting.term_frequency)
        return result

    def union(self, other: "PostingList") -> "PostingList":
        """Documents present in either list (OR semantics)."""
        merged = dict(other.frequencies())
        merged.update(self.frequencies())
        result = PostingList()
        for doc_id in sorted(merged):
            result.add(doc_id, merged[doc_id])
        return result

    def merge(self, other: "PostingList") -> "PostingList":
        """Union where the *other* list's frequencies win on conflict.

        Used when a worker bee folds a freshly-built partial shard into the
        published one: the new data is authoritative.
        """
        merged = dict(self.frequencies())
        merged.update(other.frequencies())
        result = PostingList()
        for doc_id in sorted(merged):
            result.add(doc_id, merged[doc_id])
        return result

    # -- serialization ------------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Compressed binary encoding (delta + varint)."""
        return compress_postings(
            [p.doc_id for p in self._postings],
            [p.term_frequency for p in self._postings],
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "PostingList":
        doc_ids, frequencies = decompress_postings(data)
        result = cls()
        if all(a < b for a, b in zip(doc_ids, doc_ids[1:])):
            # The codec emits strictly increasing doc ids, so the decoded
            # list is already in final order: build it directly instead of
            # running a per-posting sorted insert.  ``Posting`` still
            # validates each term frequency.
            result._postings = [
                Posting(doc_id, frequency)
                for doc_id, frequency in zip(doc_ids, frequencies)
            ]
            return result
        for doc_id, frequency in zip(doc_ids, frequencies):
            result.add(doc_id, frequency)
        return result

    def to_payload(self) -> str:
        """Text-safe encoding for embedding in JSON / DHT values."""
        return base64.b64encode(self.to_bytes()).decode("ascii")

    @classmethod
    def from_payload(cls, payload: str) -> "PostingList":
        return cls.from_bytes(base64.b64decode(payload))

    def uncompressed_size(self) -> int:
        """Bytes needed without compression (8 bytes per doc_id + 4 per frequency)."""
        return len(self._postings) * 12

    # -- patch channel -----------------------------------------------------------

    def delta_to(self, target: "PostingList") -> bytes:
        """The patch that rewrites this list into ``target``.

        The patch channel ships this instead of the full shard when a reader
        already caches this list; :meth:`apply_delta` inverts it.  An empty
        diff encodes to a few bytes (two zero-count varints), so no-op
        rounds are nearly free.
        """
        base_ids, base_tfs = self.arrays()
        new_ids, new_tfs = target.arrays()
        return encode_posting_delta(base_ids, base_tfs, new_ids, new_tfs)

    def apply_delta(self, data: bytes) -> "PostingList":
        """Patch this list with a :meth:`delta_to` payload (returns a new list)."""
        base_ids, base_tfs = self.arrays()
        doc_ids, frequencies = apply_posting_delta(base_ids, base_tfs, data)
        result = PostingList()
        result._postings = [
            Posting(doc_id, frequency)
            for doc_id, frequency in zip(doc_ids, frequencies)
        ]
        return result

    # -- internals -------------------------------------------------------------------

    def _find(self, doc_id: int) -> Optional[int]:
        low, high = 0, len(self._postings) - 1
        while low <= high:
            mid = (low + high) // 2
            current = self._postings[mid].doc_id
            if current == doc_id:
                return mid
            if current < doc_id:
                low = mid + 1
            else:
                high = mid - 1
        return None


def _gallop_to(sorted_ids: List[int], target: int, start: int) -> int:
    """Index of the first element >= ``target`` at or after ``start`` (galloping)."""
    if start >= len(sorted_ids) or sorted_ids[start] >= target:
        return start
    step = 1
    low = start
    high = start + step
    while high < len(sorted_ids) and sorted_ids[high] < target:
        low = high
        step *= 2
        high = start + step
    high = min(high, len(sorted_ids))
    while low < high:
        mid = (low + high) // 2
        if sorted_ids[mid] < target:
            low = mid + 1
        else:
            high = mid
    return low


def intersect_many(lists: Sequence[PostingList]) -> PostingList:
    """Intersect several posting lists, shortest first (the planner's job,
    but done defensively here as well)."""
    if not lists:
        return PostingList()
    ordered = sorted(lists, key=len)
    result = ordered[0]
    for other in ordered[1:]:
        if not len(result):
            break
        result = result.intersect(other)
    return result
