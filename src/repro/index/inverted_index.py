"""A local (single-process) inverted index.

Worker bees build per-term shards with this structure before publishing them
to decentralized storage; the centralized baseline uses it directly as its
whole index.

The per-document term map kept here (``_doc_terms``) is the *local* analogue
of the distributed system's versioned term directory (``doc:<doc_id>``
records, :mod:`repro.index.directory`): both exist so that removing or
updating a document can find every term its previous version touched.
Locally a dict suffices; in the distributed index the same state must be
published to the DHT so *any* worker can perform the diff.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import TermNotFoundError
from repro.index.analysis import Analyzer
from repro.index.document import Document
from repro.index.postings import PostingList
from repro.index.statistics import CollectionStatistics


class LocalInvertedIndex:
    """term -> :class:`PostingList`, plus collection statistics.

    Updates are supported: re-adding a document with the same ``doc_id``
    replaces its previous postings (needed because the paper's publish
    operation covers both "create" and "update").
    """

    def __init__(self, analyzer: Optional[Analyzer] = None) -> None:
        self.analyzer = analyzer or Analyzer()
        self._postings: Dict[str, PostingList] = {}
        self._doc_terms: Dict[int, Dict[str, int]] = {}
        self.statistics = CollectionStatistics()

    def __len__(self) -> int:
        return len(self._postings)

    def __contains__(self, term: str) -> bool:
        return term in self._postings

    @property
    def document_count(self) -> int:
        return self.statistics.document_count

    def terms(self) -> List[str]:
        return sorted(self._postings)

    # -- building ------------------------------------------------------------------

    def add_document(self, document: Document) -> Dict[str, int]:
        """Index (or re-index) ``document``.  Returns its term frequencies."""
        if document.doc_id in self._doc_terms:
            self.remove_document(document.doc_id)
        frequencies = self.analyzer.term_frequencies(document.full_text)
        for term, frequency in frequencies.items():
            self._postings.setdefault(term, PostingList()).add(document.doc_id, frequency)
        self._doc_terms[document.doc_id] = frequencies
        self.statistics.add_document(document.doc_id, document.length, frequencies)
        return frequencies

    def remove_document(self, doc_id: int) -> bool:
        """Remove every posting for ``doc_id``."""
        frequencies = self._doc_terms.pop(doc_id, None)
        if frequencies is None:
            return False
        for term in frequencies:
            posting_list = self._postings.get(term)
            if posting_list is None:
                continue
            posting_list.remove(doc_id)
            if not len(posting_list):
                del self._postings[term]
        self.statistics.remove_document(doc_id, frequencies)
        return True

    # -- reading --------------------------------------------------------------------

    def postings(self, term: str) -> PostingList:
        """The posting list of ``term``.  Raises :class:`TermNotFoundError`."""
        posting_list = self._postings.get(term)
        if posting_list is None:
            raise TermNotFoundError(f"term {term!r} is not in the index")
        return posting_list

    def maybe_postings(self, term: str) -> Optional[PostingList]:
        return self._postings.get(term)

    def document_frequency(self, term: str) -> int:
        posting_list = self._postings.get(term)
        return len(posting_list) if posting_list is not None else 0

    def max_term_frequency(self, term: str) -> int:
        """The term's max impact ingredient (0 for unknown terms).

        Published alongside the shard so query frontends can bound the
        term's best possible score without scanning the whole list.
        """
        posting_list = self._postings.get(term)
        return posting_list.max_term_frequency if posting_list is not None else 0

    def heaviest_terms(self, count: int) -> List[str]:
        """The ``count`` terms with the longest posting lists (ties by name).

        These are the *head terms* — the lists the doc-id-range sharding of
        the distributed index exists to split; benchmarks use this to build
        head-term workloads and to pick shard sizes relative to the heaviest
        list.
        """
        ranked = sorted(self._postings.items(), key=lambda item: (-len(item[1]), item[0]))
        return [term for term, _ in ranked[:count]]

    def doc_ids(self) -> List[int]:
        return sorted(self._doc_terms)

    def term_frequencies_of(self, doc_id: int) -> Dict[str, int]:
        """The indexed term frequencies of one document (empty if unknown)."""
        return dict(self._doc_terms.get(doc_id, {}))

    def index_size_bytes(self, compressed: bool = True) -> int:
        """Total size of every posting list (the E4 storage column)."""
        if compressed:
            return sum(len(pl.to_bytes()) for pl in self._postings.values())
        return sum(pl.uncompressed_size() for pl in self._postings.values())
