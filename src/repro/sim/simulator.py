"""The discrete-event simulator that drives every QueenBee experiment."""

from __future__ import annotations

import random
from typing import Any, Callable, Optional

from repro.errors import SimulationError
from repro.sim import monitor as state_monitor
from repro.sim.clock import SimClock
from repro.sim.events import Event, EventQueue


class Simulator:
    """Owns the clock, the event queue, and the seeded random generator.

    Components that need time or randomness take a :class:`Simulator` (or the
    objects it owns) as a constructor argument; nothing in the library reads
    the wall clock or the global ``random`` module, which makes experiments
    reproducible from a single seed.
    """

    def __init__(self, seed: int = 0, start_time: float = 0.0) -> None:
        self.clock = SimClock(start_time)
        self.events = EventQueue()
        self.rng = random.Random(seed)
        self.seed = seed
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.clock.now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (useful for progress assertions)."""
        return self._events_processed

    def schedule(self, delay: float, callback: Callable[[], Any], label: str = "") -> Event:
        """Schedule ``callback`` to run ``delay`` ticks from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule an event {delay!r} ticks in the past")
        return self.events.push(self.clock.now + delay, callback, label=label)

    def schedule_every(
        self,
        interval: float,
        callback: Callable[[], Any],
        label: str = "",
        fixed_rate: bool = False,
    ) -> Callable[[], None]:
        """Schedule ``callback`` every ``interval`` ticks until cancelled.

        The first firing is one interval from now.  By default each firing
        reschedules the next one interval after the callback *completes*
        (fixed **delay**), so a callback that advances the clock — or
        unrelated work overrunning the event's scheduled time — pushes
        later firings out.  Under load this drifts: the achieved period is
        ``interval + callback duration + overrun``, and a heavy callback
        can starve the schedule to a fraction of its nominal rate.

        With ``fixed_rate=True`` the next firing is anchored to the
        *scheduled* time instead: after a firing, the schedule advances to
        the first grid point ``scheduled + n * interval`` strictly after
        the current time.  A callback cheaper than the interval therefore
        holds the nominal period exactly (late firings shift, they don't
        shrink the long-run rate), and a long stall is absorbed by
        *skipping* the missed grid points — one late firing, never a
        compressed same-instant burst.  Anti-entropy uses this: a
        churn-driven repair storm must not starve gossip rounds (the E3c
        in-window round count).

        Returns a zero-argument cancel function; cancelling is final.
        """
        if interval <= 0:
            raise SimulationError(f"recurring interval must be positive, got {interval!r}")
        cancelled = False
        next_time = self.clock.now + interval

        def fire() -> None:
            nonlocal next_time
            if cancelled:
                return
            callback()
            if cancelled:
                return
            if fixed_rate:
                next_time += interval
                while next_time <= self.clock.now:
                    next_time += interval
                self.schedule_at(next_time, fire, label=label)
            else:
                self.schedule(interval, fire, label=label)

        def cancel() -> None:
            nonlocal cancelled
            cancelled = True

        self.schedule_at(next_time, fire, label=label)
        return cancel

    def schedule_at(self, timestamp: float, callback: Callable[[], Any], label: str = "") -> Event:
        """Schedule ``callback`` to run at absolute time ``timestamp``."""
        if timestamp < self.clock.now:
            raise SimulationError(
                f"cannot schedule an event at {timestamp!r}, which is before now={self.clock.now!r}"
            )
        return self.events.push(timestamp, callback, label=label)

    def step(self) -> bool:
        """Run the next pending event.  Returns ``False`` when the queue is empty.

        An event whose timestamp has already passed runs *late* at the
        current time instead of rewinding the clock: callbacks are allowed
        to do real work (the churn-triggered shard repair issues RPCs), and
        that work can legitimately overrun the next event's scheduled time.
        """
        event = self.events.pop()
        if event is None:
            return False
        if event.time > self.clock.now:
            self.clock.advance_to(event.time)
        event.callback()
        self._events_processed += 1
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run pending events until the queue drains, ``until`` is reached, or
        ``max_events`` have executed.  Returns the number of events executed."""
        executed = 0
        while True:
            if max_events is not None and executed >= max_events:
                break
            next_time = self.events.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                if self.clock.now < until:
                    self.clock.advance_to(until)
                break
            self.step()
            executed += 1
        if until is not None and self.clock.now < until:
            self.clock.advance_to(until)
        return executed

    def advance(self, delta: float) -> None:
        """Advance simulated time by ``delta`` ticks, executing any events due."""
        self.run(until=self.clock.now + delta)

    def parallel_region(self, thunks) -> list:
        """Run logically-parallel branches, charging only the slowest one.

        Each thunk runs with the clock reset to the region's start time; after
        all branches have run, the clock lands on ``start + max(durations)``.
        This mirrors :meth:`repro.net.network.SimulatedNetwork.rpc_parallel`
        but for arbitrary multi-RPC operations — a worker bee updating all of
        a page's term shards concurrently, or a frontend prefetching every
        manifest and range shard of a query batch in one overlapped region.
        Regions nest: a branch may open its own inner region (the inner
        region's cost collapses to its slowest branch, which then counts
        toward the outer branch's duration).

        If a branch raises, the exception propagates with the clock left at
        the failed branch's end — time stays monotone, but the remaining
        branches do not run; branches that can fail should catch their own
        errors and return a sentinel instead (the frontend's prefetch does).

        The branches must not schedule future events that depend on the
        intermediate clock positions; QueenBee's index/rank pipelines don't.

        When a :class:`repro.sim.monitor.SharedStateMonitor` is active, each
        branch runs as a tracked task and cross-branch shared-state conflicts
        are checked as the region closes — the sequential execution here is
        only *sound* if no branch's result depends on a sibling having run.
        """
        start = self.clock.now
        slowest = 0.0
        results = []
        watcher = state_monitor.active()
        if watcher is not None:
            watcher.begin_region()
        try:
            for index, thunk in enumerate(thunks):
                self.clock.rewind_to(start)
                if watcher is not None:
                    watcher.begin_task(index)
                try:
                    results.append(thunk())
                finally:
                    if watcher is not None:
                        watcher.end_task()
                slowest = max(slowest, self.clock.now - start)
        finally:
            if watcher is not None:
                watcher.end_region()
        self.clock.rewind_to(start)
        self.clock.advance(slowest)
        return results

    def fork_rng(self, label: str) -> random.Random:
        """Derive an independent but reproducible RNG stream for a component.

        The derivation uses SHA-256 rather than the builtin ``hash`` because
        the latter is salted per process, which would silently break
        cross-run reproducibility.
        """
        import hashlib

        digest = hashlib.sha256(f"{self.seed}:{label}".encode("utf-8")).digest()
        return random.Random(int.from_bytes(digest[:8], "big"))

    def __repr__(self) -> str:
        return f"Simulator(seed={self.seed}, now={self.clock.now}, pending={len(self.events)})"
