"""Event queue for the discrete-event simulator."""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.errors import SimulationError


@dataclass(order=True)
class Event:
    """A callback scheduled to run at a simulated timestamp.

    Events compare by ``(time, sequence)`` so that events scheduled for the
    same tick run in the order they were scheduled, which keeps simulations
    deterministic.
    """

    time: float
    sequence: int
    callback: Callable[[], Any] = field(compare=False)
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the simulator skips it when it is popped."""
        self.cancelled = True


class EventQueue:
    """A priority queue of :class:`Event` objects ordered by time."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def push(self, time: float, callback: Callable[[], Any], label: str = "") -> Event:
        """Schedule ``callback`` to run at ``time`` and return the event handle."""
        if time < 0:
            raise SimulationError(f"cannot schedule event at negative time {time!r}")
        event = Event(time=time, sequence=next(self._counter), callback=callback, label=label)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest non-cancelled event, or ``None`` if empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> Optional[float]:
        """Return the timestamp of the earliest pending event without removing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()
