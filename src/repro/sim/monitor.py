"""The parallel-region race detector: SharedStateMonitor.

:meth:`repro.sim.simulator.Simulator.parallel_region` *declares* that its
branches are logically concurrent — the clock charges only the slowest one.
That declaration is a proof obligation the simulator cannot discharge by
itself: the branches actually run sequentially, so a branch that mutates
shared state (a cache entry, a gossip store, a metrics counter) and a
sibling that reads it get an ordering a real concurrent execution would
not guarantee.  Such a pair silently breaks both the latency accounting
*and* the reproducibility story (the result now depends on branch order).

This module is the runtime half of ``repro-lint``: a
:class:`SharedStateMonitor` activated around a workload records every
logical access to the instrumented shared surfaces —
:class:`~repro.index.cache.PostingCache`,
:class:`~repro.search.result_cache.ResultCache`,
:class:`~repro.net.gossip.GossipNode`, and
:class:`~repro.metrics.collector.MetricsCollector` — attributing each to
the parallel-region task it happened in, and flags cross-task conflicts
when a region closes.

Access kinds and the conflict matrix
------------------------------------
``READ``
    Observes a key's value (the observed value is recorded, including
    "absent").
``WRITE``
    Replaces a key's value (last-writer-wins).
``ACCUM``
    A commutative update — a counter increment, a sample append.  Any
    interleaving yields the same final state, so ACCUM/ACCUM pairs never
    conflict.
``MERGE``
    A version-guarded monotonic merge (the gossip store's ``put``): the
    higher version wins regardless of order, so two merges commute unless
    they carry the *same* version with *different* values.

Two tasks conflict on a key when their access kinds are order-sensitive:

* WRITE/WRITE — unless every written value compares equal (an idempotent
  double-fill, e.g. two branches caching the same deterministic fetch);
  these are demoted to ``benign`` and counted, not flagged.
* READ/WRITE — unless the write is a *no-op*: the written value equals the
  value it replaced, so no interleaving could have shown the reader
  anything different.  (Comparing against the reader's *observed* value
  would be unsound — in this sequential execution a later task's read
  observes an earlier sibling's write, which is exactly the order
  dependency being hunted.)
* ACCUM vs READ or WRITE — a read of a counter mid-increment, or an
  increment racing a reset, is order-sensitive.
* MERGE/MERGE — only at equal version with unequal values.
* MERGE/READ — only when the merged version is *newer* than the version
  the reader observed (the merge would have changed the read).
* MERGE vs WRITE/ACCUM — always.

Accesses outside any parallel region are serial by construction and are
ignored.  Regions nest: an inner region's conflicts are checked among its
own tasks, then its whole footprint collapses into the enclosing task
(matching how :meth:`parallel_region` collapses the inner clock cost).

Instrumentation is pay-for-play: the shared surfaces call the module-level
``record_*`` hooks, which are a single ``is None`` test when no monitor is
active.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

READ = "read"
WRITE = "write"
ACCUM = "accum"
MERGE = "merge"

#: Sentinel: a READ observed "no entry", or a WRITE replaced "no entry".
#: Instrumented surfaces pass it as ``replaced=`` when filling a fresh key.
ABSENT = object()
_ABSENT = ABSENT

_active: Optional["SharedStateMonitor"] = None


def active() -> Optional["SharedStateMonitor"]:
    """The currently installed monitor, if any."""
    return _active


def activate(monitor: "SharedStateMonitor") -> None:
    global _active
    if _active is not None:
        raise RuntimeError("a SharedStateMonitor is already active")
    _active = monitor


def deactivate(monitor: "SharedStateMonitor") -> None:
    global _active
    if _active is monitor:
        _active = None


def record_read(surface: str, obj: object, key: object, observed: object = _ABSENT) -> None:
    if _active is not None:
        _active.record(surface, obj, key, READ, observed)


def record_write(
    surface: str,
    obj: object,
    key: object,
    value: object = _ABSENT,
    replaced: object = _ABSENT,
) -> None:
    """Record a key overwrite.  ``replaced`` is the value the key held
    before the write (``ABSENT`` when it held none): a write whose value
    equals what it replaced is a no-op and never conflicts."""
    if _active is not None:
        _active.record(surface, obj, key, WRITE, (value, replaced))


def record_accum(surface: str, obj: object, key: object) -> None:
    if _active is not None:
        _active.record(surface, obj, key, ACCUM, _ABSENT)


def record_merge(surface: str, obj: object, key: object, version: int, value: object) -> None:
    if _active is not None:
        _active.record(surface, obj, key, MERGE, (version, value))


@dataclass(frozen=True)
class Conflict:
    """One order-sensitive cross-task access pair on one key."""

    kind: str  # "write-write" | "read-write" | "accum" | "merge"
    surface: str
    object_label: str
    key: object
    tasks: Tuple[int, ...]
    detail: str = ""

    def render(self) -> str:
        tasks = ",".join(str(t) for t in self.tasks)
        return (
            f"{self.kind} conflict on {self.surface}[{self.key!r}] "
            f"({self.object_label}) between tasks {{{tasks}}}"
            + (f": {self.detail}" if self.detail else "")
        )


@dataclass
class _KeyAccess:
    """One task's footprint on one (object, key)."""

    reads: List[object] = field(default_factory=list)  # observed values
    writes: List[Tuple[object, object]] = field(default_factory=list)  # (value, replaced)
    merges: List[Tuple[int, object]] = field(default_factory=list)  # (version, value)
    accums: int = 0


class _Task:
    def __init__(self, index: int) -> None:
        self.index = index
        self.accesses: Dict[Tuple[str, int, object], _KeyAccess] = {}

    def access(self, slot: Tuple[str, int, object]) -> _KeyAccess:
        entry = self.accesses.get(slot)
        if entry is None:
            entry = _KeyAccess()
            self.accesses[slot] = entry
        return entry


class _Region:
    def __init__(self) -> None:
        self.tasks: List[_Task] = []
        self.current: Optional[_Task] = None


def _equal(a: object, b: object) -> bool:
    try:
        return bool(a == b)
    except Exception:
        return a is b


class SharedStateMonitor:
    """Per-task read/write-set tracking over the shared mutable surfaces.

    Usage::

        with SharedStateMonitor() as monitor:
            engine.search_batch(queries)
        assert not monitor.conflicts, monitor.report()

    Only one monitor can be active at a time (the simulator is
    single-threaded, and the instrumentation hooks are module-level).
    ``raise_on_conflict=True`` raises :class:`SharedStateConflictError` as
    soon as a region closes with conflicts, which pins the failure to the
    offending region in a test's traceback.
    """

    def __init__(self, raise_on_conflict: bool = False) -> None:
        self.raise_on_conflict = raise_on_conflict
        self.conflicts: List[Conflict] = []
        #: Cross-task same-value double-writes: order-insensitive in effect,
        #: but still duplicated work worth seeing in a report.
        self.benign_conflicts: List[Conflict] = []
        self.regions_checked = 0
        self.accesses_recorded = 0
        self._frames: List[_Region] = []
        self._object_labels: Dict[int, str] = {}
        self._object_refs: List[object] = []  # keep ids stable while active
        self._label_counts: Dict[str, int] = {}

    # -- context manager -----------------------------------------------------------

    def __enter__(self) -> "SharedStateMonitor":
        activate(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        deactivate(self)

    # -- object identity -----------------------------------------------------------

    def _label(self, surface: str, obj: object) -> str:
        key = id(obj)
        label = self._object_labels.get(key)
        if label is None:
            count = self._label_counts.get(surface, 0)
            self._label_counts[surface] = count + 1
            label = f"{surface}#{count}"
            self._object_labels[key] = label
            self._object_refs.append(obj)  # pin: id() must not be reused
        return label

    # -- region/task lifecycle (driven by Simulator.parallel_region) ----------------

    def begin_region(self) -> None:
        self._frames.append(_Region())

    def begin_task(self, index: int) -> None:
        frame = self._frames[-1]
        task = _Task(index)
        frame.tasks.append(task)
        frame.current = task

    def end_task(self) -> None:
        if self._frames:
            self._frames[-1].current = None

    def end_region(self) -> None:
        frame = self._frames.pop()
        self.regions_checked += 1
        conflicts = self._analyze(frame)
        if self._frames:
            self._collapse_into_parent(frame)
        if conflicts and self.raise_on_conflict:
            raise SharedStateConflictError(conflicts)

    def _collapse_into_parent(self, frame: _Region) -> None:
        """Fold a nested region's footprint into the enclosing task."""
        parent = self._frames[-1].current
        if parent is None:
            return
        for task in frame.tasks:
            for slot, access in task.accesses.items():
                merged = parent.access(slot)
                merged.reads.extend(access.reads)
                merged.writes.extend(access.writes)
                merged.merges.extend(access.merges)
                merged.accums += access.accums

    # -- recording -----------------------------------------------------------------

    def record(self, surface: str, obj: object, key: object, kind: str, payload: object) -> None:
        if not self._frames:
            return  # serial context: ordering is real, not simulated-away
        current = self._frames[-1].current
        if current is None:
            return  # between tasks (region bookkeeping itself)
        self.accesses_recorded += 1
        self._label(surface, obj)  # assign the deterministic label on first touch
        access = current.access((surface, id(obj), key))
        if kind == READ:
            access.reads.append(payload)
        elif kind == WRITE:
            access.writes.append(payload)
        elif kind == MERGE:
            access.merges.append(payload)  # (version, value)
        elif kind == ACCUM:
            access.accums += 1

    # -- analysis ------------------------------------------------------------------

    def _analyze(self, frame: _Region) -> List[Conflict]:
        """Pairwise cross-task conflict detection for one closed region."""
        touched: Dict[Tuple[str, int, object], List[Tuple[_Task, _KeyAccess]]] = {}
        for task in frame.tasks:
            for slot, access in task.accesses.items():
                touched.setdefault(slot, []).append((task, access))
        found: List[Conflict] = []
        for slot, entries in touched.items():
            if len(entries) < 2:
                continue
            surface, obj_id, key = slot
            label = self._object_labels.get(obj_id, surface)
            found.extend(self._analyze_key(surface, label, key, entries))
        self.conflicts.extend(found)
        return found

    def _analyze_key(
        self,
        surface: str,
        label: str,
        key: object,
        entries: List[Tuple["_Task", _KeyAccess]],
    ) -> List[Conflict]:
        conflicts: List[Conflict] = []

        def conflict(kind: str, tasks: Tuple[int, ...], detail: str) -> Conflict:
            return Conflict(
                kind=kind, surface=surface, object_label=label, key=key,
                tasks=tasks, detail=detail,
            )

        writers = [(t, a) for t, a in entries if a.writes]
        readers = [(t, a) for t, a in entries if a.reads]
        mergers = [(t, a) for t, a in entries if a.merges]
        accumulators = [(t, a) for t, a in entries if a.accums]

        # WRITE / WRITE
        if len(writers) >= 2:
            values = [value for _, access in writers for value, _replaced in access.writes]
            first = values[0]
            tasks = tuple(sorted(t.index for t, _ in writers))
            if all(_equal(first, value) for value in values[1:]):
                self.benign_conflicts.append(
                    conflict("write-write", tasks, "identical values (idempotent double-fill)")
                )
            else:
                conflicts.append(conflict("write-write", tasks, "differing written values"))

        # READ / WRITE (cross-task).  A write is harmless only when it is a
        # no-op — its value equals the value it replaced — because then no
        # interleaving could have shown the reader anything different.
        for writer_task, writer_access in writers:
            no_op = all(
                replaced is not _ABSENT and _equal(value, replaced)
                for value, replaced in writer_access.writes
            )
            for reader_task, reader_access in readers:
                if reader_task is writer_task:
                    continue
                tasks = tuple(sorted({reader_task.index, writer_task.index}))
                if no_op:
                    self.benign_conflicts.append(
                        conflict("read-write", tasks, "write replaced an equal value (no-op)")
                    )
                else:
                    conflicts.append(
                        conflict(
                            "read-write", tasks,
                            "a concurrent execution could observe either order",
                        )
                    )

        # ACCUM vs READ/WRITE: an increment commutes with other increments,
        # but not with a concurrent read (mid-count observation) or write
        # (reset/overwrite racing the increment).
        if accumulators:
            accum_ids = {t.index for t, _ in accumulators}
            for other_task, other_access in entries:
                if not (other_access.reads or other_access.writes):
                    continue
                concurrent_accums = accum_ids - {other_task.index}
                if not concurrent_accums:
                    continue
                conflicts.append(
                    conflict(
                        "accum",
                        tuple(sorted(concurrent_accums | {other_task.index})),
                        "commutative update racing a read/write of the same key",
                    )
                )

        # MERGE / MERGE
        if len(mergers) >= 2:
            by_version: Dict[int, List[Tuple[int, object]]] = {}
            for task, access in mergers:
                for version, value in access.merges:
                    by_version.setdefault(version, []).append((task.index, value))
            for version, pairs in sorted(by_version.items()):
                task_ids = sorted({task_id for task_id, _ in pairs})
                if len(task_ids) < 2:
                    continue
                first_value = pairs[0][1]
                if not all(_equal(first_value, value) for _, value in pairs[1:]):
                    conflicts.append(
                        conflict(
                            "merge", tuple(task_ids),
                            f"same version {version} merged with differing values",
                        )
                    )

        # MERGE vs READ (stale-read order dependency) and MERGE vs WRITE/ACCUM
        for merge_task, merge_access in mergers:
            top_version = max(version for version, _ in merge_access.merges)
            for other_task, other_access in entries:
                if other_task is merge_task:
                    continue
                tasks = tuple(sorted({merge_task.index, other_task.index}))
                if other_access.writes or other_access.accums:
                    conflicts.append(
                        conflict("merge", tasks, "version-guarded merge racing a plain write")
                    )
                    continue
                for observed in other_access.reads:
                    observed_version = (
                        observed[0]
                        if isinstance(observed, tuple) and observed
                        and isinstance(observed[0], int)
                        else -1
                    )
                    if observed is _ABSENT or observed_version < top_version:
                        conflicts.append(
                            conflict(
                                "merge", tasks,
                                "merge carries a newer version than a concurrent read observed",
                            )
                        )
                        break
        return conflicts

    # -- reporting -----------------------------------------------------------------

    def report(self) -> str:
        lines = [
            f"SharedStateMonitor: {self.regions_checked} region(s), "
            f"{self.accesses_recorded} access(es), {len(self.conflicts)} conflict(s), "
            f"{len(self.benign_conflicts)} benign"
        ]
        lines.extend("  " + conflict.render() for conflict in self.conflicts)
        return "\n".join(lines)


class SharedStateConflictError(AssertionError):
    """Raised by ``raise_on_conflict`` monitors when a region closes dirty."""

    def __init__(self, conflicts: List[Conflict]) -> None:
        self.conflicts = conflicts
        super().__init__(
            "parallel-region shared-state conflict(s):\n"
            + "\n".join("  " + conflict.render() for conflict in conflicts)
        )
