"""Deterministic discrete-event simulation substrate.

Every QueenBee experiment runs on simulated time.  The package provides:

* :class:`~repro.sim.clock.SimClock` — a monotonically advancing clock in
  abstract "ticks" (interpreted as milliseconds by the network layer).
* :class:`~repro.sim.events.EventQueue` — a priority queue of scheduled
  callbacks.
* :class:`~repro.sim.simulator.Simulator` — ties the two together and owns
  the seeded random number generator, so that whole experiments are
  reproducible from a single seed.
"""

from repro.sim.clock import SimClock
from repro.sim.events import Event, EventQueue
from repro.sim.simulator import Simulator

__all__ = ["SimClock", "Event", "EventQueue", "Simulator"]
