"""Deterministic discrete-event simulation substrate.

Every QueenBee experiment runs on simulated time.  The package provides:

* :class:`~repro.sim.clock.SimClock` — a monotonically advancing clock in
  abstract "ticks" (interpreted as milliseconds by the network layer).
* :class:`~repro.sim.events.EventQueue` — a priority queue of scheduled
  callbacks.
* :class:`~repro.sim.simulator.Simulator` — ties the two together and owns
  the seeded random number generator, so that whole experiments are
  reproducible from a single seed.
* :class:`~repro.sim.monitor.SharedStateMonitor` — the parallel-region race
  detector (the runtime half of ``repro-lint``): activated around a
  workload, it attributes every access to the instrumented shared surfaces
  to the region task it happened in and flags order-sensitive cross-task
  conflicts.
"""

from repro.sim.clock import SimClock
from repro.sim.events import Event, EventQueue
from repro.sim.monitor import Conflict, SharedStateConflictError, SharedStateMonitor
from repro.sim.simulator import Simulator

__all__ = [
    "Conflict",
    "Event",
    "EventQueue",
    "SharedStateConflictError",
    "SharedStateMonitor",
    "SimClock",
    "Simulator",
]
