"""Simulated clock used as the single source of time in every experiment."""

from __future__ import annotations

from repro.errors import SimulationError


class SimClock:
    """A monotonically advancing clock measured in abstract ticks.

    The network layer interprets one tick as one millisecond, but nothing in
    the library depends on that interpretation; only ordering and differences
    matter.
    """

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise SimulationError(f"clock cannot start at negative time {start!r}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in ticks."""
        return self._now

    def advance(self, delta: float) -> float:
        """Move the clock forward by ``delta`` ticks and return the new time."""
        if delta < 0:
            raise SimulationError(f"cannot advance clock by negative delta {delta!r}")
        self._now += delta
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Move the clock forward to ``timestamp`` (which must not be in the past)."""
        if timestamp < self._now:
            raise SimulationError(
                f"cannot move clock backwards from {self._now!r} to {timestamp!r}"
            )
        self._now = float(timestamp)
        return self._now

    def rewind_to(self, timestamp: float) -> float:
        """Move the clock backwards.

        Only :meth:`repro.sim.simulator.Simulator.parallel_region` should use
        this: it measures each branch of a logically-parallel operation on the
        same start time and then charges only the slowest branch.
        """
        if timestamp < 0:
            raise SimulationError(f"cannot rewind clock to negative time {timestamp!r}")
        if timestamp > self._now:
            raise SimulationError(
                f"rewind_to({timestamp!r}) is in the future (now={self._now!r}); use advance_to"
            )
        self._now = float(timestamp)
        return self._now

    def __repr__(self) -> str:
        return f"SimClock(now={self._now!r})"
