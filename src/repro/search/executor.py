"""Query execution: fetch posting lists, intersect/union, score, take top-k."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.errors import TermNotFoundError
from repro.index.postings import PostingList
from repro.index.statistics import CollectionStatistics
from repro.ranking.bm25 import BM25Scorer
from repro.ranking.scoring import CombinedScorer
from repro.search.planner import QueryPlan

# A posting fetcher resolves one term to its posting list; it raises
# TermNotFoundError for unknown/unreachable terms.  In QueenBee it is the
# distributed index; in the centralized baseline it is the local index.
PostingFetcher = Callable[[str], PostingList]


@dataclass
class ExecutionOutcome:
    """Candidates, scores, and diagnostics from executing one plan."""

    candidates: List[int] = field(default_factory=list)
    scores: Dict[int, float] = field(default_factory=dict)
    page_ranks: Dict[int, float] = field(default_factory=dict)
    postings_by_term: Dict[str, PostingList] = field(default_factory=dict)
    missing_terms: Tuple[str, ...] = field(default_factory=tuple)
    terms_fetched: int = 0
    postings_scanned: int = 0
    early_exit: bool = False


class QueryExecutor:
    """Executes a :class:`QueryPlan` against posting lists and a rank vector."""

    def __init__(
        self,
        fetch_postings: PostingFetcher,
        statistics: CollectionStatistics,
        page_ranks: Optional[Mapping[int, float]] = None,
        bm25: Optional[BM25Scorer] = None,
        combiner: Optional[CombinedScorer] = None,
        top_k: int = 10,
    ) -> None:
        if top_k < 1:
            raise ValueError(f"top_k must be at least 1, got {top_k!r}")
        self.fetch_postings = fetch_postings
        self.statistics = statistics
        self.page_ranks = dict(page_ranks or {})
        self.bm25 = bm25 or BM25Scorer(statistics)
        self.combiner = combiner or CombinedScorer()
        self.top_k = top_k

    def execute(self, plan: QueryPlan) -> ExecutionOutcome:
        """Run the plan: fetch lists in planned order, combine, score, rank."""
        outcome = ExecutionOutcome()
        running: Optional[PostingList] = None
        conjunctive = plan.query.is_conjunctive
        missing: List[str] = []

        for term in plan.ordered_terms:
            try:
                postings = self.fetch_postings(term)
            except TermNotFoundError:
                missing.append(term)
                if conjunctive:
                    # An AND query with an unknown term cannot match anything,
                    # but keep fetching nothing further: the result is empty.
                    outcome.missing_terms = tuple(missing)
                    outcome.early_exit = True
                    return outcome
                continue
            outcome.terms_fetched += 1
            outcome.postings_scanned += len(postings)
            outcome.postings_by_term[term] = postings
            if running is None:
                running = postings
            elif conjunctive:
                running = running.intersect(postings)
                if not len(running):
                    outcome.early_exit = True
                    break
            else:
                running = running.union(postings)

        outcome.missing_terms = tuple(missing)
        if running is None or not len(running):
            return outcome

        candidates = running.doc_ids
        outcome.candidates = candidates
        bm25_scores = self.bm25.score_postings(
            list(plan.query.terms), outcome.postings_by_term, candidates
        )
        combined = self.combiner.combine(
            bm25_scores, self.page_ranks, self.statistics.document_count
        )
        top = self.combiner.top_k(combined, self.top_k)
        outcome.scores = top
        outcome.page_ranks = {doc_id: self.page_ranks.get(doc_id, 0.0) for doc_id in top}
        return outcome
