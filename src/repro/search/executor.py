"""Query execution: fetch posting lists, evaluate, score, take top-k.

Two execution modes share one interface:

``taat`` (term-at-a-time)
    The reference path: materialise the full intersection/union, score every
    candidate, sort, truncate.  Simple, obviously correct, and the baseline
    every optimisation is checked against.

``maxscore`` (document-at-a-time with MaxScore pruning)
    The production path: posting cursors advance document-at-a-time with
    galloping skips, a bounded min-heap tracks the current top-k, and
    per-term *max-impact* upper bounds (published alongside each shard) let
    the executor skip scoring — or stop scanning entirely — once no remaining
    document can enter the top-k.  Pruning only ever uses *strict* bound
    comparisons, so the returned top-k (documents, scores, and tie-breaks) is
    bit-identical to the ``taat`` path.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.errors import TermNotFoundError
from repro.index.postings import PostingList
from repro.index.statistics import CollectionStatistics
from repro.ranking.bm25 import BM25Scorer
from repro.ranking.scoring import CombinedScorer
from repro.search.planner import EXECUTION_MODES, MODE_MAXSCORE, MODE_TAAT, QueryPlan

# A posting fetcher resolves one term to its posting list; it raises
# TermNotFoundError for unknown/unreachable terms.  In QueenBee it is the
# distributed index; in the centralized baseline it is the local index.
PostingFetcher = Callable[[str], PostingList]

# Upper bounds are inflated by this factor before threshold comparisons so a
# bound that equals the exact score in real arithmetic can never fall below
# it through floating-point rounding (which would prune a tying document).
_BOUND_SLACK = 1.0 + 1e-9


@dataclass
class ExecutionOutcome:
    """Candidates, scores, and diagnostics from executing one plan.

    In ``maxscore`` mode, ``candidates`` holds only the documents the engine
    actually *visited* (pruned document spaces are skipped wholesale), so it
    can be shorter than the ``taat`` candidate set; ``scores`` is identical
    between modes.
    """

    candidates: List[int] = field(default_factory=list)
    scores: Dict[int, float] = field(default_factory=dict)
    page_ranks: Dict[int, float] = field(default_factory=dict)
    postings_by_term: Dict[str, PostingList] = field(default_factory=dict)
    missing_terms: Tuple[str, ...] = field(default_factory=tuple)
    terms_fetched: int = 0
    postings_scanned: int = 0
    docs_scored: int = 0
    docs_pruned: int = 0
    early_exit: bool = False
    mode: str = MODE_TAAT


class _Cursor:
    """One term's posting cursor: parallel doc_id / frequency arrays.

    ``scale`` is the term's weighted idf times ``k1 + 1``; with the shared
    length-free denominator constant it turns a term frequency into the
    best-case score contribution (``impact``), and ``upper_bound`` is the
    impact of the list's maximum frequency.
    """

    __slots__ = ("term", "doc_ids", "frequencies", "position", "scale", "upper_bound")

    def __init__(self, term: str, postings: PostingList, scale: float, tf_constant: float) -> None:
        self.term = term
        # Shared read-only views cached on the posting list itself, so a
        # cached/prefetched list is not re-copied for every query using it.
        self.doc_ids, self.frequencies = postings.arrays()
        self.position = 0
        self.scale = scale
        self.upper_bound = self.impact(postings.max_term_frequency, tf_constant)

    def impact(self, term_frequency: int, tf_constant: float) -> float:
        """Best-case (shortest-document) contribution of one posting."""
        if term_frequency <= 0:
            return 0.0
        return self.scale * term_frequency / (term_frequency + tf_constant)

    def __len__(self) -> int:
        return len(self.doc_ids)

    @property
    def exhausted(self) -> bool:
        return self.position >= len(self.doc_ids)

    @property
    def current(self) -> int:
        return self.doc_ids[self.position]

    def seek(self, target: int) -> int:
        """Gallop the cursor to the first doc_id >= ``target``.

        Returns the number of postings probed, the honest unit of work a
        skip costs (log of the jump, not the jump itself).
        """
        ids = self.doc_ids
        position = self.position
        if position >= len(ids) or ids[position] >= target:
            self.position = position
            return 1 if position < len(ids) else 0
        probes = 1
        step = 1
        low = position
        high = position + step
        while high < len(ids) and ids[high] < target:
            probes += 1
            low = high
            step *= 2
            high = position + step
        high = min(high, len(ids))
        while low < high:
            mid = (low + high) // 2
            probes += 1
            if ids[mid] < target:
                low = mid + 1
            else:
                high = mid
        self.position = low
        return probes


class QueryExecutor:
    """Executes a :class:`QueryPlan` against posting lists and a rank vector."""

    def __init__(
        self,
        fetch_postings: PostingFetcher,
        statistics: CollectionStatistics,
        page_ranks: Optional[Mapping[int, float]] = None,
        bm25: Optional[BM25Scorer] = None,
        combiner: Optional[CombinedScorer] = None,
        top_k: int = 10,
        mode: str = MODE_TAAT,
        rank_bound_provider: Optional[Callable[[], float]] = None,
    ) -> None:
        if top_k < 1:
            raise ValueError(f"top_k must be at least 1, got {top_k!r}")
        if mode not in EXECUTION_MODES:
            raise ValueError(f"unknown execution mode {mode!r}")
        self.fetch_postings = fetch_postings
        self.statistics = statistics
        # Held by reference, not copied: the rank vector is corpus-sized and a
        # fresh executor is built per query, so a defensive copy would cost
        # O(corpus) per query.  Treated as read-only for the executor's life.
        self.page_ranks: Mapping[int, float] = page_ranks if page_ranks is not None else {}
        self.bm25 = bm25 or BM25Scorer(statistics)
        self.combiner = combiner or CombinedScorer()
        self.top_k = top_k
        self.mode = mode
        # Optional externally-memoized global rank upper bound.  Deriving it
        # from the rank vector is an O(corpus) max(); a caller that tracks
        # the rank-vector version (the frontend) supplies a provider so the
        # max() is paid once per rank round instead of once per query.
        self.rank_bound_provider = rank_bound_provider

    def execute(self, plan: QueryPlan, mode: Optional[str] = None) -> ExecutionOutcome:
        """Run the plan in the executor's (or an overriding) mode."""
        mode = mode or self.mode
        if mode not in EXECUTION_MODES:
            raise ValueError(f"unknown execution mode {mode!r}")
        if mode == MODE_MAXSCORE:
            return self._execute_maxscore(plan)
        return self._execute_taat(plan)

    # -- term-at-a-time (reference) ------------------------------------------------

    def _execute_taat(self, plan: QueryPlan) -> ExecutionOutcome:
        """Fetch lists in planned order, combine fully, score, rank."""
        outcome = ExecutionOutcome(mode=MODE_TAAT)
        running: Optional[PostingList] = None
        conjunctive = plan.query.is_conjunctive
        missing: List[str] = []

        for term in plan.ordered_terms:
            try:
                postings = self.fetch_postings(term)
            except TermNotFoundError:
                missing.append(term)
                if conjunctive:
                    # An AND query with an unknown term cannot match anything,
                    # but keep fetching nothing further: the result is empty.
                    outcome.missing_terms = tuple(missing)
                    outcome.early_exit = True
                    return outcome
                continue
            outcome.terms_fetched += 1
            outcome.postings_scanned += len(postings)
            outcome.postings_by_term[term] = postings
            if running is None:
                running = postings
            elif conjunctive:
                running = running.intersect(postings)
                if not len(running):
                    outcome.early_exit = True
                    break
            else:
                running = running.union(postings)

        outcome.missing_terms = tuple(missing)
        if running is None or not len(running):
            return outcome

        candidates = running.doc_ids
        outcome.candidates = candidates
        bm25_scores = self.bm25.score_postings(
            list(plan.query.terms), outcome.postings_by_term, candidates
        )
        outcome.docs_scored = len(candidates)
        combined = self.combiner.combine(
            bm25_scores, self.page_ranks, self.statistics.document_count
        )
        top = self.combiner.top_k(combined, self.top_k)
        outcome.scores = top
        outcome.page_ranks = {doc_id: self.page_ranks.get(doc_id, 0.0) for doc_id in top}
        return outcome

    # -- document-at-a-time with MaxScore pruning ------------------------------------

    def _execute_maxscore(self, plan: QueryPlan) -> ExecutionOutcome:
        outcome = ExecutionOutcome(mode=MODE_MAXSCORE)
        conjunctive = plan.query.is_conjunctive
        missing: List[str] = []
        cursors: List[_Cursor] = []
        tf_constant = 0.0
        # Feasible doc-id window for conjunctive queries: if a fetched list is
        # empty, or the window closes (all-lists doc-id ranges are disjoint),
        # the intersection is provably empty and the remaining fetches are
        # skipped — recovering most of TAAT's stop-fetching-early behaviour.
        window_low, window_high = 0, None

        for term in plan.ordered_terms:
            try:
                postings = self.fetch_postings(term)
            except TermNotFoundError:
                missing.append(term)
                if conjunctive:
                    outcome.missing_terms = tuple(missing)
                    outcome.early_exit = True
                    return outcome
                continue
            outcome.terms_fetched += 1
            outcome.postings_by_term[term] = postings
            if conjunctive:
                if len(postings) == 0:
                    outcome.missing_terms = tuple(missing)
                    outcome.early_exit = True
                    return outcome
                doc_ids = postings.arrays()[0]
                window_low = max(window_low, doc_ids[0])
                window_high = (
                    doc_ids[-1] if window_high is None else min(window_high, doc_ids[-1])
                )
                if window_low > window_high:
                    outcome.missing_terms = tuple(missing)
                    outcome.early_exit = True
                    return outcome
            # The term's max impact on the *combined* score: its best BM25
            # contribution scaled by the combiner's text weight.
            scale, tf_constant = self.bm25.impact_parameters(term)
            scale *= self.combiner.bm25_weight
            cursors.append(_Cursor(term, postings, scale, tf_constant))

        outcome.missing_terms = tuple(missing)
        if not cursors:
            return outcome

        document_count = self.statistics.document_count
        # The global rank bound needs a max() over the corpus-sized rank
        # vector, so it is resolved lazily: only once the top-k heap is full
        # and pruning decisions actually need it.  A rank_bound_provider
        # (memoized against the rank-vector version by the frontend) replaces
        # the local max() entirely.
        rank_ub_memo: List[float] = []

        def rank_ub() -> float:
            if not rank_ub_memo:
                if self.rank_bound_provider is not None:
                    rank_ub_memo.append(self.rank_bound_provider())
                else:
                    rank_ub_memo.append(
                        self.combiner.rank_upper_bound(self.page_ranks, document_count)
                    )
            return rank_ub_memo[0]

        # Min-heap of (score, -doc_id): the root is the weakest member of the
        # current top-k under the same (-score, doc_id) order the reference
        # path sorts by, so strict bound comparisons preserve exact ties.
        heap: List[Tuple[float, int]] = []

        if conjunctive:
            self._daat_and(plan, cursors, heap, rank_ub, tf_constant, outcome)
        else:
            self._daat_or(plan, cursors, heap, rank_ub, tf_constant, outcome)

        ordered = sorted(heap, key=lambda item: (-item[0], -item[1]))
        outcome.scores = {-neg_doc_id: score for score, neg_doc_id in ordered}
        outcome.page_ranks = {
            doc_id: self.page_ranks.get(doc_id, 0.0) for doc_id in outcome.scores
        }
        return outcome

    def _score_exact(self, plan: QueryPlan, doc_id: int, found: Dict[str, int]) -> float:
        """The combined score, computed with the same arithmetic as TAAT."""
        per_doc = {term: found.get(term, 0) for term in plan.query.terms}
        text = self.bm25.score_document(doc_id, per_doc)
        rank = self.page_ranks.get(doc_id, 0.0)
        return self.combiner.bm25_weight * text + self.combiner.rank_component(
            rank, self.statistics.document_count
        )

    def _offer(self, heap: List[Tuple[float, int]], doc_id: int, score: float) -> None:
        entry = (score, -doc_id)
        if len(heap) < self.top_k:
            heapq.heappush(heap, entry)
        elif entry > heap[0]:
            heapq.heapreplace(heap, entry)

    def _daat_and(
        self,
        plan: QueryPlan,
        cursors: List[_Cursor],
        heap: List[Tuple[float, int]],
        rank_ub: Callable[[], float],
        tf_constant: float,
        outcome: ExecutionOutcome,
    ) -> None:
        """Drive the shortest list, gallop the others, prune by per-doc bound."""
        cursors.sort(key=len)
        driver, others = cursors[0], cursors[1:]
        total_ub = sum(cursor.upper_bound for cursor in cursors)
        full = self.top_k
        for index, doc_id in enumerate(driver.doc_ids):
            if len(heap) == full and total_ub * _BOUND_SLACK + rank_ub() < heap[0][0]:
                # Even a document matching every term at max impact with the
                # best possible rank cannot displace the current top-k.
                outcome.docs_pruned += len(driver.doc_ids) - index
                outcome.early_exit = True
                return
            outcome.postings_scanned += 1
            found = {driver.term: driver.frequencies[index]}
            text_bound = driver.impact(driver.frequencies[index], tf_constant)
            present = True
            for other in others:
                outcome.postings_scanned += other.seek(doc_id)
                if other.exhausted or other.current != doc_id:
                    present = False
                    break
                frequency = other.frequencies[other.position]
                found[other.term] = frequency
                text_bound += other.impact(frequency, tf_constant)
            if not present:
                continue
            outcome.candidates.append(doc_id)
            rank_part = self.combiner.rank_component(
                self.page_ranks.get(doc_id, 0.0), self.statistics.document_count
            )
            # The document's frequencies are known here, so the bound uses its
            # actual impacts (length-free), far tighter than the max-tf sum.
            if len(heap) == full and text_bound * _BOUND_SLACK + rank_part < heap[0][0]:
                outcome.docs_pruned += 1
                continue
            self._offer(heap, doc_id, self._score_exact(plan, doc_id, found))
            outcome.docs_scored += 1

    def _daat_or(
        self,
        plan: QueryPlan,
        cursors: List[_Cursor],
        heap: List[Tuple[float, int]],
        rank_ub: Callable[[], float],
        tf_constant: float,
        outcome: ExecutionOutcome,
    ) -> None:
        """Classic MaxScore: essential lists drive, non-essential only confirm.

        Cursors are kept sorted by upper bound; the *non-essential* prefix is
        the longest prefix whose summed bounds (plus the global rank bound)
        stay strictly below the top-k threshold — documents appearing only
        there can never enter the top-k, so their lists are never enumerated,
        only probed for documents the essential lists surface.
        """
        cursors.sort(key=lambda cursor: cursor.upper_bound)
        prefix: List[float] = []
        running = 0.0
        for cursor in cursors:
            running += cursor.upper_bound
            prefix.append(running)
        full = self.top_k
        last_candidate = -1

        while True:
            threshold = heap[0][0] if len(heap) == full else None
            first_essential = 0
            if threshold is not None:
                if prefix[-1] * _BOUND_SLACK + rank_ub() < threshold:
                    # Even a document in every list at max impact with the best
                    # possible rank cannot displace the current top-k.
                    outcome.early_exit = True
                    return
                while (
                    first_essential < len(cursors) - 1
                    and prefix[first_essential] * _BOUND_SLACK + rank_ub() < threshold
                ):
                    first_essential += 1
            essential = cursors[first_essential:]
            candidate = None
            for cursor in essential:
                # A list promoted from non-essential may still point at an
                # already-evaluated document; skip it forward so candidates
                # are strictly increasing and no document is offered twice.
                if not cursor.exhausted and cursor.current <= last_candidate:
                    outcome.postings_scanned += cursor.seek(last_candidate + 1)
                if not cursor.exhausted:
                    current = cursor.current
                    if candidate is None or current < candidate:
                        candidate = current
            if candidate is None:
                return
            last_candidate = candidate

            found: Dict[str, int] = {}
            rank_part = self.combiner.rank_component(
                self.page_ranks.get(candidate, 0.0), self.statistics.document_count
            )
            # Known impacts for the essential lists containing the candidate,
            # max impacts for the non-essential lists it *might* appear in.
            text_bound = prefix[first_essential - 1] if first_essential > 0 else 0.0
            for cursor in essential:
                if not cursor.exhausted and cursor.current == candidate:
                    frequency = cursor.frequencies[cursor.position]
                    found[cursor.term] = frequency
                    text_bound += cursor.impact(frequency, tf_constant)
                    cursor.position += 1
                    outcome.postings_scanned += 1
            outcome.candidates.append(candidate)

            if threshold is not None and text_bound * _BOUND_SLACK + rank_part < threshold:
                outcome.docs_pruned += 1
                continue
            for cursor in cursors[:first_essential]:
                outcome.postings_scanned += cursor.seek(candidate)
                if not cursor.exhausted and cursor.current == candidate:
                    found[cursor.term] = cursor.frequencies[cursor.position]
            self._offer(heap, candidate, self._score_exact(plan, candidate, found))
            outcome.docs_scored += 1
