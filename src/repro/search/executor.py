"""Query execution: fetch posting lists, evaluate, score, take top-k.

Two execution modes share one interface:

``taat`` (term-at-a-time)
    The reference path: materialise the full intersection/union, score every
    candidate, sort, truncate.  Simple, obviously correct, and the baseline
    every optimisation is checked against.

``maxscore`` (document-at-a-time with MaxScore pruning)
    The production path: posting cursors advance document-at-a-time with
    galloping skips, a bounded min-heap tracks the current top-k, and
    per-term *max-impact* upper bounds let the executor skip scoring — or
    stop scanning entirely — once no remaining document can enter the top-k.
    Pruning only ever uses *strict* bound comparisons, so the returned top-k
    (documents, scores, and tie-breaks) is bit-identical to the ``taat``
    path.

Sharded terms
-------------
A fetcher may return a lazy :class:`~repro.index.distributed.ShardedPostings`
reader instead of a materialised :class:`PostingList`.  Cursors then operate
on *segments* — one per doc-id-range shard, with the shard's quantized
max-impact bound from the manifest — and three extra prunings become
available, all strictly bound-based and therefore result-preserving:

* whole driver shards whose range-bound cannot reach the top-k threshold are
  skipped without being scanned (or even fetched);
* conjunctive evaluation is clamped to the terms' feasible doc-id window, so
  shards outside it are never loaded;
* disjunctive (MaxScore) essential-list selection uses each cursor's
  *remaining* bound — the max over its unconsumed shards — instead of the
  whole-list bound, demoting lists to non-essential as their high-impact
  shards are consumed, and per-candidate bounds use the shard-local bound at
  the candidate's position rather than the whole-list max.

Lazy loads that do reach the network are placement-routed: the index behind
the fetcher steers each shard fetch to the least-loaded live provider from
the term manifest's replica hints (see :mod:`repro.index.placement`), so
cursors over the same head term stop contending on one serving peer — the
property the frontend's parallel per-query batch execution relies on.
``segments_loaded`` in the outcome counts the per-query segment
materializations (cache hits included; the index's own stats count the
network fetches).
"""

from __future__ import annotations

import bisect
import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.errors import TermNotFoundError
from repro.index.postings import PostingList
from repro.index.statistics import CollectionStatistics
from repro.ranking.bm25 import BM25Scorer
from repro.ranking.scoring import CombinedScorer
from repro.search.planner import EXECUTION_MODES, MODE_MAXSCORE, MODE_TAAT, QueryPlan

try:  # numpy backs the vectorized scoring paths; scalar is the reference.
    import numpy as _np
except ImportError:  # pragma: no cover - the CI image always has numpy
    _np = None

# A posting fetcher resolves one term to its postings — a PostingList, or a
# lazy ShardedPostings reader (duck-typed via .shard_infos) for sharded
# terms; it raises TermNotFoundError for unknown/unreachable terms.  In
# QueenBee it is the distributed index; in the centralized baseline it is
# the local index.
PostingFetcher = Callable[[str], Any]

# Upper bounds are inflated by this factor before threshold comparisons so a
# bound that equals the exact score in real arithmetic can never fall below
# it through floating-point rounding (which would prune a tying document).
_BOUND_SLACK = 1.0 + 1e-9


@dataclass
class ExecutionOutcome:
    """Candidates, scores, and diagnostics from executing one plan.

    In ``maxscore`` mode, ``candidates`` holds only the documents the engine
    actually *visited* (pruned document spaces are skipped wholesale), so it
    can be shorter than the ``taat`` candidate set; ``scores`` is identical
    between modes.  ``postings_by_term`` holds whatever the fetcher returned
    (materialised lists in ``taat`` mode, possibly lazy readers in
    ``maxscore`` mode).
    """

    candidates: List[int] = field(default_factory=list)
    scores: Dict[int, float] = field(default_factory=dict)
    page_ranks: Dict[int, float] = field(default_factory=dict)
    postings_by_term: Dict[str, Any] = field(default_factory=dict)
    missing_terms: Tuple[str, ...] = field(default_factory=tuple)
    terms_fetched: int = 0
    postings_scanned: int = 0
    docs_scored: int = 0
    docs_pruned: int = 0
    shards_skipped: int = 0
    # Lazy segment materializations the cursors performed (maxscore mode).
    # Each is a shard *request* against the fetcher — served by the
    # frontend's memoized readers or the posting cache when warm, and only
    # otherwise by a placement-routed network fetch (the index's
    # terms_fetched counter tracks those).
    segments_loaded: int = 0
    early_exit: bool = False
    mode: str = MODE_TAAT


def _materialize(postings: Any) -> PostingList:
    """A full PostingList from either a list or a sharded reader."""
    if isinstance(postings, PostingList):
        return postings
    return postings.materialize()


def _gather_tf(ids: Any, frequencies: Any, targets: Any) -> Any:
    """Float64 frequencies of ``targets`` looked up in sorted ``ids``.

    ``ids``/``frequencies`` are the parallel posting arrays of one term
    (doc ids strictly increasing); absent targets gather 0.0 — the same
    value the scalar scorers see for a term the document does not carry.
    """
    if not ids.size:
        return _np.zeros(len(targets), dtype=_np.float64)
    positions = _np.searchsorted(ids, targets)
    positions = _np.minimum(positions, ids.size - 1)
    hits = ids[positions] == targets
    return _np.where(hits, frequencies[positions], 0.0)


class _ShardUnreachable(Exception):
    """A lazy shard load failed mid-execution; carries the term to degrade."""

    def __init__(self, term: str) -> None:
        super().__init__(term)
        self.term = term


class _Segment:
    """One doc-id range of a term's postings: a shard, or the whole list."""

    __slots__ = ("index", "lo", "hi", "count", "max_tf", "min_len", "rank_ceiling")

    def __init__(
        self,
        index: int,
        lo: int,
        hi: int,
        count: int,
        max_tf: int,
        min_len: int = 0,
        rank_ceiling: float = -1.0,
    ) -> None:
        self.index = index
        self.lo = lo
        self.hi = hi
        self.count = count
        self.max_tf = max_tf
        self.min_len = min_len
        # Manifest-published max rank over the shard's documents, valid at
        # the executor's rank version (-1 = unknown: fall back to the
        # rank-range provider or the global bound).
        self.rank_ceiling = rank_ceiling


class _Cursor:
    """One term's posting cursor over lazily-loaded doc-id-range segments.

    ``scale`` is the term's weighted idf times ``k1 + 1``; with a
    tf-denominator it turns a term frequency into the best-case score
    contribution (``impact``).  Per-segment bounds evaluate the denominator
    at the segment's quantized *minimum document length* (from the shard
    manifest), which is far tighter than the length-free whole-list bound —
    the length-free form saturates in tf almost immediately.  These bounds
    are what shard skipping and remaining-bound demotion exploit;
    ``upper_bound`` is their maximum.

    Segment contents load on first *content* access (frequencies, or
    galloping inside the segment); probes that only need a segment's first
    doc_id are answered from the manifest (``lo``) without loading.
    """

    __slots__ = (
        "term", "segments", "bounds", "suffix_bounds", "suffix_ceilings",
        "upper_bound", "scale", "tf_constant", "seg", "offset", "_arrays",
        "_loader", "total", "_segment_los", "_on_load",
    )

    def __init__(
        self,
        term: str,
        postings: Any,
        scale: float,
        tf_constant: float,
        tf_denominator: Optional[Callable[[int], float]] = None,
        on_load: Optional[Callable[[], None]] = None,
        ceilings_valid: bool = False,
    ) -> None:
        self.term = term
        self.scale = scale
        self.tf_constant = tf_constant
        self._on_load = on_load
        self.seg = 0
        self.offset = 0
        if isinstance(postings, PostingList):
            # Shared read-only views cached on the posting list itself, so a
            # cached/prefetched list is not re-copied for every query using
            # it.  A plain list is one eager segment with its exact max_tf.
            doc_ids, frequencies = postings.arrays()
            if doc_ids:
                self.segments = [
                    _Segment(
                        0, doc_ids[0], doc_ids[-1], len(doc_ids), postings.max_term_frequency
                    )
                ]
                self._arrays: List[Optional[Tuple[List[int], List[int]]]] = [
                    (doc_ids, frequencies)
                ]
            else:
                self.segments = []
                self._arrays = []
            self._loader: Optional[Callable[[int], PostingList]] = None
        else:
            infos = postings.shard_infos
            # Segments keep the manifest's shard index: empty shards are
            # filtered here, so positions and shard numbers can diverge.
            # Manifest rank ceilings are attached only when the caller
            # verified they were stamped at the current rank version.
            self.segments = [
                _Segment(
                    info.index, info.lo, info.hi, info.count, info.max_tf,
                    info.min_len,
                    rank_ceiling=(
                        getattr(info, "rank_ceiling", -1.0) if ceilings_valid else -1.0
                    ),
                )
                for info in infos
                if info.count
            ]
            self._arrays = [None] * len(self.segments)
            reader = postings

            def load(index: int) -> PostingList:
                return reader.shard(index)

            self._loader = load
        self.total = sum(segment.count for segment in self.segments)
        self._segment_los = [segment.lo for segment in self.segments]
        self.bounds = [
            self._segment_impact(segment, tf_denominator) for segment in self.segments
        ]
        # suffix_bounds[i] = max bound over segments[i:]; the cursor's
        # remaining bound is suffix_bounds[seg].
        self.suffix_bounds = list(self.bounds)
        for i in range(len(self.suffix_bounds) - 2, -1, -1):
            self.suffix_bounds[i] = max(self.suffix_bounds[i], self.suffix_bounds[i + 1])
        self.upper_bound = self.suffix_bounds[0] if self.suffix_bounds else 0.0
        # suffix_ceilings[i] = max manifest rank ceiling over segments[i:],
        # or -1 when any segment in the suffix lacks a valid ceiling (the
        # whole suffix bound is then unusable — a single unknown segment
        # could hold an arbitrarily-ranked document).
        self.suffix_ceilings = [s.rank_ceiling for s in self.segments]
        running, valid = 0.0, True
        for i in range(len(self.suffix_ceilings) - 1, -1, -1):
            ceiling = self.suffix_ceilings[i]
            if ceiling < 0.0:
                valid = False
            else:
                running = max(running, ceiling)
            self.suffix_ceilings[i] = running if valid else -1.0

    def _segment_impact(
        self, segment: _Segment, tf_denominator: Optional[Callable[[int], float]]
    ) -> float:
        """Best contribution any document in ``segment`` can receive.

        With a manifest-supplied minimum length, the tf-denominator is
        evaluated there (documents are at least that long, so their actual
        impact can only be smaller); otherwise the length-free constant.
        """
        if segment.max_tf <= 0:
            return 0.0
        constant = self.tf_constant
        if segment.min_len > 0 and tf_denominator is not None:
            constant = tf_denominator(segment.min_len)
        return self.scale * segment.max_tf / (segment.max_tf + constant)

    def impact(self, term_frequency: int, tf_constant: Optional[float] = None) -> float:
        """Best-case (shortest-document) contribution of one posting."""
        if term_frequency <= 0:
            return 0.0
        constant = self.tf_constant if tf_constant is None else tf_constant
        return self.scale * term_frequency / (term_frequency + constant)

    def __len__(self) -> int:
        return self.total

    @property
    def exhausted(self) -> bool:
        return self.seg >= len(self.segments)

    @property
    def min_doc_id(self) -> Optional[int]:
        return self.segments[0].lo if self.segments else None

    @property
    def max_doc_id(self) -> Optional[int]:
        return self.segments[-1].hi if self.segments else None

    @property
    def at_segment_start(self) -> bool:
        return self.offset == 0

    @property
    def current_segment(self) -> _Segment:
        return self.segments[self.seg]

    def segment_arrays(self, position: int) -> Tuple[List[int], List[int]]:
        """Materialised ``(doc_ids, frequencies)`` of segment ``position``.

        Loads the segment on first access without moving the cursor — the
        vectorized paths bulk-read segments by position while the cursor
        itself tracks pruning progress.
        """
        arrays = self._arrays[position]
        if arrays is None:
            try:
                postings = self._loader(self.segments[position].index)  # type: ignore[misc]
            except TermNotFoundError as exc:
                # Degrade like an unreachable whole term (the pre-sharding
                # behaviour): the executor retries without this term.
                raise _ShardUnreachable(self.term) from exc
            arrays = postings.arrays()
            self._arrays[position] = arrays
            if self._on_load is not None:
                self._on_load()
        return arrays

    def _ids(self) -> List[int]:
        return self.segment_arrays(self.seg)[0]

    @property
    def current(self) -> int:
        """The doc_id under the cursor (manifest-answered at segment start)."""
        if self.offset == 0:
            return self.segments[self.seg].lo
        return self._ids()[self.offset]

    @property
    def current_frequency(self) -> int:
        arrays = self._arrays[self.seg]
        if arrays is None:
            self._ids()
            arrays = self._arrays[self.seg]
        return arrays[1][self.offset]

    def advance(self) -> None:
        """Step to the next posting (crossing into the next segment)."""
        self.offset += 1
        if self.offset >= self.segments[self.seg].count:
            self.seg += 1
            self.offset = 0

    def skip_segment(self) -> int:
        """Drop the rest of the current segment; returns postings skipped."""
        skipped = self.segments[self.seg].count - self.offset
        self.seg += 1
        self.offset = 0
        return skipped

    def remaining(self) -> int:
        """Postings at or after the cursor position."""
        if self.exhausted:
            return 0
        rest = sum(segment.count for segment in self.segments[self.seg + 1:])
        return rest + self.segments[self.seg].count - self.offset

    def remaining_bound(self) -> float:
        """Max impact over the postings the cursor has not consumed yet."""
        return self.suffix_bounds[self.seg] if not self.exhausted else 0.0

    def remaining_rank_ceiling(self) -> float:
        """Max manifest rank ceiling over the unconsumed segments.

        -1 when any unconsumed segment lacks a valid ceiling; 0 when the
        cursor is exhausted (no document can surface from it anymore).
        """
        return self.suffix_ceilings[self.seg] if not self.exhausted else 0.0

    def range_bound(self, lo: int, hi: int) -> float:
        """Max impact over segments overlapping ``[lo, hi]`` (no loading).

        Segments are disjoint and sorted by ``lo``, so the candidates start
        at the last segment whose ``lo <= hi``, scanning backwards only
        while segments still overlap — O(log S + overlap) on the
        many-segment head terms this is hot for.
        """
        position = bisect.bisect_right(self._segment_los, hi) - 1
        best = 0.0
        while position >= 0:
            segment = self.segments[position]
            if segment.hi < lo:
                break
            bound = self.bounds[position]
            if bound > best:
                best = bound
            position -= 1
        return best

    def seek(self, target: int) -> int:
        """Move to the first doc_id >= ``target``.

        Returns the number of postings probed, the honest unit of work a
        skip costs (log of the jump, not the jump itself; hopping an entire
        unloaded segment via its manifest range costs one probe).
        """
        probes = 0
        while not self.exhausted:
            segment = self.segments[self.seg]
            if self.offset == 0 and target <= segment.lo:
                return probes + 1
            if target > segment.hi:
                # The whole remainder of this segment is below the target:
                # hop it from the manifest without touching its content.
                self.seg += 1
                self.offset = 0
                probes += 1
                continue
            ids = self._ids()
            position = self.offset
            if ids[position] >= target:
                return probes + 1
            probes += 1
            step = 1
            low = position
            high = position + step
            while high < len(ids) and ids[high] < target:
                probes += 1
                low = high
                step *= 2
                high = position + step
            high = min(high, len(ids))
            while low < high:
                mid = (low + high) // 2
                probes += 1
                if ids[mid] < target:
                    low = mid + 1
                else:
                    high = mid
            if low >= len(ids):
                # Cannot happen while target <= segment.hi, but stay safe.
                self.seg += 1
                self.offset = 0
                continue
            self.offset = low
            return probes
        return probes


class QueryExecutor:
    """Executes a :class:`QueryPlan` against posting lists and a rank vector."""

    def __init__(
        self,
        fetch_postings: PostingFetcher,
        statistics: CollectionStatistics,
        page_ranks: Optional[Mapping[int, float]] = None,
        bm25: Optional[BM25Scorer] = None,
        combiner: Optional[CombinedScorer] = None,
        top_k: int = 10,
        mode: str = MODE_TAAT,
        rank_bound_provider: Optional[Callable[[], float]] = None,
        rank_range_provider: Optional[Callable[[int, Optional[int]], float]] = None,
        rank_version: Optional[int] = None,
        use_manifest_ceilings: bool = True,
        vectorized_scoring: bool = False,
    ) -> None:
        if top_k < 1:
            raise ValueError(f"top_k must be at least 1, got {top_k!r}")
        if mode not in EXECUTION_MODES:
            raise ValueError(f"unknown execution mode {mode!r}")
        self.fetch_postings = fetch_postings
        self.statistics = statistics
        # Held by reference, not copied: the rank vector is corpus-sized and a
        # fresh executor is built per query, so a defensive copy would cost
        # O(corpus) per query.  Treated as read-only for the executor's life.
        self.page_ranks: Mapping[int, float] = page_ranks if page_ranks is not None else {}
        self.bm25 = bm25 or BM25Scorer(statistics)
        self.combiner = combiner or CombinedScorer()
        self.top_k = top_k
        self.mode = mode
        # Optional externally-memoized global rank upper bound.  Deriving it
        # from the rank vector is an O(corpus) max(); a caller that tracks
        # the rank-vector version (the frontend) supplies a provider so the
        # max() is paid once per rank round instead of once per query.
        self.rank_bound_provider = rank_bound_provider
        # Optional doc-id-range rank maximum: ``(lo, hi) -> max rank`` over
        # documents in [lo, hi] (hi=None means "at or after lo").  Head
        # terms' text bounds are tiny (low idf), so whether a shard can
        # reach the threshold hinges on the best rank *in its range*; the
        # frontend supplies a RankRangeIndex-backed provider memoized per
        # rank version.  Falls back to the global bound when absent.
        self.rank_range_provider = rank_range_provider
        # The caller's current rank-vector version.  Sharded readers whose
        # manifest was rank-ceiling-stamped at exactly this version
        # contribute per-shard rank ceilings to the bounds below — the
        # "prune by rank without materialising the rank vector" path any
        # remote frontend can use.  A mismatched (stale) stamp is simply
        # ignored: looser pruning, identical pages.
        self.rank_version = rank_version
        self.use_manifest_ceilings = use_manifest_ceilings
        # Numpy array decode/score hot loops.  Strictly an implementation
        # swap: candidates are scored through BM25Scorer.score_batch (the
        # vectorized twin of score_document, bit-identical by construction)
        # and bound pruning keeps the same strict comparisons, so the
        # returned pages match the scalar paths exactly.  Per-candidate
        # pruning is coarsened to segment granularity, so the docs_scored /
        # docs_pruned diagnostics count differently (never the results).
        # Silently off without numpy: the knob is an optimisation, not a
        # semantic switch.
        self.vectorized_scoring = bool(vectorized_scoring) and _np is not None

    def execute(self, plan: QueryPlan, mode: Optional[str] = None) -> ExecutionOutcome:
        """Run the plan in the executor's (or an overriding) mode."""
        mode = mode or self.mode
        if mode not in EXECUTION_MODES:
            raise ValueError(f"unknown execution mode {mode!r}")
        if mode == MODE_MAXSCORE:
            return self._execute_maxscore(plan)
        return self._execute_taat(plan)

    # -- term-at-a-time (reference) ------------------------------------------------

    def _execute_taat(self, plan: QueryPlan) -> ExecutionOutcome:
        """Fetch lists in planned order, combine fully, score, rank."""
        outcome = ExecutionOutcome(mode=MODE_TAAT)
        running: Optional[PostingList] = None
        conjunctive = plan.query.is_conjunctive
        missing: List[str] = []

        for term in plan.ordered_terms:
            try:
                postings = _materialize(self.fetch_postings(term))
            except TermNotFoundError:
                missing.append(term)
                if conjunctive:
                    # An AND query with an unknown term cannot match anything,
                    # but keep fetching nothing further: the result is empty.
                    outcome.missing_terms = tuple(missing)
                    outcome.early_exit = True
                    return outcome
                continue
            outcome.terms_fetched += 1
            outcome.postings_scanned += len(postings)
            outcome.postings_by_term[term] = postings
            if running is None:
                running = postings
            elif conjunctive:
                running = running.intersect(postings)
                if not len(running):
                    outcome.early_exit = True
                    break
            else:
                running = running.union(postings)

        outcome.missing_terms = tuple(missing)
        if running is None or not len(running):
            return outcome

        candidates = running.doc_ids
        outcome.candidates = candidates
        if self.vectorized_scoring:
            bm25_scores = self._bm25_scores_bulk(plan, outcome.postings_by_term, candidates)
        else:
            bm25_scores = self.bm25.score_postings(
                list(plan.query.terms), outcome.postings_by_term, candidates
            )
        outcome.docs_scored = len(candidates)
        combined = self.combiner.combine(
            bm25_scores, self.page_ranks, self.statistics.document_count
        )
        top = self.combiner.top_k(combined, self.top_k)
        outcome.scores = top
        outcome.page_ranks = {doc_id: self.page_ranks.get(doc_id, 0.0) for doc_id in top}
        return outcome

    # -- document-at-a-time with MaxScore pruning ------------------------------------

    def _execute_maxscore(self, plan: QueryPlan) -> ExecutionOutcome:
        """Run the DAAT/MaxScore engine, degrading unreachable terms.

        A shard that becomes unreachable *mid-execution* (lazy cursor load —
        only possible on the disjunctive path, where shard fetches are
        deferred) is handled like an unreachable whole term on the eager
        path: the execution restarts with that term treated as missing.
        Restarts are bounded by the query's term count, and re-fetches hit
        the frontend's memoized readers and the posting cache.
        """
        broken: set = set()
        while True:
            try:
                return self._execute_maxscore_once(plan, broken)
            except _ShardUnreachable as exc:
                broken.add(exc.term)

    def _execute_maxscore_once(self, plan: QueryPlan, broken: set) -> ExecutionOutcome:
        outcome = ExecutionOutcome(mode=MODE_MAXSCORE)
        conjunctive = plan.query.is_conjunctive
        missing: List[str] = []
        cursors: List[_Cursor] = []
        # Feasible doc-id window for conjunctive queries: if a fetched list is
        # empty, or the window closes (all-lists doc-id ranges are disjoint),
        # the intersection is provably empty and the remaining fetches are
        # skipped — recovering most of TAAT's stop-fetching-early behaviour.
        # The window comes from manifests alone, so no shard content loads.
        window_low, window_high = 0, None

        for term in plan.ordered_terms:
            try:
                if term in broken:
                    raise TermNotFoundError(f"term {term!r} has an unreachable shard")
                postings = self.fetch_postings(term)
            except TermNotFoundError:
                missing.append(term)
                if conjunctive:
                    outcome.missing_terms = tuple(missing)
                    outcome.early_exit = True
                    return outcome
                continue
            outcome.terms_fetched += 1
            outcome.postings_by_term[term] = postings
            # The term's max impact on the *combined* score: its best BM25
            # contribution scaled by the combiner's text weight.
            scale, tf_constant = self.bm25.impact_parameters(term)
            scale *= self.combiner.bm25_weight
            ceilings_valid = (
                self.use_manifest_ceilings
                and self.rank_version is not None
                and self.rank_version >= 0
                and getattr(postings, "rank_version", -1) == self.rank_version
            )
            cursor = _Cursor(
                term, postings, scale, tf_constant,
                tf_denominator=self.bm25.tf_denominator,
                on_load=lambda: setattr(
                    outcome, "segments_loaded", outcome.segments_loaded + 1
                ),
                ceilings_valid=ceilings_valid,
            )
            if conjunctive:
                if cursor.min_doc_id is None:
                    outcome.missing_terms = tuple(missing)
                    outcome.early_exit = True
                    return outcome
                window_low = max(window_low, cursor.min_doc_id)
                window_high = (
                    cursor.max_doc_id
                    if window_high is None
                    else min(window_high, cursor.max_doc_id)
                )
                if window_low > window_high:
                    outcome.missing_terms = tuple(missing)
                    outcome.early_exit = True
                    return outcome
            cursors.append(cursor)

        outcome.missing_terms = tuple(missing)
        if not cursors:
            return outcome

        document_count = self.statistics.document_count
        # The global rank bound needs a max() over the corpus-sized rank
        # vector, so it is resolved lazily: only once the top-k heap is full
        # and pruning decisions actually need it.  A rank_bound_provider
        # (memoized against the rank-vector version by the frontend) replaces
        # the local max() entirely.
        rank_ub_memo: List[float] = []

        def rank_ub() -> float:
            if not rank_ub_memo:
                if self.rank_bound_provider is not None:
                    rank_ub_memo.append(self.rank_bound_provider())
                else:
                    rank_ub_memo.append(
                        self.combiner.rank_upper_bound(self.page_ranks, document_count)
                    )
            return rank_ub_memo[0]

        def rank_bound(lo: Optional[int] = None, hi: Optional[int] = None) -> float:
            """Rank-component bound for docs in [lo, hi] (global when lo=None).

            The range form needs a rank_range_provider; without one it
            falls back to the global bound — never tighter, always valid.
            """
            if lo is None or self.rank_range_provider is None:
                return rank_ub()
            return self.combiner.rank_component(
                self.rank_range_provider(lo, hi), document_count
            )

        def segment_rank_bound(segment: _Segment) -> float:
            """Rank bound for the documents *inside* one shard.

            Every document in a shard's doc-id range that carries its term
            lives in that shard, so the manifest's rank ceiling bounds the
            rank of any document the shard can contribute.  Both the range
            bound and the ceiling are valid upper bounds; take the tighter
            — on a frontend with no rank vector materialised, the ceiling
            is the only range-level signal available.
            """
            bound = rank_bound(segment.lo, segment.hi)
            if segment.rank_ceiling >= 0.0:
                bound = min(
                    bound,
                    self.combiner.rank_component(segment.rank_ceiling, document_count),
                )
            return bound

        # Min-heap of (score, -doc_id): the root is the weakest member of the
        # current top-k under the same (-score, doc_id) order the reference
        # path sorts by, so strict bound comparisons preserve exact ties.
        heap: List[Tuple[float, int]] = []

        if conjunctive:
            if self.vectorized_scoring:
                self._vec_and(
                    plan, cursors, heap, rank_bound, segment_rank_bound,
                    window_low, window_high, outcome,
                )
            else:
                self._daat_and(
                    plan, cursors, heap, rank_bound, segment_rank_bound,
                    window_low, window_high, outcome,
                )
        elif self.vectorized_scoring:
            self._vec_or(plan, cursors, heap, outcome)
        else:
            self._daat_or(plan, cursors, heap, rank_bound, segment_rank_bound, outcome)

        ordered = sorted(heap, key=lambda item: (-item[0], -item[1]))
        outcome.scores = {-neg_doc_id: score for score, neg_doc_id in ordered}
        outcome.page_ranks = {
            doc_id: self.page_ranks.get(doc_id, 0.0) for doc_id in outcome.scores
        }
        return outcome

    def _score_exact(self, plan: QueryPlan, doc_id: int, found: Dict[str, int]) -> float:
        """The combined score, computed with the same arithmetic as TAAT."""
        per_doc = {term: found.get(term, 0) for term in plan.query.terms}
        text = self.bm25.score_document(doc_id, per_doc)
        rank = self.page_ranks.get(doc_id, 0.0)
        return self.combiner.bm25_weight * text + self.combiner.rank_component(
            rank, self.statistics.document_count
        )

    def _offer(self, heap: List[Tuple[float, int]], doc_id: int, score: float) -> None:
        entry = (score, -doc_id)
        if len(heap) < self.top_k:
            heapq.heappush(heap, entry)
        elif entry > heap[0]:
            heapq.heapreplace(heap, entry)

    def _daat_and(
        self,
        plan: QueryPlan,
        cursors: List[_Cursor],
        heap: List[Tuple[float, int]],
        rank_bound: Callable[..., float],
        segment_rank_bound: Callable[[_Segment], float],
        window_low: int,
        window_high: Optional[int],
        outcome: ExecutionOutcome,
    ) -> None:
        """Drive the shortest list, gallop the others, prune by bounds.

        The driver is clamped to the feasible window, whole driver shards
        whose range-bound cannot beat the threshold are skipped unscanned,
        and surviving candidates are pruned by their actual-frequency bound
        — all strict comparisons, so results match TAAT exactly.
        """
        cursors.sort(key=len)
        driver, others = cursors[0], cursors[1:]
        total_ub = sum(cursor.upper_bound for cursor in cursors)
        full = self.top_k

        def remaining_rank() -> float:
            # A conjunctive candidate appears in *every* list, so its rank
            # is bounded by each cursor's remaining manifest ceiling — take
            # the min, and tighten the (suffix) rank bound with it.  Usable
            # only while every cursor's remaining ceilings are valid; an
            # exhausted cursor bounds at 0 (the intersection is over).
            bound = rank_bound(driver.current if not driver.exhausted else None)
            ceilings = [cursor.remaining_rank_ceiling() for cursor in cursors]
            if all(ceiling >= 0.0 for ceiling in ceilings):
                bound = min(
                    bound,
                    self.combiner.rank_component(
                        min(ceilings), self.statistics.document_count
                    ),
                )
            return bound

        if window_low > 0:
            outcome.postings_scanned += driver.seek(window_low)
        while not driver.exhausted:
            doc_id = driver.current
            if window_high is not None and doc_id > window_high:
                outcome.docs_pruned += driver.remaining()
                outcome.early_exit = True
                return
            threshold = heap[0][0] if len(heap) == full else None
            if threshold is not None:
                # Suffix rank bound (best rank at or after the cursor): an
                # O(log buckets) query, cheap enough per posting, and it
                # tightens monotonically as the driver advances.  (The
                # windowed range form would be tighter still but scans
                # buckets linearly — too hot for this loop.)
                if total_ub * _BOUND_SLACK + remaining_rank() < threshold:
                    # Even a document matching every term at max impact with
                    # the best rank remaining in the window cannot displace
                    # the current top-k.
                    outcome.docs_pruned += driver.remaining()
                    outcome.early_exit = True
                    return
                if driver.at_segment_start:
                    # Per-shard bound over the driver shard's doc-id range:
                    # the driver's own shard bound plus every other term's
                    # max impact *within that range* (their overlapping
                    # shards' quantized bounds, tighter than whole-list
                    # max-tf), plus the best rank in the range.  Below
                    # threshold, the whole shard is skipped without scanning
                    # — or fetching — it.
                    segment = driver.current_segment
                    segment_bound = driver.bounds[driver.seg] + sum(
                        other.range_bound(segment.lo, segment.hi) for other in others
                    )
                    if (
                        segment_bound * _BOUND_SLACK + segment_rank_bound(segment)
                        < threshold
                    ):
                        outcome.docs_pruned += driver.skip_segment()
                        outcome.shards_skipped += 1
                        continue
            outcome.postings_scanned += 1
            frequency = driver.current_frequency
            found = {driver.term: frequency}
            text_bound = driver.impact(frequency)
            present = True
            for other in others:
                outcome.postings_scanned += other.seek(doc_id)
                if other.exhausted or other.current != doc_id:
                    present = False
                    break
                other_frequency = other.current_frequency
                found[other.term] = other_frequency
                text_bound += other.impact(other_frequency)
            if not present:
                driver.advance()
                continue
            outcome.candidates.append(doc_id)
            rank_part = self.combiner.rank_component(
                self.page_ranks.get(doc_id, 0.0), self.statistics.document_count
            )
            # The document's frequencies are known here, so the bound uses its
            # actual impacts (length-free), far tighter than the max-tf sum.
            if (
                len(heap) == full
                and text_bound * _BOUND_SLACK + rank_part < heap[0][0]
            ):
                outcome.docs_pruned += 1
                driver.advance()
                continue
            self._offer(heap, doc_id, self._score_exact(plan, doc_id, found))
            outcome.docs_scored += 1
            driver.advance()

    def _daat_or(
        self,
        plan: QueryPlan,
        cursors: List[_Cursor],
        heap: List[Tuple[float, int]],
        rank_bound: Callable[..., float],
        segment_rank_bound: Callable[[_Segment], float],
        outcome: ExecutionOutcome,
    ) -> None:
        """Classic MaxScore: essential lists drive, non-essential only confirm.

        Cursors are ordered by their *remaining* bound (the max over their
        unconsumed shards); the *non-essential* prefix is the longest prefix
        whose summed bounds (plus the rank bound over the remaining doc-id
        space) stay strictly below the top-k threshold — documents appearing
        only there can never enter the top-k, so their lists are never
        enumerated, only probed for documents the essential lists surface.
        As cursors consume their high-impact shards their remaining bounds
        drop, demoting them to non-essential earlier than whole-list bounds
        would; and an essential cursor's next shard is skipped outright when
        every term's range bound plus the best rank in the shard's range
        cannot reach the threshold.
        """
        full = self.top_k
        last_candidate = -1

        while True:
            active = [cursor for cursor in cursors if not cursor.exhausted]
            if not active:
                return
            # Remaining bounds change as shards are consumed, so the order
            # and prefix sums are recomputed per round (query terms are few).
            active.sort(key=lambda cursor: cursor.remaining_bound())
            prefix: List[float] = []
            running = 0.0
            for cursor in active:
                running += cursor.remaining_bound()
                prefix.append(running)
            threshold = heap[0][0] if len(heap) == full else None
            first_essential = 0
            if threshold is not None:
                remaining_rank = rank_bound(last_candidate + 1)
                # Every future candidate surfaces from some active list, so
                # its rank is bounded by the *max* over the active cursors'
                # remaining manifest ceilings — usable only while every
                # active cursor's remaining ceilings are valid (one unknown
                # list could surface an arbitrarily-ranked document).
                ceilings = [cursor.remaining_rank_ceiling() for cursor in active]
                if all(ceiling >= 0.0 for ceiling in ceilings):
                    remaining_rank = min(
                        remaining_rank,
                        self.combiner.rank_component(
                            max(ceilings), self.statistics.document_count
                        ),
                    )
                if prefix[-1] * _BOUND_SLACK + remaining_rank < threshold:
                    # Even a document in every remaining shard at max impact
                    # with the best remaining rank cannot displace the top-k.
                    outcome.early_exit = True
                    return
                while (
                    first_essential < len(active) - 1
                    and prefix[first_essential] * _BOUND_SLACK + remaining_rank < threshold
                ):
                    first_essential += 1
            essential = active[first_essential:]
            candidate = None
            for cursor in essential:
                # A list promoted from non-essential may still point at an
                # already-evaluated document; skip it forward so candidates
                # are strictly increasing and no document is offered twice.
                if not cursor.exhausted and cursor.current <= last_candidate:
                    outcome.postings_scanned += cursor.seek(last_candidate + 1)
                if threshold is not None:
                    # Shard skip: no document in this shard's doc-id range —
                    # whichever lists it appears in — can reach the top-k, so
                    # this list's postings there are never enumerated.  A
                    # skipped document surfacing via *another* essential list
                    # is scored without this list's contribution, which is
                    # sound: the range bound proves its full score stays
                    # strictly below the threshold, so the offer is rejected
                    # either way.
                    while not cursor.exhausted and cursor.at_segment_start:
                        segment = cursor.current_segment
                        shard_bound = sum(
                            other.range_bound(segment.lo, segment.hi) for other in active
                        )
                        if (
                            shard_bound * _BOUND_SLACK
                            + segment_rank_bound(segment)
                            < threshold
                        ):
                            # Counted in shards_skipped only: a document can
                            # sit in several lists' skipped segments, so
                            # adding postings here would double-count what
                            # docs_pruned means (documents) elsewhere.
                            cursor.skip_segment()
                            outcome.shards_skipped += 1
                        else:
                            break
                if not cursor.exhausted:
                    current = cursor.current
                    if candidate is None or current < candidate:
                        candidate = current
            if candidate is None:
                return
            last_candidate = candidate

            found: Dict[str, int] = {}
            rank_part = self.combiner.rank_component(
                self.page_ranks.get(candidate, 0.0), self.statistics.document_count
            )
            # Known impacts for the essential lists containing the candidate;
            # for the non-essential lists it *might* appear in, the shard
            # bound at the candidate's position (tighter than whole-list).
            text_bound = sum(
                cursor.range_bound(candidate, candidate)
                for cursor in active[:first_essential]
            )
            for cursor in essential:
                if not cursor.exhausted and cursor.current == candidate:
                    frequency = cursor.current_frequency
                    found[cursor.term] = frequency
                    text_bound += cursor.impact(frequency)
                    cursor.advance()
                    outcome.postings_scanned += 1
            outcome.candidates.append(candidate)

            if threshold is not None and text_bound * _BOUND_SLACK + rank_part < threshold:
                outcome.docs_pruned += 1
                continue
            for cursor in active[:first_essential]:
                outcome.postings_scanned += cursor.seek(candidate)
                if not cursor.exhausted and cursor.current == candidate:
                    found[cursor.term] = cursor.current_frequency
            self._offer(heap, candidate, self._score_exact(plan, candidate, found))
            outcome.docs_scored += 1

    # -- vectorized scoring (numpy array hot loops, same results) --------------------
    #
    # Bit-identity argument shared by the three paths below: candidates are
    # scored through BM25Scorer.score_batch, whose elementwise operations
    # replicate score_document's float64 expression order; the rank
    # component stays scalar per candidate (math.log1p has no ufunc twin
    # with guaranteed-identical rounding); and the final combination
    # ``bm25_weight * text + rank_part`` is the same two operations the
    # scalar combiner applies.  Pruning decisions only ever use the same
    # strict bound comparisons at segment granularity, and the top-k of a
    # scored *superset* equals the scalar top-k: a candidate the scalar
    # path pruned had a proven score strictly below the then-current
    # threshold, so offering its exact score is always rejected.

    def _bm25_scores_bulk(
        self, plan: QueryPlan, postings_by_term: Mapping[str, Any], candidates: List[int]
    ) -> Dict[int, float]:
        """Vectorized twin of :meth:`BM25Scorer.score_postings` (taat mode)."""
        targets = _np.asarray(candidates, dtype=_np.int64)
        tf_arrays: Dict[str, Any] = {}
        for term, postings in postings_by_term.items():
            doc_ids, frequencies = postings.arrays()
            if not doc_ids:
                continue
            tf_arrays[term] = _gather_tf(
                _np.asarray(doc_ids, dtype=_np.int64),
                _np.asarray(frequencies, dtype=_np.float64),
                targets,
            )
        lengths = self.bm25.lengths_array(candidates)
        text = self.bm25.score_batch(list(plan.query.terms), tf_arrays, lengths)
        return dict(zip(candidates, text.tolist()))

    def _window_arrays(self, cursor: _Cursor, lo: int, hi: int) -> Tuple[Any, Any]:
        """Concatenated ``(ids, frequencies)`` of segments overlapping [lo, hi].

        Segment ranges are disjoint and ascending, so the concatenation is
        itself sorted — directly searchsorted-able.  Only overlapping
        segments load; on the conjunctive path these are exactly the
        window shards the frontend already prefetched eagerly.
        """
        position = bisect.bisect_right(cursor._segment_los, hi) - 1
        indices: List[int] = []
        while position >= 0:
            if cursor.segments[position].hi < lo:
                break
            indices.append(position)
            position -= 1
        id_parts, freq_parts = [], []
        for index in reversed(indices):
            arrays = cursor.segment_arrays(index)
            id_parts.append(_np.asarray(arrays[0], dtype=_np.int64))
            freq_parts.append(_np.asarray(arrays[1], dtype=_np.float64))
        if not id_parts:
            return (
                _np.empty(0, dtype=_np.int64),
                _np.empty(0, dtype=_np.float64),
            )
        return _np.concatenate(id_parts), _np.concatenate(freq_parts)

    def _offer_batch(
        self,
        plan: QueryPlan,
        candidates: Any,
        tf_arrays: Mapping[str, Any],
        heap: List[Tuple[float, int]],
        outcome: ExecutionOutcome,
    ) -> None:
        """Score a candidate array exactly and offer every entry to the heap."""
        cand_list = candidates.tolist()
        lengths = self.bm25.lengths_array(cand_list)
        text = self.bm25.score_batch(list(plan.query.terms), tf_arrays, lengths)
        rank_component = self.combiner.rank_component
        get_rank = self.page_ranks.get
        document_count = self.statistics.document_count
        rank_parts = _np.array(
            [rank_component(get_rank(doc_id, 0.0), document_count) for doc_id in cand_list],
            dtype=_np.float64,
        )
        combined = self.combiner.bm25_weight * text + rank_parts
        outcome.candidates.extend(cand_list)
        outcome.docs_scored += len(cand_list)
        for doc_id, score in zip(cand_list, combined.tolist()):
            self._offer(heap, doc_id, score)

    def _vec_and(
        self,
        plan: QueryPlan,
        cursors: List[_Cursor],
        heap: List[Tuple[float, int]],
        rank_bound: Callable[..., float],
        segment_rank_bound: Callable[[_Segment], float],
        window_low: int,
        window_high: Optional[int],
        outcome: ExecutionOutcome,
    ) -> None:
        """Segment-at-a-time conjunctive evaluation over numpy arrays.

        The scalar :meth:`_daat_and` loop's segment-level prunings (early
        exit on the total bound, whole-shard skips on range bounds) are
        kept verbatim; within a surviving driver segment the intersection
        is computed in one searchsorted pass per other term and every
        member is scored exactly — a superset of the documents the scalar
        path scores, hence identical top-k (see the section comment).
        Heap states agree at every segment boundary (both hold the top-k
        of the documents visited so far), so the skip decisions agree too.
        """
        cursors.sort(key=len)
        driver, others = cursors[0], cursors[1:]
        total_ub = sum(cursor.upper_bound for cursor in cursors)
        full = self.top_k
        document_count = self.statistics.document_count

        def remaining_rank() -> float:
            bound = rank_bound(driver.current if not driver.exhausted else None)
            ceilings = [cursor.remaining_rank_ceiling() for cursor in cursors]
            if all(ceiling >= 0.0 for ceiling in ceilings):
                bound = min(
                    bound,
                    self.combiner.rank_component(min(ceilings), document_count),
                )
            return bound

        if window_low > 0:
            outcome.postings_scanned += driver.seek(window_low)
        while not driver.exhausted:
            segment = driver.current_segment
            if window_high is not None and segment.lo > window_high:
                outcome.docs_pruned += driver.remaining()
                outcome.early_exit = True
                return
            threshold = heap[0][0] if len(heap) == full else None
            if threshold is not None:
                if total_ub * _BOUND_SLACK + remaining_rank() < threshold:
                    outcome.docs_pruned += driver.remaining()
                    outcome.early_exit = True
                    return
                if driver.at_segment_start:
                    segment_bound = driver.bounds[driver.seg] + sum(
                        other.range_bound(segment.lo, segment.hi) for other in others
                    )
                    if (
                        segment_bound * _BOUND_SLACK + segment_rank_bound(segment)
                        < threshold
                    ):
                        outcome.docs_pruned += driver.skip_segment()
                        outcome.shards_skipped += 1
                        continue
            ids_list, freqs_list = driver.segment_arrays(driver.seg)
            start = driver.offset
            ids = _np.asarray(ids_list[start:] if start else ids_list, dtype=_np.int64)
            driver_tf = _np.asarray(
                freqs_list[start:] if start else freqs_list, dtype=_np.float64
            )
            overflow = 0
            if window_high is not None and ids.size and int(ids[-1]) > window_high:
                keep = ids <= window_high
                overflow = int(ids.size - keep.sum())
                ids = ids[keep]
                driver_tf = driver_tf[keep]
            outcome.postings_scanned += int(ids.size)
            if ids.size:
                tf_arrays: Dict[str, Any] = {driver.term: driver_tf}
                present = _np.ones(ids.size, dtype=bool)
                lo, hi = int(ids[0]), int(ids[-1])
                for other in others:
                    other_ids, other_freqs = self._window_arrays(other, lo, hi)
                    tf = _gather_tf(other_ids, other_freqs, ids)
                    tf_arrays[other.term] = tf
                    # Postings always carry tf >= 1, so tf > 0 is membership.
                    present &= tf > 0.0
                if present.any():
                    scored_tf = {term: tf[present] for term, tf in tf_arrays.items()}
                    self._offer_batch(plan, ids[present], scored_tf, heap, outcome)
            if overflow:
                # Past the feasible window: everything after this point in
                # the driver is unmatchable, same as the scalar early exit.
                driver.seg += 1
                driver.offset = 0
                outcome.docs_pruned += overflow + driver.remaining()
                outcome.early_exit = True
                return
            driver.seg += 1
            driver.offset = 0

    def _vec_or(
        self,
        plan: QueryPlan,
        cursors: List[_Cursor],
        heap: List[Tuple[float, int]],
        outcome: ExecutionOutcome,
    ) -> None:
        """Disjunctive evaluation: materialise, union, bulk-score everything.

        The scalar MaxScore prunings are skipped entirely — every segment
        loads and every union member is scored (``docs_scored`` counts the
        union, the documented diagnostic difference).  The exact scores of
        a superset of the scalar path's scored documents yield the same
        top-k; what the trade buys is one array pass instead of a python
        loop per posting, which E10 measures as docs-scored/sec.
        """
        sources = []
        id_parts = []
        for cursor in cursors:
            seg_ids, seg_freqs = [], []
            for position in range(len(cursor.segments)):
                arrays = cursor.segment_arrays(position)
                outcome.postings_scanned += len(arrays[0])
                seg_ids.append(_np.asarray(arrays[0], dtype=_np.int64))
                seg_freqs.append(_np.asarray(arrays[1], dtype=_np.float64))
            if not seg_ids:
                continue
            ids = _np.concatenate(seg_ids)
            frequencies = _np.concatenate(seg_freqs)
            sources.append((cursor.term, ids, frequencies))
            if ids.size:
                id_parts.append(ids)
        if not id_parts:
            return
        candidates = _np.unique(_np.concatenate(id_parts))
        tf_arrays = {
            term: _gather_tf(ids, frequencies, candidates)
            for term, ids, frequencies in sources
            if ids.size
        }
        self._offer_batch(plan, candidates, tf_arrays, heap, outcome)
