"""Keyword query parsing."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import QueryParseError
from repro.index.analysis import Analyzer

MODE_AND = "and"
MODE_OR = "or"


@dataclass(frozen=True)
class ParsedQuery:
    """A keyword query after analysis.

    ``terms`` have been through the same analyzer as the index; ``mode`` is
    conjunctive by default (the paper's "intersecting the matched inverted
    lists"), with ``OR`` supported as an explicit operator.
    """

    raw: str
    terms: Tuple[str, ...] = field(default_factory=tuple)
    mode: str = MODE_AND

    @property
    def is_conjunctive(self) -> bool:
        return self.mode == MODE_AND


def parse_query(raw: str, analyzer: Optional[Analyzer] = None) -> ParsedQuery:
    """Parse a raw query string into analyzed terms.

    Grammar: whitespace-separated keywords, with an optional ``OR`` keyword
    (uppercase) switching the whole query to disjunctive mode.  Raises
    :class:`QueryParseError` if nothing indexable remains after analysis.
    """
    if raw is None or not raw.strip():
        raise QueryParseError("empty query")
    analyzer = analyzer or Analyzer()
    mode = MODE_OR if " OR " in f" {raw} " else MODE_AND
    cleaned = raw.replace(" OR ", " ")
    terms: List[str] = []
    for term in analyzer.analyze(cleaned):
        if term not in terms:
            terms.append(term)
    if not terms:
        raise QueryParseError(f"query {raw!r} contains no indexable terms")
    return ParsedQuery(raw=raw, terms=tuple(terms), mode=mode)
