"""Search results and result pages."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

# How a page was produced (``ServingDiagnostics.served_from``).
SERVED_FULL = "full"                  # full distributed execution
SERVED_RESULT_CACHE = "result_cache"  # fresh-keyed result-cache hit
SERVED_DEGRADED = "degraded"          # stale result-cache replay under overload
SERVED_SHED = "shed"                  # rejected by admission control


@dataclass
class ServingDiagnostics:
    """The structured serving envelope of one response.

    Replaces the scattered per-frontend counters consumers used to poke at:
    every response says *how* it was produced, what it cost, and whether any
    exactness trade was taken.  The frontend fills the execution-side fields
    (``served_from`` of ``full``/``result_cache``, ``shards_fetched``, the
    loose-key flag); the serving layer (:class:`repro.serve.QueryService`)
    overwrites ``served_from`` for degraded/shed outcomes and adds the
    queueing fields.
    """

    served_from: str = SERVED_FULL
    # End-to-end latency including any queueing delay.  For a bare
    # frontend call this equals ``ResultPage.latency``; the serving layer
    # extends it by the admission-queue wait.
    latency: float = 0.0
    # Ticks spent waiting for a concurrency slot (0 off the serving path).
    queue_delay: float = 0.0
    # Doc-id-range shards actually loaded to answer (0 on cache serves).
    shards_fetched: int = 0
    # A loose-key result-cache hit whose exact statistics version had
    # drifted inside its bucket (the documented exactness trade).
    loose_hit: bool = False
    # Why admission rejected the request ("" unless served_from == "shed").
    shed_reason: str = ""

    @property
    def answered(self) -> bool:
        """Whether the response carries a usable page (anything but shed)."""
        return self.served_from != SERVED_SHED


@dataclass
class SearchResult:
    """One ranked hit."""

    doc_id: int
    score: float
    url: str = ""
    title: str = ""
    cid: str = ""
    owner: str = ""
    page_rank: float = 0.0
    snippet: str = ""


@dataclass
class AdPlacement:
    """One ad displayed next to the results."""

    ad_id: int
    advertiser: str
    keyword: str
    bid_per_click: int


@dataclass
class ResultPage:
    """Everything the frontend composes for one query."""

    query: str
    terms: Tuple[str, ...] = field(default_factory=tuple)
    results: List[SearchResult] = field(default_factory=list)
    ads: List[AdPlacement] = field(default_factory=list)
    total_candidates: int = 0
    latency: float = 0.0
    terms_missing: Tuple[str, ...] = field(default_factory=tuple)
    diagnostics: Dict[str, Any] = field(default_factory=dict)
    serving: ServingDiagnostics = field(default_factory=ServingDiagnostics)

    @property
    def result_count(self) -> int:
        return len(self.results)

    @property
    def doc_ids(self) -> List[int]:
        return [result.doc_id for result in self.results]

    def recall_against(self, expected_doc_ids: List[int]) -> float:
        """Fraction of ``expected_doc_ids`` present in this page (E3's metric)."""
        if not expected_doc_ids:
            return 1.0
        found = set(self.doc_ids)
        return sum(1 for doc_id in expected_doc_ids if doc_id in found) / len(expected_doc_ids)
