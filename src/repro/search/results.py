"""Search results and result pages."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple


@dataclass
class SearchResult:
    """One ranked hit."""

    doc_id: int
    score: float
    url: str = ""
    title: str = ""
    cid: str = ""
    owner: str = ""
    page_rank: float = 0.0
    snippet: str = ""


@dataclass
class AdPlacement:
    """One ad displayed next to the results."""

    ad_id: int
    advertiser: str
    keyword: str
    bid_per_click: int


@dataclass
class ResultPage:
    """Everything the frontend composes for one query."""

    query: str
    terms: Tuple[str, ...] = field(default_factory=tuple)
    results: List[SearchResult] = field(default_factory=list)
    ads: List[AdPlacement] = field(default_factory=list)
    total_candidates: int = 0
    latency: float = 0.0
    terms_missing: Tuple[str, ...] = field(default_factory=tuple)
    diagnostics: Dict[str, Any] = field(default_factory=dict)

    @property
    def result_count(self) -> int:
        return len(self.results)

    @property
    def doc_ids(self) -> List[int]:
        return [result.doc_id for result in self.results]

    def recall_against(self, expected_doc_ids: List[int]) -> float:
        """Fraction of ``expected_doc_ids`` present in this page (E3's metric)."""
        if not expected_doc_ids:
            return 1.0
        found = set(self.doc_ids)
        return sum(1 for doc_id in expected_doc_ids if doc_id in found) / len(expected_doc_ids)
