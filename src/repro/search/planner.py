"""Query planning: the order in which term posting lists are fetched and
intersected, plus the plan-level cost estimate the diagnostics report.

Fetching the rarest term first keeps the running intersection small, so later
(longer) lists are galloped into rather than scanned — and for conjunctive
queries an empty intermediate result lets the frontend skip the remaining
fetches entirely.  The naive (query order) plan is kept as the E1 ablation.

The execution-mode constants live here (rather than in the executor) so the
executor, frontend, and config can all name them without import cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Tuple

from repro.search.query import ParsedQuery

STRATEGY_RAREST_FIRST = "rarest_first"
STRATEGY_QUERY_ORDER = "query_order"

# Execution modes understood by the executor.  TAAT is the reference
# term-at-a-time intersect-then-score path; MAXSCORE is the document-at-a-time
# top-k engine with per-term upper-bound pruning.
MODE_TAAT = "taat"
MODE_MAXSCORE = "maxscore"
EXECUTION_MODES = (MODE_TAAT, MODE_MAXSCORE)


@dataclass
class QueryPlan:
    """The ordered terms plus the strategy that produced the order."""

    query: ParsedQuery
    ordered_terms: Tuple[str, ...] = field(default_factory=tuple)
    strategy: str = STRATEGY_RAREST_FIRST
    estimated_frequencies: Tuple[int, ...] = field(default_factory=tuple)
    # Shard fan-out estimate per ordered term (ceil(df / shard_size), 1 when
    # the deployment's shard size is unknown): the number of range-shard
    # content fetches a full resolution of each term would need.
    estimated_shards: Tuple[int, ...] = field(default_factory=tuple)

    @property
    def estimated_postings(self) -> int:
        """Total postings a full term-at-a-time evaluation would score.

        Reported in result-page diagnostics.  Compare it against
        ``docs_scored`` to see what pruning saved; ``postings_scanned`` is a
        different unit in maxscore mode (it counts cursor/gallop probes, not
        scored postings), so it is not directly comparable to this estimate.
        """
        return sum(self.estimated_frequencies)

    @property
    def estimated_shard_fetches(self) -> int:
        """Shard content fetches a full (skip-free) resolution would issue.

        Compare against the shards actually fetched to see what the
        feasible-window and per-shard-bound skips saved.
        """
        return sum(self.estimated_shards)


class QueryPlanner:
    """Builds a :class:`QueryPlan` from published document frequencies.

    ``df_lookup`` maps a term to its document frequency (0 for unknown terms);
    in QueenBee it is backed by the collection statistics published to
    decentralized storage, so planning costs no extra network round trips.
    ``shard_size`` is the deployment's doc-id-range shard size, used to
    estimate each term's shard fan-out (0 = unsharded: one shard per term).
    """

    def __init__(
        self,
        df_lookup: Callable[[str], int],
        strategy: str = STRATEGY_RAREST_FIRST,
        shard_size: int = 0,
    ) -> None:
        if strategy not in (STRATEGY_RAREST_FIRST, STRATEGY_QUERY_ORDER):
            raise ValueError(f"unknown planning strategy {strategy!r}")
        self.df_lookup = df_lookup
        self.strategy = strategy
        self.shard_size = shard_size

    def plan(self, query: ParsedQuery) -> QueryPlan:
        """Order the query's terms according to the configured strategy."""
        frequencies: List[Tuple[str, int]] = [
            (term, max(0, int(self.df_lookup(term)))) for term in query.terms
        ]
        if self.strategy == STRATEGY_RAREST_FIRST and query.is_conjunctive:
            frequencies.sort(key=lambda item: (item[1], item[0]))
        return QueryPlan(
            query=query,
            ordered_terms=tuple(term for term, _ in frequencies),
            strategy=self.strategy,
            estimated_frequencies=tuple(df for _, df in frequencies),
            estimated_shards=tuple(
                max(1, -(-df // self.shard_size)) if self.shard_size > 0 else 1
                for _, df in frequencies
            ),
        )
