"""Query planning: the order in which term posting lists are fetched and
intersected.

Fetching the rarest term first keeps the running intersection small, so later
(longer) lists are galloped into rather than scanned — and for conjunctive
queries an empty intermediate result lets the frontend skip the remaining
fetches entirely.  The naive (query order) plan is kept as the E1 ablation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Tuple

from repro.search.query import ParsedQuery

STRATEGY_RAREST_FIRST = "rarest_first"
STRATEGY_QUERY_ORDER = "query_order"


@dataclass
class QueryPlan:
    """The ordered terms plus the strategy that produced the order."""

    query: ParsedQuery
    ordered_terms: Tuple[str, ...] = field(default_factory=tuple)
    strategy: str = STRATEGY_RAREST_FIRST
    estimated_frequencies: Tuple[int, ...] = field(default_factory=tuple)


class QueryPlanner:
    """Builds a :class:`QueryPlan` from published document frequencies.

    ``df_lookup`` maps a term to its document frequency (0 for unknown terms);
    in QueenBee it is backed by the collection statistics published to
    decentralized storage, so planning costs no extra network round trips.
    """

    def __init__(
        self,
        df_lookup: Callable[[str], int],
        strategy: str = STRATEGY_RAREST_FIRST,
    ) -> None:
        if strategy not in (STRATEGY_RAREST_FIRST, STRATEGY_QUERY_ORDER):
            raise ValueError(f"unknown planning strategy {strategy!r}")
        self.df_lookup = df_lookup
        self.strategy = strategy

    def plan(self, query: ParsedQuery) -> QueryPlan:
        """Order the query's terms according to the configured strategy."""
        frequencies: List[Tuple[str, int]] = [
            (term, max(0, int(self.df_lookup(term)))) for term in query.terms
        ]
        if self.strategy == STRATEGY_RAREST_FIRST and query.is_conjunctive:
            frequencies.sort(key=lambda item: (item[1], item[0]))
        return QueryPlan(
            query=query,
            ordered_terms=tuple(term for term, _ in frequencies),
            strategy=self.strategy,
            estimated_frequencies=tuple(df for _, df in frequencies),
        )
