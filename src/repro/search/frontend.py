"""The QueenBee search frontend.

Ties together query parsing, planning, distributed posting-list retrieval,
ranking, and ad placement.  A frontend instance runs on a user's device (any
DWeb peer); it holds no index state of its own, only the handles needed to
reach the decentralized index and the ad contract.

Freshness: posting lists are fetched through the distributed index, which
validates cached shards against each term's index generation (the epoch
invalidation protocol) and lazily refreshes superseded entries — so a
frontend keeps returning update/delete-correct results without any
publisher-side notification.  Within one ``search_batch`` call the prefetched
lists are a consistent snapshot: queries in the batch see the index as of the
prefetch instant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Set

from repro.errors import QueryParseError, TermNotFoundError
from repro.index.analysis import Analyzer, tokenize
from repro.index.distributed import DistributedIndex
from repro.index.postings import PostingList
from repro.index.statistics import CollectionStatistics
from repro.ranking.bm25 import BM25Scorer
from repro.ranking.scoring import CombinedScorer
from repro.search.executor import QueryExecutor
from repro.search.planner import MODE_MAXSCORE, STRATEGY_RAREST_FIRST, QueryPlanner
from repro.search.query import ParsedQuery, parse_query
from repro.search.results import AdPlacement, ResultPage, SearchResult
from repro.sim.simulator import Simulator

# Resolves a doc_id to its metadata ({url, title, owner, cid, snippet}); the
# engine backs this with the document directory it publishes to the DHT.
MetadataResolver = Callable[[int], Dict[str, Any]]
# Returns the current page-rank vector (doc_id -> rank).
RankProvider = Callable[[], Mapping[int, float]]
# Returns the monotonic version of the rank vector (bumped per rank round);
# the frontend keys memoized rank-derived values (the MaxScore rank upper
# bound) on it so the O(corpus) max() is paid once per version, not per query.
RankVersionProvider = Callable[[], int]
# Returns active ads for a keyword (list of dicts like AdMarket.ads_for).
AdProvider = Callable[[str], List[Dict[str, Any]]]


@dataclass
class FrontendStats:
    """Per-frontend counters used by the latency/throughput experiment."""

    queries: int = 0
    failed_queries: int = 0
    empty_result_queries: int = 0
    batches: int = 0
    batch_term_occurrences: int = 0
    batch_unique_terms: int = 0
    latencies: List[float] = field(default_factory=list)

    def record(self, latency: float, result_count: int) -> None:
        self.queries += 1
        self.latencies.append(latency)
        if result_count == 0:
            self.empty_result_queries += 1

    @property
    def batch_fetches_amortized(self) -> int:
        """DHT lookups the batch API avoided by deduplicating terms."""
        return self.batch_term_occurrences - self.batch_unique_terms


class SearchFrontend:
    """A user-facing query endpoint.

    Parameters
    ----------
    simulator:
        Supplies the clock used to measure end-to-end query latency.
    index:
        The distributed index to fetch posting lists from.
    rank_provider:
        Callable returning the latest page-rank vector (fetched by the engine
        from decentralized storage and cached).
    rank_version_provider:
        Optional callable returning the rank vector's monotonic version.
        When given, the frontend memoizes the MaxScore rank upper bound per
        (version, corpus size) instead of recomputing the O(corpus) max()
        on every query.
    metadata_resolver:
        Callable mapping doc_id to display metadata.
    ad_provider:
        Callable returning ads for a keyword (usually ``contracts.ads_for``);
        omit it to run an ad-free frontend.
    """

    def __init__(
        self,
        simulator: Simulator,
        index: DistributedIndex,
        rank_provider: Optional[RankProvider] = None,
        rank_version_provider: Optional[RankVersionProvider] = None,
        metadata_resolver: Optional[MetadataResolver] = None,
        ad_provider: Optional[AdProvider] = None,
        analyzer: Optional[Analyzer] = None,
        statistics: Optional[CollectionStatistics] = None,
        top_k: int = 10,
        max_ads: int = 2,
        planning_strategy: str = STRATEGY_RAREST_FIRST,
        execution_mode: str = MODE_MAXSCORE,
        requester: Optional[str] = None,
        bm25: Optional[BM25Scorer] = None,
        combiner: Optional[CombinedScorer] = None,
    ) -> None:
        self.simulator = simulator
        self.index = index
        self.rank_provider = rank_provider or (lambda: {})
        self.rank_version_provider = rank_version_provider
        self.metadata_resolver = metadata_resolver or (lambda doc_id: {})
        self.ad_provider = ad_provider
        self.analyzer = analyzer or Analyzer()
        self._statistics = statistics
        self.top_k = top_k
        self.max_ads = max_ads
        self.planning_strategy = planning_strategy
        self.execution_mode = execution_mode
        self.requester = requester
        self.bm25 = bm25
        self.combiner = combiner or CombinedScorer()
        self.stats = FrontendStats()
        # Memo for the MaxScore rank upper bound, keyed by (rank version,
        # corpus size) — both inputs of the bound that can change between
        # queries.  Only populated when a rank_version_provider is wired.
        self._rank_bound_key: Optional[tuple] = None
        self._rank_bound = 0.0

    # -- statistics handling ------------------------------------------------------

    def refresh_statistics(self) -> CollectionStatistics:
        """Re-fetch the published collection statistics from the DWeb."""
        self._statistics = self.index.fetch_statistics(requester=self.requester)
        return self._statistics

    @property
    def statistics(self) -> CollectionStatistics:
        if self._statistics is None:
            self.refresh_statistics()
        return self._statistics

    # -- rank bound memoization ---------------------------------------------------

    def _rank_bound_provider(
        self, page_ranks: Mapping[int, float], document_count: int
    ) -> Optional[Callable[[], float]]:
        """A zero-arg provider of the global rank upper bound, or ``None``.

        Without a version provider the executor falls back to its own lazy
        per-query computation (unchanged behaviour for bare executors).  The
        bound stays lazy here too: the O(corpus) max() runs only when a query
        actually fills its top-k heap, then is reused until the rank vector's
        version — or the corpus size the bound normalizes by — changes.
        """
        if self.rank_version_provider is None:
            return None

        def provider() -> float:
            key = (self.rank_version_provider(), document_count)
            if self._rank_bound_key != key:
                self._rank_bound = self.combiner.rank_upper_bound(page_ranks, document_count)
                self._rank_bound_key = key
            return self._rank_bound

        return provider

    # -- the main entry point --------------------------------------------------------

    def search(self, raw_query: str) -> ResultPage:
        """Answer one keyword query, returning a composed result page."""
        started = self.simulator.now
        try:
            query = parse_query(raw_query, self.analyzer)
        except QueryParseError:
            self.stats.failed_queries += 1
            return ResultPage(query=raw_query, latency=0.0)
        return self._run_query(raw_query, query, started)

    def search_batch(self, raw_queries: Sequence[str]) -> List[ResultPage]:
        """Answer a stream of queries, amortizing DHT lookups across them.

        The batch is parsed up front, the union of distinct terms is fetched
        once (one DHT lookup + content fetch per *unique* term instead of per
        occurrence), and every query then executes against the prefetched
        lists.  With a Zipfian query stream the deduplication alone removes
        most of the network cost; the posting cache extends the saving across
        batches.

        Each page's ``latency`` includes an equal share of the shared
        prefetch time, so batched and sequential latencies feed the same
        histograms comparably (their sum equals the batch wall time).
        """
        started = self.simulator.now
        parsed: List[Optional[ParsedQuery]] = []
        term_occurrences = 0
        wanted: Set[str] = set()
        for raw_query in raw_queries:
            try:
                query = parse_query(raw_query, self.analyzer)
            except QueryParseError:
                self.stats.failed_queries += 1
                parsed.append(None)
                continue
            parsed.append(query)
            term_occurrences += len(query.terms)
            wanted.update(query.terms)

        prefetched: Dict[str, PostingList] = {}
        missing: Set[str] = set()
        for term in sorted(wanted):
            try:
                prefetched[term] = self.index.fetch_term(term, requester=self.requester)
            except TermNotFoundError:
                missing.add(term)

        self.stats.batches += 1
        self.stats.batch_term_occurrences += term_occurrences
        self.stats.batch_unique_terms += len(wanted)
        parsed_count = sum(1 for query in parsed if query is not None)
        prefetch_share = (
            (self.simulator.now - started) / parsed_count if parsed_count else 0.0
        )

        def fetch(term: str) -> PostingList:
            postings = prefetched.get(term)
            if postings is None:
                if term in missing:
                    raise TermNotFoundError(f"term {term!r} has no published shard")
                # Terms can slip past prefetching only via a refreshed parse;
                # fall back to the index rather than failing the query.
                postings = self.index.fetch_term(term, requester=self.requester)
                prefetched[term] = postings
            return postings

        pages: List[ResultPage] = []
        for raw_query, query in zip(raw_queries, parsed):
            if query is None:
                pages.append(ResultPage(query=raw_query, latency=0.0))
                continue
            query_started = self.simulator.now
            pages.append(
                self._run_query(
                    raw_query, query, query_started, fetcher=fetch,
                    extra_latency=prefetch_share,
                )
            )
        batch_latency = self.simulator.now - started
        for page in pages:
            page.diagnostics["batch_latency"] = batch_latency
            page.diagnostics["batch_unique_terms"] = len(wanted)
            page.diagnostics["batch_term_occurrences"] = term_occurrences
        return pages

    def _run_query(
        self,
        raw_query: str,
        query: ParsedQuery,
        started: float,
        fetcher: Optional[Callable[[str], PostingList]] = None,
        extra_latency: float = 0.0,
    ) -> ResultPage:
        statistics = self.statistics
        planner = QueryPlanner(statistics.df, strategy=self.planning_strategy)
        plan = planner.plan(query)
        page_ranks = self.rank_provider()
        executor = QueryExecutor(
            fetch_postings=fetcher
            or (lambda term: self.index.fetch_term(term, requester=self.requester)),
            statistics=statistics,
            page_ranks=page_ranks,
            bm25=self.bm25 or BM25Scorer(statistics),
            combiner=self.combiner,
            top_k=self.top_k,
            mode=self.execution_mode,
            rank_bound_provider=self._rank_bound_provider(
                page_ranks, statistics.document_count
            ),
        )
        outcome = executor.execute(plan)

        results = []
        for doc_id, score in outcome.scores.items():
            metadata = self.metadata_resolver(doc_id) or {}
            results.append(
                SearchResult(
                    doc_id=doc_id,
                    score=score,
                    url=metadata.get("url", ""),
                    title=metadata.get("title", ""),
                    cid=metadata.get("cid", ""),
                    owner=metadata.get("owner", ""),
                    page_rank=outcome.page_ranks.get(doc_id, 0.0),
                    snippet=metadata.get("snippet", ""),
                )
            )
        results.sort(key=lambda r: (-r.score, r.doc_id))

        # Ads are keyed on the advertiser's raw keywords, so match them against
        # the user's raw tokens rather than the stemmed index terms.
        ads = self._select_ads(tuple(tokenize(raw_query)) + query.terms)
        latency = self.simulator.now - started + extra_latency
        page = ResultPage(
            query=raw_query,
            terms=query.terms,
            results=results,
            ads=ads,
            total_candidates=len(outcome.candidates),
            latency=latency,
            terms_missing=outcome.missing_terms,
            diagnostics={
                "plan_strategy": plan.strategy,
                "execution_mode": outcome.mode,
                "terms_fetched": outcome.terms_fetched,
                "estimated_postings": plan.estimated_postings,
                "postings_scanned": outcome.postings_scanned,
                "docs_scored": outcome.docs_scored,
                "docs_pruned": outcome.docs_pruned,
                "early_exit": outcome.early_exit,
            },
        )
        self.stats.record(latency, page.result_count)
        return page

    # -- ads -----------------------------------------------------------------------------

    def _select_ads(self, terms) -> List[AdPlacement]:
        if self.ad_provider is None or self.max_ads <= 0:
            return []
        placements: List[AdPlacement] = []
        seen_ids = set()
        for term in terms:
            for ad in self.ad_provider(term):
                ad_id = ad.get("ad_id")
                if ad_id in seen_ids:
                    continue
                placements.append(
                    AdPlacement(
                        ad_id=ad_id,
                        advertiser=ad.get("advertiser", ""),
                        keyword=term,
                        bid_per_click=ad.get("bid_per_click", 0),
                    )
                )
                seen_ids.add(ad_id)
                if len(placements) >= self.max_ads:
                    return placements
        return placements
