"""The QueenBee search frontend.

Ties together query parsing, planning, distributed posting-list retrieval,
ranking, and ad placement.  A frontend instance runs on a user's device (any
DWeb peer); it holds no index state of its own, only the handles needed to
reach the decentralized index and the ad contract.

Term resolution and overlap
---------------------------
A term resolves to its **shard manifest** (one DHT lookup under
``idx:<term>``) plus the content fetches of the doc-id-range shards the
query actually needs (see :mod:`repro.index.distributed` for the layout).
The frontend issues these as an *overlapped* prefetch through the
simulator's parallel regions: first all manifest lookups concurrently, then
all needed shard fetches concurrently, so resolution latency is bounded by
the slowest single chain instead of the sum over terms and shards.  For
conjunctive queries the manifests alone determine the feasible doc-id
window, and shards outside it are never fetched.  ``search_batch`` extends
the same overlap across the union of a whole batch's distinct terms — batch
prefetch latency drops by roughly the unique-term fan-out versus the
sequential prefetch (``overlapped_prefetch=False``, the E10 ablation) — and
then executes the per-query work in a parallel region too, so batch wall
time is the shared prefetch plus the slowest query.  Shard fetches are
placement-routed by the index (least-loaded live provider from the
manifest's replica hints), which is what keeps the parallel queries from
contending on a single peer for a head term's shards.

Caching layers
--------------
Below the frontend, the per-shard posting cache absorbs repeated shard
fetches (validated by the index-epoch protocol, so update/delete-correct
results need no publisher-side notification).  Above it, an optional
**result cache** stores whole top-k pages keyed by (normalized query, the
max index generation across its terms, rank version, statistics version) —
any republish, rank round, or corpus change shifts the key, so stale pages
are never served.  Ads are re-selected on every hit; only the ranked
results are reused.

Within one ``search_batch`` call the prefetched lists are a consistent
snapshot: queries in the batch see the index as of the prefetch instant.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, Hashable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.errors import QueryParseError, TermNotFoundError
from repro.index.analysis import Analyzer, tokenize
from repro.index.distributed import DistributedIndex
from repro.index.statistics import CollectionStatistics
from repro.ranking.bm25 import BM25Scorer
from repro.ranking.scoring import CombinedScorer, RankRangeIndex
from repro.search.executor import QueryExecutor
from repro.search.planner import MODE_MAXSCORE, STRATEGY_RAREST_FIRST, QueryPlanner
from repro.search.query import ParsedQuery, parse_query
from repro.search.result_cache import ResultCache
from repro.search.results import (
    SERVED_DEGRADED,
    SERVED_RESULT_CACHE,
    AdPlacement,
    ResultPage,
    SearchResult,
    ServingDiagnostics,
)
from repro.sim.simulator import Simulator

# Resolves a doc_id to its metadata ({url, title, owner, cid, snippet}); the
# engine backs this with the document directory it publishes to the DHT.
MetadataResolver = Callable[[int], Dict[str, Any]]
# Returns the current page-rank vector (doc_id -> rank).
RankProvider = Callable[[], Mapping[int, float]]
# Returns the monotonic version of the rank vector (bumped per rank round);
# the frontend keys memoized rank-derived values (the MaxScore rank upper
# bound, result-cache entries) on it so they are re-derived once per version,
# not per query.
RankVersionProvider = Callable[[], int]
# Returns active ads for a keyword (list of dicts like AdMarket.ads_for).
AdProvider = Callable[[str], List[Dict[str, Any]]]

# Geometric grid for the loose result-cache key's statistics buckets: df and
# avgdl within one bucket are treated as "the same" for reuse purposes.
_LOOSE_BUCKET_RATIO = 1.25


def _loose_bucket(value: float) -> int:
    """Geometric bucket index of a BM25 statistic (0 for non-positive)."""
    if value <= 0:
        return 0
    return 1 + math.floor(math.log(value) / math.log(_LOOSE_BUCKET_RATIO))


@dataclass
class FrontendOptions:
    """Every behavioural knob of one :class:`SearchFrontend`, in one object.

    This is the construction surface: :meth:`QueenBeeEngine.create_frontend`,
    the serving layer, and the benchmarks all describe the frontend they
    want with a ``FrontendOptions`` (usually :meth:`from_config` plus field
    overrides) instead of threading individual keyword arguments through
    every layer.  Wiring — the index, providers, simulator — stays on the
    constructor; *policy* lives here.
    """

    top_k: int = 10
    overlapped_prefetch: bool = True
    # Rank-pruning sources (see SearchFrontend docstring): manifest-stamped
    # per-shard rank ceilings, and/or the frontend-built RankRangeIndex.
    use_rank_ceilings: bool = True
    use_rank_range_index: bool = True
    result_cache_capacity: int = 0
    result_cache_loose_keys: bool = False
    # Numpy array decode/score hot loops in the executor; the scalar path
    # is the bit-identical reference (pages never change, only speed).
    vectorized_scoring: bool = False

    @classmethod
    def from_config(cls, config, **overrides) -> "FrontendOptions":
        """Defaults taken from a :class:`~repro.core.config.QueenBeeConfig`.

        On the gossip metadata plane the RankRangeIndex default flips off:
        remote frontends prune from manifest ceilings and should not
        materialise the rank vector per rank round.  ``overrides`` replace
        individual fields (unknown names raise ``TypeError``).
        """
        options = cls(
            top_k=config.top_k,
            overlapped_prefetch=config.overlapped_prefetch,
            use_rank_ceilings=True,
            use_rank_range_index=config.metadata_plane != "gossip",
            result_cache_capacity=config.result_cache_capacity,
            result_cache_loose_keys=config.result_cache_loose_keys,
            vectorized_scoring=config.vectorized_scoring,
        )
        return replace(options, **overrides) if overrides else options


@dataclass
class FrontendStats:
    """Per-frontend counters used by the latency/throughput experiment."""

    queries: int = 0
    failed_queries: int = 0
    empty_result_queries: int = 0
    batches: int = 0
    batch_term_occurrences: int = 0
    batch_unique_terms: int = 0
    prefetch_regions: int = 0
    parallel_query_regions: int = 0
    shards_prefetched: int = 0
    shards_window_skipped: int = 0
    result_cache_hits: int = 0
    result_cache_misses: int = 0
    # Hits served under a loose key whose *exact* statistics version had
    # moved inside the bucket — the pages the exactness trade-off actually
    # touched (scores may differ in low-order digits from a fresh run).
    result_cache_loose_hits: int = 0
    latencies: List[float] = field(default_factory=list)

    def record(self, latency: float, result_count: int) -> None:
        self.queries += 1
        self.latencies.append(latency)
        if result_count == 0:
            self.empty_result_queries += 1

    @property
    def batch_fetches_amortized(self) -> int:
        """DHT lookups the batch API avoided by deduplicating terms."""
        return self.batch_term_occurrences - self.batch_unique_terms


class SearchFrontend:
    """A user-facing query endpoint.

    Parameters
    ----------
    simulator:
        Supplies the clock used to measure end-to-end query latency and the
        parallel regions the overlapped prefetch runs in.
    index:
        The distributed index to fetch posting lists from.  Indexes exposing
        the sharded interface (``fetch_term_sharded``) get lazy shard-level
        resolution; anything with a plain ``fetch_term`` still works.
    rank_provider:
        Callable returning the latest page-rank vector (fetched by the engine
        from decentralized storage and cached).
    rank_version_provider:
        Optional callable returning the rank vector's monotonic version.
        When given, the frontend memoizes the MaxScore rank upper bound per
        (version, corpus size) instead of recomputing the O(corpus) max()
        on every query, and result-cache keys include the version.
    metadata_resolver:
        Callable mapping doc_id to display metadata.
    ad_provider:
        Callable returning ads for a keyword (usually ``contracts.ads_for``);
        omit it to run an ad-free frontend.
    overlapped_prefetch:
        Issue manifest/shard lookups concurrently (default).  False restores
        the sequential prefetch — the ablation quantified in E10.
    result_cache_capacity:
        Entries in the top-k page cache; 0 (default) disables it.  The cache
        requires a ``rank_version_provider`` and an index exposing
        ``generation`` to build freshness-safe keys; without them it stays
        inert.
    result_cache_loose_keys:
        Key the result cache on BM25 statistic *buckets* (per-term df,
        avgdl) instead of the exact statistics version — more reuse under
        update-heavy streams, at the documented exactness trade (see
        ``_result_cache_key``).
    vectorized_scoring:
        Run the executor's numpy array decode/score hot loops instead of
        the scalar per-posting loops.  Pages are bit-identical either way
        (asserted in tests and the E10 bench); only throughput changes.
    shard_size_hint:
        The deployment's shard size, used only for the planner's shard
        fan-out estimate in diagnostics (0 = unknown/unsharded).
    metadata_view:
        The frontend's gossiped metadata view (gossip plane only): pinned
        per batch for torn-read-free prefetches, consulted for statistics
        freshness.  ``None`` on the shared plane.
    use_rank_ceilings / use_rank_range_index:
        Which rank-pruning sources the executor gets: manifest-published
        per-shard rank ceilings (no rank-vector materialisation; the
        primary path) and/or the frontend-built RankRangeIndex (the
        fallback/ablation, off for remote frontends).
    """

    def __init__(
        self,
        simulator: Simulator,
        index: DistributedIndex,
        rank_provider: Optional[RankProvider] = None,
        rank_version_provider: Optional[RankVersionProvider] = None,
        metadata_resolver: Optional[MetadataResolver] = None,
        ad_provider: Optional[AdProvider] = None,
        analyzer: Optional[Analyzer] = None,
        statistics: Optional[CollectionStatistics] = None,
        top_k: int = 10,
        max_ads: int = 2,
        planning_strategy: str = STRATEGY_RAREST_FIRST,
        execution_mode: str = MODE_MAXSCORE,
        requester: Optional[str] = None,
        bm25: Optional[BM25Scorer] = None,
        combiner: Optional[CombinedScorer] = None,
        overlapped_prefetch: bool = True,
        result_cache_capacity: int = 0,
        result_cache_loose_keys: bool = False,
        vectorized_scoring: bool = False,
        shard_size_hint: int = 0,
        metadata_view: Optional[Any] = None,
        use_rank_ceilings: bool = True,
        use_rank_range_index: bool = True,
        options: Optional[FrontendOptions] = None,
    ) -> None:
        # Policy knobs travel as one FrontendOptions; the individual keyword
        # arguments remain for direct (test) construction and are folded
        # into an options object when none is given.
        if options is None:
            options = FrontendOptions(
                top_k=top_k,
                overlapped_prefetch=overlapped_prefetch,
                use_rank_ceilings=use_rank_ceilings,
                use_rank_range_index=use_rank_range_index,
                result_cache_capacity=result_cache_capacity,
                result_cache_loose_keys=result_cache_loose_keys,
                vectorized_scoring=vectorized_scoring,
            )
        self.options = options
        self.simulator = simulator
        self.index = index
        self.rank_provider = rank_provider or (lambda: {})
        self.rank_version_provider = rank_version_provider
        self.metadata_resolver = metadata_resolver or (lambda doc_id: {})
        self.ad_provider = ad_provider
        self.analyzer = analyzer or Analyzer()
        self._statistics = statistics
        self.top_k = options.top_k
        self.max_ads = max_ads
        self.planning_strategy = planning_strategy
        self.execution_mode = execution_mode
        self.requester = requester
        self.bm25 = bm25
        self.combiner = combiner or CombinedScorer()
        self.overlapped_prefetch = options.overlapped_prefetch
        self.shard_size_hint = shard_size_hint
        self.result_cache = (
            ResultCache(options.result_cache_capacity)
            if options.result_cache_capacity > 0
            else None
        )
        self.result_cache_loose_keys = options.result_cache_loose_keys
        self.vectorized_scoring = options.vectorized_scoring
        # The gossiped metadata view this frontend reads (None on the shared
        # plane).  Used for two things here: search_batch pins it so every
        # query in the batch sees one consistent metadata version, and the
        # statistics property refreshes when the gossiped stats head moves.
        self.metadata_view = metadata_view
        # Rank-pruning sources.  use_rank_ceilings consumes the quantized
        # per-shard rank ceilings stamped into term manifests at
        # rank-publish time (works with no rank vector materialised);
        # use_rank_range_index additionally builds the frontend-side
        # RankRangeIndex from the full vector — the fallback/ablation, off
        # for remote (gossip-plane) frontends.
        self.use_rank_ceilings = options.use_rank_ceilings
        self.use_rank_range_index = options.use_rank_range_index
        self.stats = FrontendStats()
        # Memo for the MaxScore rank upper bound, keyed by (rank version,
        # corpus size) — both inputs of the bound that can change between
        # queries.  Only populated when a rank_version_provider is wired.
        self._rank_bound_key: Optional[tuple] = None
        self._rank_bound = 0.0
        # Memo for the doc-id-range rank index (shard-skip bounds), rebuilt
        # once per rank version — O(corpus) per rank round, not per query.
        self._rank_range_key: Optional[int] = None
        self._rank_range_index: Optional[RankRangeIndex] = None

    # -- statistics handling ------------------------------------------------------

    def refresh_statistics(self) -> CollectionStatistics:
        """Re-fetch the published collection statistics from the DWeb."""
        self._statistics = self.index.fetch_statistics(requester=self.requester)
        return self._statistics

    @property
    def statistics(self) -> CollectionStatistics:
        if self._statistics is None:
            self.refresh_statistics()
        elif self.metadata_view is not None:
            # Gossip-plane freshness: when the gossiped statistics head is
            # newer than the snapshot we fetched, re-fetch from the DWeb
            # (the DHT record is authoritative, so the fetched version is
            # always >= the gossiped one — no refresh loop).
            gossiped_version, _ = self.metadata_view.stats_head()
            if gossiped_version > self._statistics.version:
                self.refresh_statistics()
        return self._statistics

    # -- rank bound memoization ---------------------------------------------------

    def _rank_bound_provider(
        self, page_ranks: Mapping[int, float], document_count: int
    ) -> Optional[Callable[[], float]]:
        """A zero-arg provider of the global rank upper bound, or ``None``.

        Without a version provider the executor falls back to its own lazy
        per-query computation (unchanged behaviour for bare executors).  The
        bound stays lazy here too: the O(corpus) max() runs only when a query
        actually fills its top-k heap, then is reused until the rank vector's
        version — or the corpus size the bound normalizes by — changes.
        """
        if self.rank_version_provider is None:
            return None

        def provider() -> float:
            key = (self.rank_version_provider(), document_count)
            if self._rank_bound_key != key:
                self._rank_bound = self.combiner.rank_upper_bound(page_ranks, document_count)
                self._rank_bound_key = key
            return self._rank_bound

        return provider

    def _rank_range_provider(
        self, page_ranks: Mapping[int, float]
    ) -> Optional[Callable[[int, Optional[int]], float]]:
        """A ``(lo, hi) -> max rank in range`` provider, or ``None``.

        Backs the executor's per-shard rank bounds with a
        :class:`~repro.ranking.scoring.RankRangeIndex` rebuilt once per rank
        version.  Head terms' pruning hinges on it: their idf (hence text
        bound) is tiny, so whether a doc-id-range shard can reach the top-k
        threshold is decided by the best rank inside the shard's range.
        """
        if self.rank_version_provider is None:
            return None

        def provider(lo: int, hi: Optional[int] = None) -> float:
            key = self.rank_version_provider()
            if self._rank_range_key != key or self._rank_range_index is None:
                self._rank_range_index = RankRangeIndex(page_ranks)
                self._rank_range_key = key
            return self._rank_range_index.range_max(lo, hi)

        return provider

    # -- term prefetch -----------------------------------------------------------

    def _resolve_term(self, term: str) -> Any:
        """One term's postings: a lazy sharded reader when the index has one."""
        sharded = getattr(self.index, "fetch_term_sharded", None)
        if sharded is not None:
            return sharded(term, requester=self.requester)
        return self.index.fetch_term(term, requester=self.requester)

    def _run_region(self, thunks: List[Callable[[], Any]]) -> List[Any]:
        """Run prefetch branches, overlapped when configured and worthwhile."""
        if self.overlapped_prefetch and len(thunks) > 1:
            self.stats.prefetch_regions += 1
            return self.simulator.parallel_region(thunks)
        return [thunk() for thunk in thunks]

    def _prefetch_terms(
        self,
        terms: Sequence[str],
        conjunctive: bool = False,
        eager: bool = True,
    ) -> Tuple[Dict[str, Any], Set[str]]:
        """Resolve every distinct term, overlapping lookups and fetches.

        Phase one resolves manifests (one DHT lookup per term) concurrently;
        phase two fetches the needed shard contents concurrently.  For
        conjunctive queries the manifests' doc-id ranges bound the feasible
        window first, so shards no candidate can live in are never fetched.
        With ``eager=False`` (single disjunctive queries) phase two is
        skipped entirely: the executor's cursors load shards on demand, so
        shards that MaxScore's bounds retire — or that an early exit never
        reaches — are never fetched at all.  Returns the resolved readers
        plus the set of unknown terms.
        """
        unique = sorted(set(terms))
        readers: Dict[str, Any] = {}
        missing: Set[str] = set()

        def resolve_thunk(term: str) -> Callable[[], Any]:
            def run() -> Any:
                try:
                    return self._resolve_term(term)
                except TermNotFoundError:
                    return None
            return run

        resolved = self._run_region([resolve_thunk(term) for term in unique])
        for term, reader in zip(unique, resolved):
            if reader is None:
                missing.add(term)
            else:
                readers[term] = reader

        if not eager and not conjunctive:
            return readers, missing

        window: Optional[Tuple[int, int]] = None
        if conjunctive:
            if missing:
                # An AND query with an unknown term is empty; nothing to fetch.
                return readers, missing
            los, his = [], []
            for reader in readers.values():
                lo = getattr(reader, "min_doc_id", None)
                hi = getattr(reader, "max_doc_id", None)
                if lo is None or hi is None:
                    return readers, missing
                los.append(lo)
                his.append(hi)
            if los:
                window = (max(los), min(his))
                if window[0] > window[1]:
                    # Disjoint ranges: provably empty result, fetch nothing.
                    return readers, missing

        shard_thunks: List[Callable[[], Any]] = []

        def shard_thunk(term: str, reader: Any, index: int) -> Callable[[], Any]:
            def run() -> Optional[str]:
                # Branches must not raise inside a parallel region; an
                # unreachable shard degrades its whole term to missing, the
                # same as an unreachable term on the unsharded path (the
                # recall loss E3 measures).
                try:
                    reader.shard(index)
                    return None
                except TermNotFoundError:
                    return term
            return run

        for term, reader in readers.items():
            infos = getattr(reader, "shard_infos", None)
            if infos is None:
                continue  # plain PostingList: content already fetched
            for info in infos:
                if not info.count:
                    continue  # empty shard (kept for numbering): nothing to fetch
                if window is not None and (info.hi < window[0] or info.lo > window[1]):
                    self.stats.shards_window_skipped += 1
                    continue
                if not reader.loaded(info.index):
                    shard_thunks.append(shard_thunk(term, reader, info.index))
        if shard_thunks:
            for failed_term in self._run_region(shard_thunks):
                if failed_term is not None:
                    readers.pop(failed_term, None)
                    missing.add(failed_term)
            self.stats.shards_prefetched += len(shard_thunks)
        return readers, missing

    # -- result cache ------------------------------------------------------------

    def _result_cache_fingerprint(self, query: ParsedQuery) -> Hashable:
        """The freshness-free part of a query's cache identity.

        Pins only the query shape (sorted terms, mode, top_k) — the key the
        degraded path addresses the result cache by, deliberately ignoring
        index generations, the rank version, and statistics.
        """
        return (tuple(sorted(query.terms)), query.mode, self.top_k)

    def _result_cache_key(self, query: ParsedQuery) -> Optional[Hashable]:
        """A freshness-safe key for the query's page, or None when uncacheable.

        The key pins every input of the page: normalized query, the index
        generation of *each* of its terms (a republish of any one term
        shifts the key — a max() would let a lower-generation term change
        behind a higher one), the rank version, and the collection-
        statistics version (plus count/length so a *replaced* statistics
        object also shifts the key).

        With ``result_cache_loose_keys`` the statistics part is replaced by
        the BM25-relevant *buckets* — each term's df and the average
        document length (plus the document count) on a geometric grid — so
        an update-heavy stream whose statistics only drift inside a bucket
        keeps its reuse.  The trade is exactness: a loose hit may replay a
        page whose scores a fresh execution would perturb in low-order
        digits; such hits are counted in ``stats.result_cache_loose_hits``.
        Index generations and the rank version stay exact either way, so a
        republished term or a new rank round always misses.
        """
        if self.result_cache is None or self.rank_version_provider is None:
            return None
        generation_of = getattr(self.index, "generation", None)
        if generation_of is None:
            return None
        statistics = self.statistics
        terms = tuple(sorted(query.terms))
        if self.result_cache_loose_keys:
            statistics_part: Tuple[Hashable, ...] = (
                "loose",
                tuple(_loose_bucket(statistics.df(term)) for term in terms),
                _loose_bucket(statistics.document_count),
                _loose_bucket(statistics.average_length),
            )
        else:
            statistics_part = (
                statistics.version,
                statistics.document_count,
                statistics.total_length,
            )
        return (
            terms,
            tuple(generation_of(term) for term in terms),
            query.mode,
            self.top_k,
            self.rank_version_provider(),
            statistics_part,
        )

    def _page_from_cache(
        self, template: ResultPage, raw_query: str, started: float, extra_latency: float
    ) -> ResultPage:
        """Compose a response from a cached page template.

        Ranked results are shared (read-only); the per-request parts — raw
        query string, ads, latency, diagnostics — are rebuilt fresh.
        """
        ads = self._select_ads(tuple(tokenize(raw_query)) + template.terms)
        latency = self.simulator.now - started + extra_latency
        diagnostics = dict(template.diagnostics)
        diagnostics["result_cache"] = "hit"
        loose_hit = False
        if self.result_cache_loose_keys:
            # Internal bookkeeping only — not part of the page's surface.
            stored_version = diagnostics.pop("stats_version", None)
            if stored_version is not None and stored_version != self.statistics.version:
                # The loose key absorbed a statistics drift: the replayed
                # page is the documented approximation, count it.
                self.stats.result_cache_loose_hits += 1
                diagnostics["result_cache_loose"] = True
                loose_hit = True
        page = replace(
            template,
            query=raw_query,
            results=list(template.results),
            ads=ads,
            latency=latency,
            diagnostics=diagnostics,
            serving=ServingDiagnostics(
                served_from=SERVED_RESULT_CACHE,
                latency=latency,
                loose_hit=loose_hit,
            ),
        )
        self.stats.record(latency, page.result_count)
        return page

    # -- the main entry point --------------------------------------------------------

    def search(self, raw_query: str) -> ResultPage:
        """Answer one keyword query, returning a composed result page.

        Like ``search_batch``, the gossip view is pinned for the query's
        duration: a network RPC mid-query can fire a scheduled gossip
        round, and without the pin the result-cache key (computed at parse
        time) and the prefetch could validate against different feed
        versions.
        """
        started = self.simulator.now
        try:
            query = parse_query(raw_query, self.analyzer)
        except QueryParseError:
            self.stats.failed_queries += 1
            return ResultPage(query=raw_query, latency=0.0)
        view = self.metadata_view
        pin = getattr(view, "pin", None) if view is not None and not getattr(view, "pinned", False) else None
        if pin is not None:
            pin()
        try:
            return self._run_query(raw_query, query, started)
        finally:
            if pin is not None:
                view.unpin()

    def search_degraded(self, raw_query: str) -> Optional[ResultPage]:
        """A best-effort answer from the result cache, freshness ignored.

        The serving layer's degraded mode: when admission control decides
        the full path is over budget, the most recent page ever computed
        for this query shape is replayed — a purely local operation (no
        DHT lookups, no shard fetches; ads are re-selected from the local
        provider).  The page is tagged ``served_from="degraded"`` so the
        staleness is explicit.  Returns ``None`` when the frontend has no
        result cache, the query does not parse, or no page for the shape
        was ever stored — callers then shed instead.
        """
        if self.result_cache is None:
            return None
        started = self.simulator.now
        try:
            query = parse_query(raw_query, self.analyzer)
        except QueryParseError:
            return None
        template = self.result_cache.get_stale(self._result_cache_fingerprint(query))
        if template is None:
            return None
        ads = self._select_ads(tuple(tokenize(raw_query)) + template.terms)
        latency = self.simulator.now - started
        diagnostics = dict(template.diagnostics)
        diagnostics.pop("stats_version", None)
        diagnostics["result_cache"] = "degraded"
        return replace(
            template,
            query=raw_query,
            results=list(template.results),
            ads=ads,
            latency=latency,
            diagnostics=diagnostics,
            serving=ServingDiagnostics(served_from=SERVED_DEGRADED, latency=latency),
        )

    def search_batch(self, raw_queries: Sequence[str]) -> List[ResultPage]:
        """Answer a stream of queries, amortizing DHT lookups across them.

        The batch is parsed up front, the union of distinct terms (excluding
        queries the result cache already answers) is prefetched once with
        overlapped lookups, and every query then executes against the
        prefetched readers.  With a Zipfian query stream the deduplication
        alone removes most of the network cost; the posting and result
        caches extend the saving across batches.

        Batch prefetch is *eager* (every shard of every wanted term): the
        batch API optimises latency, and one overlapped region beats each
        query lazily pulling shards in sequence — the per-shard posting
        cache keeps eagerly-fetched shards free for the rest of the stream.
        Single disjunctive queries take the opposite trade (lazy loads, see
        :meth:`_prefetch_terms`).  If the result cache evicts an entry that
        was present at parse time, that query's terms resolve through the
        per-term fallback — a latency cost only, never a correctness one.

        After the shared prefetch the per-query executions themselves run in
        a parallel region (when ``overlapped_prefetch`` is on), so batch wall
        time is the prefetch plus the *slowest* query rather than the sum.
        This is safe because each query builds its own executor and cursors;
        the only state shared between branches is read-mostly — the
        prefetched readers (whose lazy shard memoization is an idempotent
        content fill) and the caches.  Queries that share a result-cache key
        are deduplicated first: only the first occurrence executes inside
        the region, and its duplicates replay after the region closes, so no
        branch ever reads a page a sibling branch stored (the
        :class:`~repro.sim.monitor.SharedStateMonitor` race detector checks
        exactly this).  Shard loads that do happen mid-execution
        are placement-routed to the least-loaded live provider, so parallel
        queries over the same head term fan out across its replica set
        instead of contending on one peer.

        Each page's ``latency`` is its own execution time plus an equal
        share of the shared prefetch time; with parallel execution the batch
        wall time is bounded by the slowest page, not the latency sum (the
        sequential ablation keeps the old additive behaviour).

        On the gossip metadata plane the batch additionally **pins** the
        frontend's gossip view for its whole duration: network RPCs inside
        the batch advance the simulated clock and can fire a scheduled
        gossip round mid-batch, and without the pin two queries for the
        same term could validate their cached manifest against *different*
        feed versions (a torn read across the shared prefetch).  Pinned,
        every query sees the metadata as of the batch's start; the round's
        new knowledge applies from the next batch.
        """
        view = self.metadata_view
        pin = getattr(view, "pin", None)
        if pin is not None:
            pin()
        try:
            return self._search_batch_pinned(raw_queries)
        finally:
            if pin is not None:
                view.unpin()

    def _search_batch_pinned(self, raw_queries: Sequence[str]) -> List[ResultPage]:
        started = self.simulator.now
        parsed: List[Optional[ParsedQuery]] = []
        keys: List[Optional[Hashable]] = []
        term_occurrences = 0
        wanted: Set[str] = set()
        for raw_query in raw_queries:
            try:
                query = parse_query(raw_query, self.analyzer)
            except QueryParseError:
                self.stats.failed_queries += 1
                parsed.append(None)
                keys.append(None)
                continue
            parsed.append(query)
            key = self._result_cache_key(query)
            keys.append(key)
            term_occurrences += len(query.terms)
            if key is not None and key in self.result_cache:
                # The page will be served from the result cache; don't spend
                # network on its terms (unless another query needs them).
                continue
            wanted.update(query.terms)

        readers, missing = self._prefetch_terms(sorted(wanted))

        self.stats.batches += 1
        self.stats.batch_term_occurrences += term_occurrences
        self.stats.batch_unique_terms += len(wanted)
        parsed_count = sum(1 for query in parsed if query is not None)
        prefetch_share = (
            (self.simulator.now - started) / parsed_count if parsed_count else 0.0
        )

        pages: List[Optional[ResultPage]] = [None] * len(raw_queries)
        thunks: List[Callable[[], ResultPage]] = []
        slots: List[int] = []
        # Duplicate queries (same result-cache key) must not share a parallel
        # region: the first branch's cache put would be visible to the
        # second's get — an intra-region read-after-write no real concurrent
        # execution guarantees.  Only the first occurrence runs in the
        # region; duplicates replay afterwards, where the just-stored page
        # makes them a cache hit (exactly what the sequential path did).
        seen_keys: Dict[Hashable, int] = {}
        replays: List[Tuple[int, Callable[[], ResultPage]]] = []
        for slot, (raw_query, query, key) in enumerate(zip(raw_queries, parsed, keys)):
            if query is None:
                pages[slot] = ResultPage(query=raw_query, latency=0.0)
                continue

            def run(raw_query: str = raw_query, query: ParsedQuery = query, key=key) -> ResultPage:
                # simulator.now is read inside the thunk: in a parallel
                # region every branch starts at the region's start time.
                return self._run_query(
                    raw_query, query, self.simulator.now,
                    readers=readers, known_missing=missing,
                    extra_latency=prefetch_share, cache_key=key,
                )

            if key is not None:
                if key in seen_keys:
                    replays.append((slot, run))
                    continue
                seen_keys[key] = slot
            thunks.append(run)
            slots.append(slot)
        if self.overlapped_prefetch and len(thunks) > 1:
            self.stats.parallel_query_regions += 1
            executed = self.simulator.parallel_region(thunks)
        else:
            executed = [thunk() for thunk in thunks]
        for slot, page in zip(slots, executed):
            pages[slot] = page
        for slot, run in replays:
            pages[slot] = run()
        batch_latency = self.simulator.now - started
        for page in pages:
            page.diagnostics["batch_latency"] = batch_latency
            page.diagnostics["batch_unique_terms"] = len(wanted)
            page.diagnostics["batch_term_occurrences"] = term_occurrences
        return pages

    def _run_query(
        self,
        raw_query: str,
        query: ParsedQuery,
        started: float,
        readers: Optional[Dict[str, Any]] = None,
        known_missing: Optional[Set[str]] = None,
        extra_latency: float = 0.0,
        cache_key: Optional[Hashable] = None,
    ) -> ResultPage:
        # The batch path passes the key it computed at parse time (one
        # generation/statistics derivation per query, and the membership
        # check and the lookup agree on the same key by construction).
        if cache_key is None:
            cache_key = self._result_cache_key(query)
        if cache_key is not None:
            template = self.result_cache.get(cache_key)
            if template is not None:
                self.stats.result_cache_hits += 1
                return self._page_from_cache(template, raw_query, started, extra_latency)
            self.stats.result_cache_misses += 1

        if readers is None:
            # Conjunctive queries need their (window-restricted) shards for
            # the driver scan anyway, so fetch them overlapped up front;
            # disjunctive queries resolve manifests only and let the cursors
            # pull shards lazily — pruned shards are never fetched.
            readers, known_missing = self._prefetch_terms(
                query.terms,
                conjunctive=query.is_conjunctive,
                eager=query.is_conjunctive,
            )
        missing = known_missing or set()

        def fetch(term: str) -> Any:
            postings = readers.get(term)
            if postings is None:
                if term in missing:
                    raise TermNotFoundError(f"term {term!r} has no published shard")
                # Terms can slip past prefetching only via a refreshed parse;
                # fall back to the index rather than failing the query.
                postings = self._resolve_term(term)
                readers[term] = postings
            return postings

        statistics = self.statistics
        planner = QueryPlanner(
            statistics.df,
            strategy=self.planning_strategy,
            shard_size=self.shard_size_hint,
        )
        plan = planner.plan(query)
        page_ranks = self.rank_provider()
        executor = QueryExecutor(
            fetch_postings=fetch,
            statistics=statistics,
            page_ranks=page_ranks,
            bm25=self.bm25 or BM25Scorer(statistics),
            combiner=self.combiner,
            top_k=self.top_k,
            mode=self.execution_mode,
            rank_bound_provider=self._rank_bound_provider(
                page_ranks, statistics.document_count
            ),
            # The manifest rank-ceiling path needs only the current rank
            # version; the RankRangeIndex provider is the fallback/ablation
            # that materialises the full vector per rank round.
            rank_range_provider=(
                self._rank_range_provider(page_ranks)
                if self.use_rank_range_index
                else None
            ),
            rank_version=(
                self.rank_version_provider()
                if self.use_rank_ceilings and self.rank_version_provider is not None
                else None
            ),
            use_manifest_ceilings=self.use_rank_ceilings,
            vectorized_scoring=self.vectorized_scoring,
        )
        outcome = executor.execute(plan)

        results = []
        for doc_id, score in outcome.scores.items():
            metadata = self.metadata_resolver(doc_id) or {}
            results.append(
                SearchResult(
                    doc_id=doc_id,
                    score=score,
                    url=metadata.get("url", ""),
                    title=metadata.get("title", ""),
                    cid=metadata.get("cid", ""),
                    owner=metadata.get("owner", ""),
                    page_rank=outcome.page_ranks.get(doc_id, 0.0),
                    snippet=metadata.get("snippet", ""),
                )
            )
        results.sort(key=lambda r: (-r.score, r.doc_id))

        # Ads are keyed on the advertiser's raw keywords, so match them against
        # the user's raw tokens rather than the stemmed index terms.
        ads = self._select_ads(tuple(tokenize(raw_query)) + query.terms)
        latency = self.simulator.now - started + extra_latency
        serving = ServingDiagnostics(
            latency=latency,
            shards_fetched=outcome.segments_loaded,
        )
        page = ResultPage(
            query=raw_query,
            terms=query.terms,
            results=results,
            ads=ads,
            total_candidates=len(outcome.candidates),
            latency=latency,
            terms_missing=outcome.missing_terms,
            diagnostics={
                "plan_strategy": plan.strategy,
                "execution_mode": outcome.mode,
                "terms_fetched": outcome.terms_fetched,
                "estimated_postings": plan.estimated_postings,
                "estimated_shard_fetches": plan.estimated_shard_fetches,
                "postings_scanned": outcome.postings_scanned,
                "docs_scored": outcome.docs_scored,
                "docs_pruned": outcome.docs_pruned,
                "shards_skipped": outcome.shards_skipped,
                "segments_loaded": outcome.segments_loaded,
                "early_exit": outcome.early_exit,
            },
            serving=serving,
        )
        if cache_key is not None and not outcome.missing_terms:
            # Store a detached template: the batch loop and callers mutate
            # page.diagnostics/results on the returned object.  Pages with
            # missing (unreachable) terms are never cached — they reflect
            # transient reachability, which no key ingredient tracks.
            template_diagnostics = dict(page.diagnostics)
            if self.result_cache_loose_keys:
                # Remember the exact statistics version the page was
                # computed at, so loose hits that replay it under drifted
                # statistics can be counted.
                template_diagnostics["stats_version"] = self.statistics.version
            self.result_cache.put(
                cache_key,
                replace(
                    page,
                    results=list(page.results),
                    ads=[],
                    diagnostics=template_diagnostics,
                    # Detach the envelope too: _page_from_cache builds a
                    # fresh one per hit, and the degraded path retags it.
                    serving=ServingDiagnostics(shards_fetched=serving.shards_fetched),
                ),
                fingerprint=self._result_cache_fingerprint(query),
            )
        self.stats.record(latency, page.result_count)
        return page

    # -- ads -----------------------------------------------------------------------------

    def _select_ads(self, terms) -> List[AdPlacement]:
        if self.ad_provider is None or self.max_ads <= 0:
            return []
        placements: List[AdPlacement] = []
        seen_ids = set()
        for term in terms:
            for ad in self.ad_provider(term):
                ad_id = ad.get("ad_id")
                if ad_id in seen_ids:
                    continue
                placements.append(
                    AdPlacement(
                        ad_id=ad_id,
                        advertiser=ad.get("advertiser", ""),
                        keyword=term,
                        bid_per_click=ad.get("bid_per_click", 0),
                    )
                )
                seen_ids.add(ad_id)
                if len(placements) >= self.max_ads:
                    return placements
        return placements
