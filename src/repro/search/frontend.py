"""The QueenBee search frontend.

Ties together query parsing, planning, distributed posting-list retrieval,
ranking, and ad placement.  A frontend instance runs on a user's device (any
DWeb peer); it holds no index state of its own, only the handles needed to
reach the decentralized index and the ad contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional

from repro.errors import QueryParseError
from repro.index.analysis import Analyzer, tokenize
from repro.index.distributed import DistributedIndex
from repro.index.statistics import CollectionStatistics
from repro.ranking.bm25 import BM25Scorer
from repro.ranking.scoring import CombinedScorer
from repro.search.executor import QueryExecutor
from repro.search.planner import STRATEGY_RAREST_FIRST, QueryPlanner
from repro.search.query import parse_query
from repro.search.results import AdPlacement, ResultPage, SearchResult
from repro.sim.simulator import Simulator

# Resolves a doc_id to its metadata ({url, title, owner, cid, snippet}); the
# engine backs this with the document directory it publishes to the DHT.
MetadataResolver = Callable[[int], Dict[str, Any]]
# Returns the current page-rank vector (doc_id -> rank).
RankProvider = Callable[[], Mapping[int, float]]
# Returns active ads for a keyword (list of dicts like AdMarket.ads_for).
AdProvider = Callable[[str], List[Dict[str, Any]]]


@dataclass
class FrontendStats:
    """Per-frontend counters used by the latency/throughput experiment."""

    queries: int = 0
    failed_queries: int = 0
    empty_result_queries: int = 0
    latencies: List[float] = field(default_factory=list)

    def record(self, latency: float, result_count: int) -> None:
        self.queries += 1
        self.latencies.append(latency)
        if result_count == 0:
            self.empty_result_queries += 1


class SearchFrontend:
    """A user-facing query endpoint.

    Parameters
    ----------
    simulator:
        Supplies the clock used to measure end-to-end query latency.
    index:
        The distributed index to fetch posting lists from.
    rank_provider:
        Callable returning the latest page-rank vector (fetched by the engine
        from decentralized storage and cached).
    metadata_resolver:
        Callable mapping doc_id to display metadata.
    ad_provider:
        Callable returning ads for a keyword (usually ``contracts.ads_for``);
        omit it to run an ad-free frontend.
    """

    def __init__(
        self,
        simulator: Simulator,
        index: DistributedIndex,
        rank_provider: Optional[RankProvider] = None,
        metadata_resolver: Optional[MetadataResolver] = None,
        ad_provider: Optional[AdProvider] = None,
        analyzer: Optional[Analyzer] = None,
        statistics: Optional[CollectionStatistics] = None,
        top_k: int = 10,
        max_ads: int = 2,
        planning_strategy: str = STRATEGY_RAREST_FIRST,
        requester: Optional[str] = None,
        bm25: Optional[BM25Scorer] = None,
        combiner: Optional[CombinedScorer] = None,
    ) -> None:
        self.simulator = simulator
        self.index = index
        self.rank_provider = rank_provider or (lambda: {})
        self.metadata_resolver = metadata_resolver or (lambda doc_id: {})
        self.ad_provider = ad_provider
        self.analyzer = analyzer or Analyzer()
        self._statistics = statistics
        self.top_k = top_k
        self.max_ads = max_ads
        self.planning_strategy = planning_strategy
        self.requester = requester
        self.bm25 = bm25
        self.combiner = combiner or CombinedScorer()
        self.stats = FrontendStats()

    # -- statistics handling ------------------------------------------------------

    def refresh_statistics(self) -> CollectionStatistics:
        """Re-fetch the published collection statistics from the DWeb."""
        self._statistics = self.index.fetch_statistics(requester=self.requester)
        return self._statistics

    @property
    def statistics(self) -> CollectionStatistics:
        if self._statistics is None:
            self.refresh_statistics()
        return self._statistics

    # -- the main entry point --------------------------------------------------------

    def search(self, raw_query: str) -> ResultPage:
        """Answer one keyword query, returning a composed result page."""
        started = self.simulator.now
        try:
            query = parse_query(raw_query, self.analyzer)
        except QueryParseError:
            self.stats.failed_queries += 1
            return ResultPage(query=raw_query, latency=0.0)

        statistics = self.statistics
        planner = QueryPlanner(statistics.df, strategy=self.planning_strategy)
        plan = planner.plan(query)
        executor = QueryExecutor(
            fetch_postings=lambda term: self.index.fetch_term(term, requester=self.requester),
            statistics=statistics,
            page_ranks=self.rank_provider(),
            bm25=self.bm25 or BM25Scorer(statistics),
            combiner=self.combiner,
            top_k=self.top_k,
        )
        outcome = executor.execute(plan)

        results = []
        for doc_id, score in outcome.scores.items():
            metadata = self.metadata_resolver(doc_id) or {}
            results.append(
                SearchResult(
                    doc_id=doc_id,
                    score=score,
                    url=metadata.get("url", ""),
                    title=metadata.get("title", ""),
                    cid=metadata.get("cid", ""),
                    owner=metadata.get("owner", ""),
                    page_rank=outcome.page_ranks.get(doc_id, 0.0),
                    snippet=metadata.get("snippet", ""),
                )
            )
        results.sort(key=lambda r: (-r.score, r.doc_id))

        # Ads are keyed on the advertiser's raw keywords, so match them against
        # the user's raw tokens rather than the stemmed index terms.
        ads = self._select_ads(tuple(tokenize(raw_query)) + query.terms)
        latency = self.simulator.now - started
        page = ResultPage(
            query=raw_query,
            terms=query.terms,
            results=results,
            ads=ads,
            total_candidates=len(outcome.candidates),
            latency=latency,
            terms_missing=outcome.missing_terms,
            diagnostics={
                "plan_strategy": plan.strategy,
                "terms_fetched": outcome.terms_fetched,
                "postings_scanned": outcome.postings_scanned,
                "early_exit": outcome.early_exit,
            },
        )
        self.stats.record(latency, page.result_count)
        return page

    # -- ads -----------------------------------------------------------------------------

    def _select_ads(self, terms) -> List[AdPlacement]:
        if self.ad_provider is None or self.max_ads <= 0:
            return []
        placements: List[AdPlacement] = []
        seen_ids = set()
        for term in terms:
            for ad in self.ad_provider(term):
                ad_id = ad.get("ad_id")
                if ad_id in seen_ids:
                    continue
                placements.append(
                    AdPlacement(
                        ad_id=ad_id,
                        advertiser=ad.get("advertiser", ""),
                        keyword=term,
                        bid_per_click=ad.get("bid_per_click", 0),
                    )
                )
                seen_ids.add(ad_id)
                if len(placements) >= self.max_ads:
                    return placements
        return placements
