"""A frontend-side cache of whole top-k result pages.

The posting cache absorbs repeated *term* fetches; this layer absorbs
repeated *queries*.  Real query streams are heavily repetitive (the E10
Zipf workload models this), and for a repeated query the frontend re-runs
planning, cursor evaluation, and scoring against byte-identical inputs —
work the result cache eliminates entirely.

Freshness is handled by keying, not invalidation callbacks.  A cache key
bundles every input that can change a page between two executions of the
same normalized query:

* the normalized query itself (sorted terms + query mode + top_k),
* the **per-term index generations**, as a tuple aligned with the sorted
  terms — a republish of *any* term shifts the key.  (A max() over the
  generations would not: a lower-generation term can change behind a
  higher-generation sibling without moving the max.)
* the **rank version** (bumped per PageRank round),
* the **collection-statistics version** (bumped on every document add or
  remove — BM25 depends on df/avgdl, so any corpus change invalidates).

Stale entries are therefore never *served*; they simply stop being
addressed and age out of the LRU.  Ads are not cached: ad inventory changes
independently of the index, so the frontend re-selects ads on every hit.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, Optional

from repro.search.results import ResultPage


@dataclass
class ResultCacheStats:
    """Hit/miss accounting (the E10 result-cache column)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0


class ResultCache:
    """A bounded key -> :class:`ResultPage` cache with LRU eviction.

    The stored page is a template: the frontend re-derives the per-request
    parts (raw query string, ads, latency) on every hit and shares the
    ranked result list, which is treated as read-only by all consumers.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"result cache capacity must be positive, got {capacity!r}")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, ResultPage]" = OrderedDict()
        self.stats = ResultCacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def get(self, key: Hashable) -> Optional[ResultPage]:
        """The cached page for ``key`` (marking it most-recently-used)."""
        page = self._entries.get(key)
        if page is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return page

    def put(self, key: Hashable, page: ResultPage) -> None:
        """Insert or replace the entry for ``key``, evicting the LRU tail."""
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = page
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> None:
        self._entries.clear()
