"""A frontend-side cache of whole top-k result pages.

The posting cache absorbs repeated *term* fetches; this layer absorbs
repeated *queries*.  Real query streams are heavily repetitive (the E10
Zipf workload models this), and for a repeated query the frontend re-runs
planning, cursor evaluation, and scoring against byte-identical inputs —
work the result cache eliminates entirely.

Freshness is handled by keying, not invalidation callbacks.  A cache key
bundles every input that can change a page between two executions of the
same normalized query:

* the normalized query itself (sorted terms + query mode + top_k),
* the **per-term index generations**, as a tuple aligned with the sorted
  terms — a republish of *any* term shifts the key.  (A max() over the
  generations would not: a lower-generation term can change behind a
  higher-generation sibling without moving the max.)
* the **rank version** (bumped per PageRank round),
* the **collection-statistics version** (bumped on every document add or
  remove — BM25 depends on df/avgdl, so any corpus change invalidates).

Stale entries are therefore never *served*; they simply stop being
addressed and age out of the LRU.  Ads are not cached: ad inventory changes
independently of the index, so the frontend re-selects ads on every hit.

One deliberate exception exists for the serving layer: entries can also be
registered under a **fingerprint** (the freshness-free part of the key —
normalized terms, query mode, top_k), and :meth:`ResultCache.get_stale`
returns the most recently stored page for a fingerprint *regardless* of
index/rank/statistics freshness.  Nothing on the query path uses it; it
exists so :class:`repro.serve.QueryService` can serve an explicitly-tagged
**degraded** answer when admission control decides the full path is over
budget — the caller marks the page as degraded, so staleness is visible
rather than silent.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Hashable, Optional

from repro.search.results import ResultPage
from repro.sim import monitor as state_monitor


@dataclass
class ResultCacheStats:
    """Hit/miss accounting (the E10 result-cache column)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    # Freshness-ignoring fingerprint lookups that found a page (the serving
    # layer's degraded-mode source); not part of hits/misses because they
    # bypass the freshness key entirely.
    stale_serves: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.stale_serves = 0


class ResultCache:
    """A bounded key -> :class:`ResultPage` cache with LRU eviction.

    The stored page is a template: the frontend re-derives the per-request
    parts (raw query string, ads, latency) on every hit and shares the
    ranked result list, which is treated as read-only by all consumers.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"result cache capacity must be positive, got {capacity!r}")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, ResultPage]" = OrderedDict()
        # fingerprint -> the most recently stored full key for that query
        # shape (see get_stale); entries may dangle after eviction and are
        # dropped lazily on lookup.
        self._latest_by_fingerprint: Dict[Hashable, Hashable] = {}
        self.stats = ResultCacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def get(self, key: Hashable) -> Optional[ResultPage]:
        """The cached page for ``key`` (marking it most-recently-used)."""
        page = self._entries.get(key)
        if page is None:
            self.stats.misses += 1
            state_monitor.record_read("result_cache", self, key)
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        state_monitor.record_read("result_cache", self, key, page)
        return page

    def put(self, key: Hashable, page: ResultPage, fingerprint: Hashable = None) -> None:
        """Insert or replace the entry for ``key``, evicting the LRU tail.

        With a ``fingerprint``, the entry is additionally registered as the
        latest page for that query shape, making it reachable through
        :meth:`get_stale` after its freshness key has moved on.
        """
        state_monitor.record_write(
            "result_cache", self, key, page,
            replaced=self._entries.get(key, state_monitor.ABSENT),
        )
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = page
        if fingerprint is not None:
            state_monitor.record_write(
                "result_cache", self, ("fingerprint", fingerprint), key,
                replaced=self._latest_by_fingerprint.get(fingerprint, state_monitor.ABSENT),
            )
            self._latest_by_fingerprint[fingerprint] = key
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def get_stale(self, fingerprint: Hashable) -> Optional[ResultPage]:
        """The latest page stored for ``fingerprint``, freshness ignored.

        Returns ``None`` when no page for that query shape was ever stored
        (or the LRU has since evicted it).  The page may be arbitrarily
        stale — callers must tag the response as degraded; the query path
        itself never reads through this method.
        """
        key = self._latest_by_fingerprint.get(fingerprint)
        state_monitor.record_read("result_cache", self, ("fingerprint", fingerprint), key)
        if key is None:
            return None
        page = self._entries.get(key)
        if page is None:
            # The LRU evicted the entry after the fingerprint pointed at it.
            del self._latest_by_fingerprint[fingerprint]
            return None
        self.stats.stale_serves += 1
        state_monitor.record_read("result_cache", self, key, page)
        return page

    def clear(self) -> None:
        self._entries.clear()
        self._latest_by_fingerprint.clear()
