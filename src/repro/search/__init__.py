"""The query frontend.

"Users submit their keyword queries via QueenBee's HTML+Javascript frontend
... The frontend is also responsible for composing the search results by
intersecting the matched inverted lists, ranking the results, and displaying
relevant ads."  This package is that frontend, minus the HTML: query parsing,
planning (rarest term first), posting-list retrieval and intersection,
scoring, and ad placement.
"""

from repro.search.query import ParsedQuery, parse_query
from repro.search.planner import QueryPlan, QueryPlanner
from repro.search.results import ResultPage, SearchResult
from repro.search.executor import QueryExecutor
from repro.search.frontend import SearchFrontend
from repro.search.result_cache import ResultCache

__all__ = [
    "ParsedQuery",
    "parse_query",
    "QueryPlan",
    "QueryPlanner",
    "SearchResult",
    "ResultPage",
    "QueryExecutor",
    "ResultCache",
    "SearchFrontend",
]
