"""Externally-owned accounts: balances in the chain's native currency."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class Account:
    """An account on the QueenBee chain.

    ``balance`` is denominated in the chain's smallest native unit ("wei" for
    familiarity).  Honey — the incentive token the paper describes — is a
    contract-managed balance (see :mod:`repro.contracts.honey`), not the
    native currency, mirroring how incentive tokens are deployed on Ethereum.
    """

    address: str
    balance: int = 0
    nonce: int = 0

    def can_spend(self, amount: int) -> bool:
        """Whether the account holds at least ``amount`` of native currency."""
        return amount >= 0 and self.balance >= amount
