"""The blockchain facade: transaction pool, block production, contract calls."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ChainError, ContractError, InvalidTransactionError
from repro.chain.block import GENESIS_HASH, ChainBlock
from repro.chain.consensus import RoundRobinSchedule
from repro.chain.gas import fee_for
from repro.chain.state import WorldState
from repro.chain.transaction import Transaction
from repro.chain.vm import CallContext, Contract, ContractVM, EventLog
from repro.sim.simulator import Simulator


@dataclass
class ExecutionReceipt:
    """Outcome of one transaction's execution inside a block."""

    tx_id: str
    success: bool
    result: Any = None
    error: str = ""
    gas_fee: int = 0
    block_number: int = 0


class Blockchain:
    """An in-process chain with deterministic round-robin block production.

    Parameters
    ----------
    simulator:
        Supplies block timestamps (simulated time) and, when
        :meth:`start_block_production` is used, schedules periodic blocks.
    validators:
        Addresses allowed to produce blocks.  They earn the gas fees of the
        transactions they include.
    block_interval:
        Simulated ticks between blocks when production is scheduled.
    auto_mine:
        When true (the default for unit tests and small experiments), every
        submitted transaction is immediately executed in its own block; when
        false, transactions wait in the pool until :meth:`produce_block`.
    """

    def __init__(
        self,
        simulator: Simulator,
        validators: Optional[Sequence[str]] = None,
        block_interval: float = 1_000.0,
        auto_mine: bool = True,
    ) -> None:
        self.simulator = simulator
        self.state = WorldState()
        self.vm = ContractVM(self.state)
        self.schedule = RoundRobinSchedule(list(validators) if validators else ["validator-0"])
        self.block_interval = block_interval
        self.auto_mine = auto_mine
        self.blocks: List[ChainBlock] = []
        self.pending: List[Transaction] = []
        self.receipts: Dict[str, ExecutionReceipt] = {}
        self._producing = False

    # -- accounts -------------------------------------------------------------

    def fund_account(self, address: str, amount: int) -> None:
        """Mint native currency for an account (test/experiment setup)."""
        self.state.credit(address, amount)

    def balance_of(self, address: str) -> int:
        return self.state.get_account(address).balance

    def next_nonce(self, address: str) -> int:
        """The nonce a new transaction from ``address`` should carry (pending included)."""
        return self.state.get_account(address).nonce + self._pending_count(address)

    # -- contracts ------------------------------------------------------------

    def deploy(self, contract: Contract) -> Contract:
        """Deploy a contract instance."""
        return self.vm.deploy(contract)

    def contract(self, name: str) -> Contract:
        return self.vm.get(name)

    @property
    def events(self) -> List[EventLog]:
        return self.vm.events

    # -- transactions ---------------------------------------------------------

    def submit(self, tx: Transaction) -> ExecutionReceipt:
        """Validate and enqueue a transaction.

        With ``auto_mine`` enabled the transaction is executed immediately and
        its receipt returned; otherwise a pending receipt is returned and the
        transaction executes at the next :meth:`produce_block`.
        """
        self._validate(tx)
        self.pending.append(tx)
        if self.auto_mine:
            self.produce_block()
            return self.receipts[tx.tx_id]
        return ExecutionReceipt(tx_id=tx.tx_id, success=False, error="pending")

    def call(
        self,
        sender: str,
        contract: str,
        method: str,
        value: int = 0,
        **args: Any,
    ) -> ExecutionReceipt:
        """Convenience: build, sign, and submit a contract-call transaction."""
        tx = Transaction(
            sender=sender,
            nonce=self.next_nonce(sender),
            contract=contract,
            method=method,
            args=args,
            value=value,
        )
        return self.submit(tx)

    def transfer(self, sender: str, recipient: str, amount: int) -> ExecutionReceipt:
        """Convenience: a plain native-currency transfer."""
        tx = Transaction(
            sender=sender,
            nonce=self.next_nonce(sender),
            to=recipient,
            value=amount,
        )
        return self.submit(tx)

    def query(self, contract: str, method: str, **args: Any) -> Any:
        """Read-only contract call: free, does not create a transaction.

        The call still goes through the VM, so contracts cannot distinguish
        queries from calls, but any state it would have written is rolled back.
        """
        snapshot = self.state.snapshot()
        ctx = CallContext(
            sender="query",
            value=0,
            block_number=self.height,
            block_time=self.simulator.now,
            tx_id="query",
        )
        try:
            return self.vm.execute_call(contract, method, ctx, args)
        finally:
            self.state.restore(snapshot)
            self.vm.state = self.state

    # -- block production ------------------------------------------------------

    @property
    def height(self) -> int:
        return len(self.blocks)

    @property
    def head_hash(self) -> str:
        return self.blocks[-1].block_hash if self.blocks else GENESIS_HASH

    def produce_block(self, max_transactions: Optional[int] = None) -> ChainBlock:
        """Execute pending transactions (in submission order) into a new block."""
        number = self.height
        producer = self.schedule.producer_for(number)
        batch = self.pending if max_transactions is None else self.pending[:max_transactions]
        remaining = [] if max_transactions is None else self.pending[max_transactions:]
        executed: List[Transaction] = []
        for tx in batch:
            receipt = self._execute(tx, number, producer)
            self.receipts[tx.tx_id] = receipt
            executed.append(tx)
        self.pending = remaining
        block = ChainBlock(
            number=number,
            previous_hash=self.head_hash,
            producer=producer,
            timestamp=self.simulator.now,
            transactions=tuple(executed),
        )
        self.blocks.append(block)
        return block

    def start_block_production(self) -> None:
        """Produce a block every ``block_interval`` ticks on the simulator."""
        if self._producing:
            return
        self._producing = True
        self.simulator.schedule(self.block_interval, self._block_tick, label="chain-block")

    def stop_block_production(self) -> None:
        self._producing = False

    def verify_integrity(self) -> bool:
        """Check the hash chain — detects any retroactive tampering."""
        previous = GENESIS_HASH
        for block in self.blocks:
            if block.previous_hash != previous:
                return False
            previous = block.block_hash
        return True

    # -- internals --------------------------------------------------------------

    def _block_tick(self) -> None:
        if not self._producing:
            return
        self.produce_block()
        self.simulator.schedule(self.block_interval, self._block_tick, label="chain-block")

    def _validate(self, tx: Transaction) -> None:
        if not tx.signature_valid():
            raise InvalidTransactionError(
                f"transaction {tx.tx_id[:12]}… signed by {tx.signed_by!r} but sent by {tx.sender!r}"
            )
        account = self.state.get_account(tx.sender)
        if tx.nonce != account.nonce + self._pending_count(tx.sender):
            raise InvalidTransactionError(
                f"bad nonce for {tx.sender!r}: expected "
                f"{account.nonce + self._pending_count(tx.sender)}, got {tx.nonce}"
            )
        fee = fee_for(tx)
        if account.balance < tx.value + fee:
            raise InvalidTransactionError(
                f"{tx.sender!r} cannot cover value {tx.value} + fee {fee} "
                f"with balance {account.balance}"
            )

    def _pending_count(self, sender: str) -> int:
        return sum(1 for tx in self.pending if tx.sender == sender)

    def _execute(self, tx: Transaction, block_number: int, producer: str) -> ExecutionReceipt:
        snapshot = self.state.snapshot()
        fee = fee_for(tx)
        ctx = CallContext(
            sender=tx.sender,
            value=tx.value,
            block_number=block_number,
            block_time=self.simulator.now,
            tx_id=tx.tx_id,
        )
        try:
            sender_account = self.state.get_account(tx.sender)
            if sender_account.balance < tx.value + fee:
                raise InvalidTransactionError(
                    f"{tx.sender!r} cannot cover value {tx.value} + fee {fee}"
                )
            sender_account.balance -= fee
            self.state.get_account(producer).balance += fee
            sender_account.nonce += 1
            result: Any = None
            if tx.is_contract_call:
                result = self.vm.execute_call(tx.contract, tx.method, ctx, tx.args)
            elif tx.to is not None:
                self.state.transfer(tx.sender, tx.to, tx.value)
            return ExecutionReceipt(
                tx_id=tx.tx_id, success=True, result=result, gas_fee=fee, block_number=block_number
            )
        except (ContractError, InvalidTransactionError, ChainError) as exc:
            self.state.restore(snapshot)
            self.vm.state = self.state
            # Even a reverted transaction consumes its fee and the nonce,
            # as on Ethereum; re-apply both on the rolled-back state.
            account = self.state.get_account(tx.sender)
            charged = min(fee, account.balance)
            account.balance -= charged
            self.state.get_account(producer).balance += charged
            account.nonce += 1
            return ExecutionReceipt(
                tx_id=tx.tx_id,
                success=False,
                error=str(exc),
                gas_fee=charged,
                block_number=block_number,
            )
