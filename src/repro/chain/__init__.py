"""Blockchain substrate (the paper's Ethereum substitute).

QueenBee's "core business operations are autonomously and securely governed
by smart contracts deployed on a cryptocurrency blockchain".  The experiments
only need the chain as an ordered, tamper-evident ledger that executes
contract code and charges gas, so this package provides exactly that:

* accounts with native balances and nonces (:mod:`repro.chain.account`),
* transactions and blocks with hash chaining (:mod:`repro.chain.transaction`,
  :mod:`repro.chain.block`),
* a world state with snapshot/rollback so failed contract calls revert
  (:mod:`repro.chain.state`),
* a minimal contract VM hosting Python contract objects (:mod:`repro.chain.vm`),
* round-robin (proof-of-authority style) block production
  (:mod:`repro.chain.consensus`), and
* the :class:`~repro.chain.blockchain.Blockchain` facade tying them together.
"""

from repro.chain.account import Account
from repro.chain.transaction import Transaction
from repro.chain.block import ChainBlock
from repro.chain.state import WorldState
from repro.chain.vm import CallContext, Contract, EventLog
from repro.chain.consensus import RoundRobinSchedule
from repro.chain.blockchain import Blockchain

__all__ = [
    "Account",
    "Transaction",
    "ChainBlock",
    "WorldState",
    "Contract",
    "CallContext",
    "EventLog",
    "RoundRobinSchedule",
    "Blockchain",
]
