"""World state: account balances/nonces plus per-contract storage.

The state supports cheap snapshot/restore so that a reverting contract call
leaves no partial writes behind — the property the incentive contracts rely
on for conservation of honey.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Any, Dict

from repro.errors import InsufficientFundsError
from repro.chain.account import Account


@dataclass
class WorldState:
    """All mutable on-chain data."""

    accounts: Dict[str, Account] = field(default_factory=dict)
    contract_storage: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    def get_account(self, address: str) -> Account:
        """Fetch an account, creating it with a zero balance on first touch."""
        account = self.accounts.get(address)
        if account is None:
            account = Account(address=address)
            self.accounts[address] = account
        return account

    def credit(self, address: str, amount: int) -> None:
        """Add native currency to an account (minting / block rewards)."""
        if amount < 0:
            raise InsufficientFundsError(f"cannot credit a negative amount {amount!r}")
        self.get_account(address).balance += amount

    def transfer(self, sender: str, recipient: str, amount: int) -> None:
        """Move native currency between accounts, raising if funds are short."""
        if amount < 0:
            raise InsufficientFundsError(f"cannot transfer a negative amount {amount!r}")
        src = self.get_account(sender)
        if not src.can_spend(amount):
            raise InsufficientFundsError(
                f"{sender!r} holds {src.balance} but tried to transfer {amount}"
            )
        src.balance -= amount
        self.get_account(recipient).balance += amount

    def storage_for(self, contract_name: str) -> Dict[str, Any]:
        """The private key/value storage of one contract."""
        return self.contract_storage.setdefault(contract_name, {})

    def total_native_supply(self) -> int:
        """Sum of every account balance (conservation checks in tests)."""
        return sum(account.balance for account in self.accounts.values())

    # -- snapshot / rollback --------------------------------------------------

    def snapshot(self) -> "WorldState":
        """A deep copy used to roll back a failed transaction.

        Pickle round-tripping is noticeably faster than ``copy.deepcopy`` for
        the plain dict/dataclass structures held here, and transactions are
        snapshotted on every execution, so the speed matters at corpus scale.
        """
        return pickle.loads(pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL))

    def restore(self, snapshot: "WorldState") -> None:
        """Overwrite this state with ``snapshot`` (after a revert)."""
        self.accounts = snapshot.accounts
        self.contract_storage = snapshot.contract_storage
