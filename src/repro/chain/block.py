"""Chain blocks: hash-linked batches of executed transactions."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Tuple

from repro.chain.transaction import Transaction


@dataclass
class ChainBlock:
    """A block appended to the QueenBee chain.

    Named ``ChainBlock`` to avoid colliding with the storage layer's
    content :class:`~repro.storage.block.Block`.
    """

    number: int
    previous_hash: str
    producer: str
    timestamp: float
    transactions: Tuple[Transaction, ...] = field(default_factory=tuple)

    @property
    def block_hash(self) -> str:
        """Hash committing to the block header and every transaction id."""
        body = "|".join(
            [
                str(self.number),
                self.previous_hash,
                self.producer,
                f"{self.timestamp:.6f}",
            ]
            + [tx.tx_id for tx in self.transactions]
        )
        return hashlib.sha256(body.encode("utf-8")).hexdigest()

    @property
    def transaction_count(self) -> int:
        return len(self.transactions)


GENESIS_HASH = "0" * 64
