"""Transactions: signed intents to call a contract or transfer native currency."""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional


@dataclass
class Transaction:
    """A single on-chain action.

    ``contract``/``method``/``args`` describe a contract call; a plain
    transfer sets ``contract`` to ``None`` and puts the amount in ``value``.
    Signatures are simulated: ``signed_by`` must equal ``sender`` for the
    transaction to be valid, which lets attack scenarios attempt forgeries
    without a real cryptography dependency.
    """

    sender: str
    nonce: int
    contract: Optional[str] = None
    method: Optional[str] = None
    args: Dict[str, Any] = field(default_factory=dict)
    to: Optional[str] = None
    value: int = 0
    gas_limit: int = 100_000
    signed_by: Optional[str] = None

    def __post_init__(self) -> None:
        if self.signed_by is None:
            self.signed_by = self.sender

    @property
    def tx_id(self) -> str:
        """Deterministic transaction hash."""
        body = json.dumps(
            {
                "sender": self.sender,
                "nonce": self.nonce,
                "contract": self.contract,
                "method": self.method,
                "args": _stable(self.args),
                "to": self.to,
                "value": self.value,
            },
            sort_keys=True,
            default=str,
        )
        return hashlib.sha256(body.encode("utf-8")).hexdigest()

    @property
    def is_contract_call(self) -> bool:
        return self.contract is not None and self.method is not None

    def signature_valid(self) -> bool:
        """Simulated signature check: only the sender can sign its transactions."""
        return self.signed_by == self.sender


def _stable(value: Any) -> Any:
    """Make nested args JSON-stable (sets become sorted lists)."""
    if isinstance(value, dict):
        return {str(k): _stable(v) for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))}
    if isinstance(value, (set, frozenset)):
        return sorted((_stable(v) for v in value), key=str)
    if isinstance(value, (list, tuple)):
        return [_stable(v) for v in value]
    return value
