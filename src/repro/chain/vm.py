"""The contract execution environment.

Contracts are Python classes whose public methods (no leading underscore)
are callable through transactions.  Each call receives a
:class:`CallContext` describing the sender, the value attached, and the
current block, mirroring Solidity's ``msg`` / ``block`` globals closely
enough for the incentive logic the paper sketches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import ContractError
from repro.chain.state import WorldState


@dataclass
class CallContext:
    """Execution context passed to every contract method call."""

    sender: str
    value: int = 0
    block_number: int = 0
    block_time: float = 0.0
    tx_id: str = ""


@dataclass
class EventLog:
    """A contract event, recorded in order on the chain."""

    contract: str
    name: str
    data: Dict[str, Any] = field(default_factory=dict)
    block_number: int = 0
    tx_id: str = ""


class Contract:
    """Base class for every QueenBee smart contract.

    Subclasses get:

    * ``self.storage`` — their private persistent key/value dict,
    * ``self.state`` — the world state (native balances),
    * ``self.emit(name, **data)`` — append an event log,
    * ``self.require(condition, message)`` — revert helper,
    * ``self.call_contract(name, method, ctx, **args)`` — cross-contract call
      that preserves the original sender (like an internal call).
    """

    name: str = "contract"

    def __init__(self) -> None:
        self._vm: Optional["ContractVM"] = None

    # -- wiring (performed by the VM at deployment) ---------------------------

    def bind(self, vm: "ContractVM") -> None:
        self._vm = vm

    @property
    def vm(self) -> "ContractVM":
        if self._vm is None:
            raise ContractError(f"contract {self.name!r} is not deployed")
        return self._vm

    @property
    def storage(self) -> Dict[str, Any]:
        return self.vm.state.storage_for(self.name)

    @property
    def state(self) -> WorldState:
        return self.vm.state

    # -- helpers available to contract code ------------------------------------

    def require(self, condition: bool, message: str) -> None:
        """Revert the whole transaction when ``condition`` is false."""
        if not condition:
            raise ContractError(f"{self.name}: {message}")

    def emit(self, event_name: str, **data: Any) -> None:
        """Record an event log entry."""
        self.vm.record_event(EventLog(contract=self.name, name=event_name, data=data))

    def call_contract(self, contract_name: str, method: str, ctx: CallContext, **args: Any) -> Any:
        """Call another contract as part of the same transaction."""
        return self.vm.execute_call(contract_name, method, ctx, args)


class ContractVM:
    """Deploys contracts and executes calls against the world state."""

    def __init__(self, state: WorldState) -> None:
        self.state = state
        self.contracts: Dict[str, Contract] = {}
        self.events: List[EventLog] = []
        self._current_context: Optional[CallContext] = None

    def deploy(self, contract: Contract) -> Contract:
        """Register a contract instance under its ``name``."""
        if contract.name in self.contracts:
            raise ContractError(f"a contract named {contract.name!r} is already deployed")
        contract.bind(self)
        self.contracts[contract.name] = contract
        return contract

    def get(self, name: str) -> Contract:
        contract = self.contracts.get(name)
        if contract is None:
            raise ContractError(f"no contract named {name!r} is deployed")
        return contract

    def record_event(self, event: EventLog) -> None:
        if self._current_context is not None:
            event.block_number = self._current_context.block_number
            event.tx_id = self._current_context.tx_id
        self.events.append(event)

    def events_named(self, name: str) -> List[EventLog]:
        """All events with a given name, in emission order."""
        return [event for event in self.events if event.name == name]

    def execute_call(
        self,
        contract_name: str,
        method: str,
        ctx: CallContext,
        args: Optional[Dict[str, Any]] = None,
    ) -> Any:
        """Run one contract method.  Raises :class:`ContractError` on revert.

        The caller (the blockchain) is responsible for snapshotting state
        before the call and rolling back if this raises.
        """
        contract = self.get(contract_name)
        if method.startswith("_"):
            raise ContractError(f"method {method!r} of {contract_name!r} is not externally callable")
        handler = getattr(contract, method, None)
        if handler is None or not callable(handler):
            raise ContractError(f"contract {contract_name!r} has no method {method!r}")
        previous_context = self._current_context
        self._current_context = ctx
        try:
            return handler(ctx, **(args or {}))
        except ContractError:
            raise
        except TypeError as exc:
            raise ContractError(f"bad arguments for {contract_name}.{method}: {exc}") from exc
        finally:
            self._current_context = previous_context
