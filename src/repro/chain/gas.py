"""Gas accounting: a flat cost model that pays block producers.

The experiments do not study gas markets, so the model is intentionally
simple: every transaction costs a base fee plus a per-argument fee, deducted
from the sender's native balance and credited to the block producer.  What
matters for the incentive analysis (E5, E9) is only that participating in
QueenBee has a non-zero on-chain cost.
"""

from __future__ import annotations

from repro.chain.transaction import Transaction

BASE_TX_GAS = 21_000
CONTRACT_CALL_GAS = 10_000
PER_ARG_GAS = 500
GAS_PRICE = 1  # native units per gas


def gas_for(tx: Transaction) -> int:
    """Gas consumed by ``tx`` under the flat cost model."""
    gas = BASE_TX_GAS
    if tx.is_contract_call:
        gas += CONTRACT_CALL_GAS + PER_ARG_GAS * len(tx.args)
    return gas


def fee_for(tx: Transaction) -> int:
    """Native-currency fee for ``tx`` (gas times the fixed gas price)."""
    return gas_for(tx) * GAS_PRICE
