"""Block production scheduling.

The paper does not depend on any particular consensus algorithm — only on
blocks being produced in a tamper-evident order.  A round-robin
proof-of-authority schedule gives deterministic, fee-rewarded block
production, which is all the incentive experiments need.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import ChainError


class RoundRobinSchedule:
    """Deterministic rotation over a fixed validator set."""

    def __init__(self, validators: Sequence[str]) -> None:
        if not validators:
            raise ChainError("a round-robin schedule needs at least one validator")
        self.validators: List[str] = list(validators)

    def producer_for(self, block_number: int) -> str:
        """The validator entitled to produce block ``block_number``."""
        if block_number < 0:
            raise ChainError(f"block number must be non-negative, got {block_number!r}")
        return self.validators[block_number % len(self.validators)]

    def add_validator(self, address: str) -> None:
        if address not in self.validators:
            self.validators.append(address)

    def remove_validator(self, address: str) -> None:
        if address in self.validators and len(self.validators) > 1:
            self.validators.remove(address)
