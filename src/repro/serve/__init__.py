"""The serving front door: admission, concurrency limits, degradation.

See :mod:`repro.serve.service` and ``docs/SERVING.md``.
"""

from repro.serve.service import QueryService, ServedRequest, ServiceOptions, ServiceStats

__all__ = ["QueryService", "ServiceOptions", "ServiceStats", "ServedRequest"]
