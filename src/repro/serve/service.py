"""The QueenBee serving front door.

Everything below a :class:`QueryService` answers as fast as the index and
the network allow; nothing below it decides *whether* to answer.  Under an
open-loop workload (arrivals independent of service speed — see
:mod:`repro.workloads.arrivals`) that distinction is the whole game: a
service without admission control queues without bound during a flash
crowd, and every request admitted into that queue — including all the
post-burst ones — inherits the backlog's delay.  The front door bounds the
damage by deciding, per request, between four explicit outcomes, each
tagged in the response's :class:`~repro.search.results.ServingDiagnostics`:

``full`` / ``result_cache``
    The request was admitted: it waited (bounded) for a concurrency slot
    and ran the normal :meth:`SearchFrontend.search` path, which itself may
    answer from the freshness-keyed result cache.
``degraded``
    Admission rejected the request, but the frontend's result cache holds
    a previously computed page for the same query shape; that page is
    replayed **stale** (freshness keys deliberately ignored) as a cheap
    local operation.  Results may be out of date; the tag says so.
``shed``
    Rejected with no cached page to fall back on.  The response carries no
    results and a ``shed_reason`` (``queue_full`` or ``over_budget``).

Concurrency as simulator time
-----------------------------
A frontend "replica" owns ``concurrency`` service slots.  Dispatching a
request runs ``frontend.search`` inline at dispatch time ``t0`` — the
simulated clock advances to ``t0 + d`` as the query's RPCs charge their
latency — then the clock is **rewound** to ``t0`` and a completion event is
scheduled at ``t0 + d``.  The slot is held until that event fires.  This is
the same discipline :meth:`Simulator.parallel_region` uses: the work's cost
is measured by really running it, but the timeline other events see only
moves forward, so arrivals landing inside ``[t0, t0 + d]`` still fire at
their own times and observe the slot as busy.  Requests therefore queue
exactly when the offered load exceeds ``replicas * concurrency / d`` — an
M/G/c queue realised inside the discrete-event simulator.

Backpressure
------------
Admission tracks an EWMA of recent *service* times per replica.  Posting-
cache misses are what move it: a cold or churning cache makes every query
pay manifest and shard fetches, service times stretch, and the estimated
wait ``(queued + 1) / concurrency * ewma`` crosses the latency budget —
so the service sheds *before* the queue fills, and recovers as cache hits
bring the EWMA back down.  With ``latency_budget == 0`` only queue
capacity gates admission; with ``admission=False`` (the E11 ablation)
nothing does, and the benchmark shows what that costs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, List, Optional

from repro.metrics.collector import MetricsCollector
from repro.search.frontend import FrontendOptions, SearchFrontend
from repro.sim.simulator import Simulator
from repro.search.results import (
    SERVED_DEGRADED,
    SERVED_SHED,
    ResultPage,
    ServingDiagnostics,
)

SHED_QUEUE_FULL = "queue_full"
SHED_OVER_BUDGET = "over_budget"


@dataclass
class ServiceOptions:
    """The front door's policy knobs (wiring stays on the constructor).

    ``concurrency`` and ``queue_capacity`` accept ``None`` for unlimited —
    the configuration under which the service is behaviourally identical to
    calling the frontend directly (the identity property E11 asserts).
    """

    replicas: int = 1
    # Simultaneous in-flight searches per replica (None = unlimited).
    concurrency: Optional[int] = 4
    # Waiting requests per replica beyond the busy slots (None = unbounded).
    queue_capacity: Optional[int] = 16
    # Estimated-wait ceiling for admission; 0 disables the backpressure
    # check (queue capacity still applies).
    latency_budget: float = 0.0
    # Serve stale result-cache pages to rejected requests when possible.
    degraded: bool = True
    # Master switch: False admits everything (the no-admission ablation).
    admission: bool = True
    # Smoothing of the per-replica service-time estimate.
    ewma_alpha: float = 0.2

    def validate(self) -> None:
        if self.replicas < 1:
            raise ValueError(f"need at least one replica, got {self.replicas!r}")
        if self.concurrency is not None and self.concurrency < 1:
            raise ValueError(f"concurrency must be positive or None, got {self.concurrency!r}")
        if self.queue_capacity is not None and self.queue_capacity < 0:
            raise ValueError(
                f"queue capacity must be non-negative or None, got {self.queue_capacity!r}"
            )
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError(f"ewma_alpha must be in (0, 1], got {self.ewma_alpha!r}")


@dataclass
class ServedRequest:
    """One request's lifecycle, resolved when ``page`` is set."""

    request_id: int
    query: str
    arrival_time: float
    page: Optional[ResultPage] = None
    replica: int = -1

    @property
    def resolved(self) -> bool:
        return self.page is not None

    @property
    def served_from(self) -> str:
        return self.page.serving.served_from if self.page is not None else ""

    @property
    def latency(self) -> float:
        """Arrival-to-response latency (0.0 while unresolved)."""
        return self.page.serving.latency if self.page is not None else 0.0


@dataclass
class ServiceStats:
    """Outcome counters over the service's lifetime."""

    submitted: int = 0
    admitted: int = 0
    degraded: int = 0
    shed: int = 0
    completed: int = 0
    queued: int = 0

    @property
    def rejected(self) -> int:
        return self.degraded + self.shed


class _Replica:
    """One frontend plus its slot/queue state."""

    def __init__(self, index: int, frontend: SearchFrontend) -> None:
        self.index = index
        self.frontend = frontend
        self.busy = 0
        self.queue: Deque[ServedRequest] = deque()
        # EWMA of observed service times; 0.0 until the first completion.
        self.ewma_service = 0.0

    @property
    def load(self) -> int:
        return self.busy + len(self.queue)


class QueryService:
    """The serving front door over a set of search frontends.

    The service deliberately does **not** hold the engine: the serving
    plane (like ``repro/search``) sees only what a deployed front door
    would — a clock, a way to build frontend replicas, and a metrics sink
    (repro-lint rule RL003).  Use :meth:`QueenBeeEngine.create_service` to
    wire one against a deployment.

    Parameters
    ----------
    simulator:
        The clock and event queue completions are scheduled on.
    frontend_factory:
        ``factory(requester=..., options=...) -> SearchFrontend`` builds
        one replica; :meth:`QueenBeeEngine.create_frontend` fits, so the
        metadata plane decides whether replicas are shared-state or real
        remote nodes.
    options:
        The admission/limit policy (:class:`ServiceOptions`).
    frontend_options:
        Policy for the underlying frontends (passed to the factory).
        Degraded serving needs ``result_cache_capacity > 0`` to ever find
        a page.
    requesters:
        Optional per-replica requester peer addresses (length must match
        ``options.replicas`` when given).
    metrics:
        Optional collector the ``serve.*`` outcome counters and latency
        samples are recorded into.
    on_served:
        Optional zero-argument callback invoked once per fully-served
        request (the engine counts these in its own stats).
    """

    def __init__(
        self,
        simulator: Simulator,
        frontend_factory: Callable[..., SearchFrontend],
        options: Optional[ServiceOptions] = None,
        frontend_options: Optional[FrontendOptions] = None,
        requesters: Optional[List[str]] = None,
        metrics: Optional[MetricsCollector] = None,
        on_served: Optional[Callable[[], None]] = None,
    ) -> None:
        self.simulator = simulator
        self.metrics = metrics
        self.on_served = on_served
        self.options = options or ServiceOptions()
        self.options.validate()
        if requesters is not None and len(requesters) != self.options.replicas:
            raise ValueError(
                f"got {len(requesters)} requesters for {self.options.replicas} replicas"
            )
        self.replicas: List[_Replica] = []
        for index in range(self.options.replicas):
            requester = requesters[index] if requesters is not None else None
            frontend = frontend_factory(requester=requester, options=frontend_options)
            self.replicas.append(_Replica(index, frontend))
        self.stats = ServiceStats()
        self.responses: List[ServedRequest] = []
        self._next_request_id = 0

    # -- submission ---------------------------------------------------------------

    def submit(self, raw_query: str) -> ServedRequest:
        """Submit one request at the current simulated time.

        Returns its :class:`ServedRequest`, resolved immediately for
        rejected requests and at the completion event for admitted ones
        (run the simulator to resolve those).
        """
        request = ServedRequest(
            request_id=self._next_request_id,
            query=raw_query,
            arrival_time=self.simulator.now,
        )
        self._next_request_id += 1
        self.stats.submitted += 1
        self.responses.append(request)

        replica = min(self.replicas, key=lambda r: (r.load, r.index))
        request.replica = replica.index
        reason = self._admission_reason(replica) if self.options.admission else None
        if reason is not None:
            self._reject(replica, request, reason)
            return request

        self.stats.admitted += 1
        if self.options.concurrency is None or replica.busy < self.options.concurrency:
            self._dispatch(replica, request)
        else:
            self.stats.queued += 1
            replica.queue.append(request)
        return request

    def serve(self, raw_query: str) -> ResultPage:
        """Submit and run the simulator until this request resolves.

        A convenience for tests and interactive use; open-loop drivers use
        :meth:`submit` + :meth:`run_workload` instead.
        """
        request = self.submit(raw_query)
        while not request.resolved:
            if not self.simulator.step():
                raise RuntimeError("event queue drained with a request still in flight")
        return request.page

    def run_workload(self, workload) -> List[ServedRequest]:
        """Play an open-loop workload and return all resolved requests.

        Every ``(arrival_time, query)`` pair is scheduled relative to the
        current simulated time, then the simulator runs until each request
        has resolved (recurring background events — gossip rounds — keep
        firing throughout and do not stop the drain).
        """
        start = self.simulator.now
        first = len(self.responses)
        for arrival_time, query in workload:
            self.simulator.schedule_at(
                start + arrival_time,
                lambda q=query: self.submit(q),
                label="serve-arrival",
            )
        expected = first + len(workload)
        while True:
            pending = [r for r in self.responses[first:] if not r.resolved]
            if len(self.responses) >= expected and not pending:
                break
            if not self.simulator.step():
                raise RuntimeError("event queue drained with requests still in flight")
        return self.responses[first:]

    # -- admission ---------------------------------------------------------------

    def _admission_reason(self, replica: _Replica) -> Optional[str]:
        """Why this request must be rejected, or ``None`` to admit."""
        options = self.options
        if options.concurrency is None or replica.busy < options.concurrency:
            return None  # a slot is free: no queueing, nothing to gate
        if options.queue_capacity is not None and len(replica.queue) >= options.queue_capacity:
            return SHED_QUEUE_FULL
        if options.latency_budget > 0 and replica.ewma_service > 0:
            waves = (len(replica.queue) + 1) / options.concurrency
            if waves * replica.ewma_service > options.latency_budget:
                return SHED_OVER_BUDGET
        return None

    def _reject(self, replica: _Replica, request: ServedRequest, reason: str) -> None:
        """Resolve a rejected request: degraded replay if possible, else shed."""
        page = (
            replica.frontend.search_degraded(request.query)
            if self.options.degraded
            else None
        )
        if page is not None:
            page.serving.shed_reason = reason
            self.stats.degraded += 1
        else:
            page = ResultPage(
                query=request.query,
                serving=ServingDiagnostics(served_from=SERVED_SHED, shed_reason=reason),
            )
            self.stats.shed += 1
        request.page = page
        self._observe(request)

    # -- dispatch / completion ----------------------------------------------------

    def _dispatch(self, replica: _Replica, request: ServedRequest) -> None:
        """Run the search now, charge its duration to a slot (see module doc)."""
        simulator = self.simulator
        replica.busy += 1
        started = simulator.now
        page = replica.frontend.search(request.query)
        duration = simulator.now - started
        simulator.clock.rewind_to(started)

        def complete() -> None:
            replica.busy -= 1
            alpha = self.options.ewma_alpha
            replica.ewma_service = (
                duration
                if replica.ewma_service == 0.0
                else (1 - alpha) * replica.ewma_service + alpha * duration
            )
            queue_delay = started - request.arrival_time
            page.serving.queue_delay = queue_delay
            page.serving.latency = queue_delay + duration
            request.page = page
            self.stats.completed += 1
            self._observe(request)
            if replica.queue and (
                self.options.concurrency is None or replica.busy < self.options.concurrency
            ):
                self._dispatch(replica, replica.queue.popleft())

        simulator.schedule(duration, complete, label="serve-complete")

    # -- accounting ---------------------------------------------------------------

    def _observe(self, request: ServedRequest) -> None:
        serving = request.page.serving
        if self.metrics is not None:
            self.metrics.increment(f"serve.{serving.served_from}")
            if serving.answered:
                self.metrics.observe("serve.latency", serving.latency)
        if serving.served_from not in (SERVED_SHED, SERVED_DEGRADED):
            if self.metrics is not None:
                self.metrics.observe("serve.queue_delay", serving.queue_delay)
            if self.on_served is not None:
                self.on_served()
