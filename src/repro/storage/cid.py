"""Content identifiers: the cryptographic hashes that make DWeb tamper-proof."""

from __future__ import annotations

import hashlib
from typing import Union

from repro.errors import InvalidCIDError

CID_PREFIX = "bafy"


def compute_cid(data: Union[bytes, str]) -> str:
    """Derive the content identifier of ``data`` (SHA-256, hex, ``bafy`` prefix).

    The prefix mimics IPFS CIDv1 cosmetically; only the digest matters for the
    tamper-evidence property the paper relies on.
    """
    if isinstance(data, str):
        data = data.encode("utf-8")
    digest = hashlib.sha256(data).hexdigest()
    return CID_PREFIX + digest


def verify_cid(cid: str, data: Union[bytes, str]) -> bool:
    """Check that ``data`` hashes to ``cid`` (tamper detection)."""
    validate_cid(cid)
    return compute_cid(data) == cid


def validate_cid(cid: str) -> None:
    """Raise :class:`InvalidCIDError` if ``cid`` is malformed."""
    if not isinstance(cid, str) or not cid.startswith(CID_PREFIX):
        raise InvalidCIDError(f"malformed CID {cid!r}: missing {CID_PREFIX!r} prefix")
    digest = cid[len(CID_PREFIX):]
    if len(digest) != 64 or any(c not in "0123456789abcdef" for c in digest):
        raise InvalidCIDError(f"malformed CID {cid!r}: digest must be 64 lowercase hex chars")


def is_valid_cid(cid: str) -> bool:
    """Boolean form of :func:`validate_cid`."""
    try:
        validate_cid(cid)
    except InvalidCIDError:
        return False
    return True
