"""A peer's local block storage with optional pinning and capacity eviction.

Since the storage-backend redesign, :class:`BlockStore` is the *policy* layer
only: it owns the capacity budget and decides when to evict, while the
mechanics (recency order, pinning, byte accounting, transactions) live in a
pluggable :class:`~repro.storage.backend.StorageBackend`.  The public API is
unchanged, so peers, the storage facade and the tests are oblivious to which
medium holds the blocks.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, List, Optional

from repro.storage.backend import MemoryBackend, StorageBackend, StorageWriter
from repro.storage.block import Block


class BlockStore:
    """An LRU-evicting block store over a pluggable backend.

    Pinned blocks (a peer's own published content, index shards a worker bee
    is responsible for) are never evicted; cached blocks (content fetched for
    browsing) are evicted least-recently-used when the capacity is exceeded,
    mirroring how DWeb peers "serve their cached data to peer devices".
    """

    def __init__(
        self,
        capacity_bytes: Optional[int] = None,
        backend: Optional[StorageBackend] = None,
    ) -> None:
        if capacity_bytes is not None and capacity_bytes <= 0:
            raise ValueError(f"capacity_bytes must be positive, got {capacity_bytes!r}")
        self.capacity_bytes = capacity_bytes
        self.backend = backend if backend is not None else MemoryBackend()

    def __contains__(self, cid: str) -> bool:
        return self.backend.has(cid)

    def __len__(self) -> int:
        return len(self.backend)

    def put(self, block: Block, pin: bool = False) -> None:
        """Store ``block``; pinned blocks are exempt from eviction."""
        self.backend.put(block, pin=pin)
        self._evict_if_needed()

    @contextmanager
    def writer(self) -> Iterator[StorageWriter]:
        """Transactional puts: all staged blocks become visible atomically.

        An exception inside the context discards the whole stage — a crash
        mid-publish leaves the store at its previous committed state, never
        a torn prefix.  Eviction runs once, after a successful commit.
        """
        with self.backend.writer() as staged:
            yield staged
        self._evict_if_needed()

    def get(self, cid: str) -> Block:
        """Fetch a block, refreshing its LRU position.  Raises if absent."""
        return self.backend.get(cid)

    def has(self, cid: str) -> bool:
        return self.backend.has(cid)

    def remove(self, cid: str) -> bool:
        return self.backend.delete(cid)

    def pin(self, cid: str) -> None:
        """Mark an already-stored block as pinned."""
        self.backend.pin(cid)

    def is_pinned(self, cid: str) -> bool:
        return self.backend.is_pinned(cid)

    def cids(self) -> List[str]:
        return list(self.backend.iter_cids())

    def total_bytes(self) -> int:
        return self.backend.total_bytes()

    def close(self) -> None:
        """Release backend resources (file handles for on-disk media)."""
        self.backend.close()

    def _evict_if_needed(self) -> None:
        if self.capacity_bytes is None:
            return
        while self.backend.cached_bytes() > self.capacity_bytes:
            if self.backend.evict_one() is None:
                return
