"""A peer's local block storage with optional pinning and capacity eviction."""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional

from repro.errors import BlockNotFoundError
from repro.storage.block import Block


class BlockStore:
    """An in-memory, LRU-evicting block store.

    Pinned blocks (a peer's own published content, index shards a worker bee
    is responsible for) are never evicted; cached blocks (content fetched for
    browsing) are evicted least-recently-used when the capacity is exceeded,
    mirroring how DWeb peers "serve their cached data to peer devices".
    """

    def __init__(self, capacity_bytes: Optional[int] = None) -> None:
        if capacity_bytes is not None and capacity_bytes <= 0:
            raise ValueError(f"capacity_bytes must be positive, got {capacity_bytes!r}")
        self.capacity_bytes = capacity_bytes
        self._blocks: "OrderedDict[str, Block]" = OrderedDict()
        self._pinned: set = set()
        self._cached_bytes = 0

    def __contains__(self, cid: str) -> bool:
        return cid in self._blocks

    def __len__(self) -> int:
        return len(self._blocks)

    def put(self, block: Block, pin: bool = False) -> None:
        """Store ``block``; pinned blocks are exempt from eviction."""
        if block.cid in self._blocks:
            self._blocks.move_to_end(block.cid)
        else:
            self._blocks[block.cid] = block
            if not pin:
                self._cached_bytes += block.size
        if pin:
            if block.cid not in self._pinned:
                self._pinned.add(block.cid)
                # A block promoted to pinned no longer counts against the cache.
                self._cached_bytes = max(0, self._cached_bytes - block.size)
        self._evict_if_needed()

    def get(self, cid: str) -> Block:
        """Fetch a block, refreshing its LRU position.  Raises if absent."""
        block = self._blocks.get(cid)
        if block is None:
            raise BlockNotFoundError(f"block {cid[:16]}… is not stored locally")
        self._blocks.move_to_end(cid)
        return block

    def has(self, cid: str) -> bool:
        return cid in self._blocks

    def remove(self, cid: str) -> bool:
        block = self._blocks.pop(cid, None)
        if block is None:
            return False
        if cid in self._pinned:
            self._pinned.discard(cid)
        else:
            self._cached_bytes = max(0, self._cached_bytes - block.size)
        return True

    def pin(self, cid: str) -> None:
        """Mark an already-stored block as pinned."""
        block = self._blocks.get(cid)
        if block is None:
            raise BlockNotFoundError(f"cannot pin missing block {cid[:16]}…")
        if cid not in self._pinned:
            self._pinned.add(cid)
            self._cached_bytes = max(0, self._cached_bytes - block.size)

    def is_pinned(self, cid: str) -> bool:
        return cid in self._pinned

    def cids(self) -> List[str]:
        return list(self._blocks)

    def total_bytes(self) -> int:
        return sum(block.size for block in self._blocks.values())

    def _evict_if_needed(self) -> None:
        if self.capacity_bytes is None:
            return
        while self._cached_bytes > self.capacity_bytes:
            victim_cid = next(
                (cid for cid in self._blocks if cid not in self._pinned), None
            )
            if victim_cid is None:
                return
            victim = self._blocks.pop(victim_cid)
            self._cached_bytes = max(0, self._cached_bytes - victim.size)
