"""The generic versioned patch channel next to every published artifact.

Every wholesale publication path (index shards, the rank vector) can attach
a *patch* to its new revision: a small payload that rewrites the previous
revision into the new one, keyed by the **content fingerprint** of the base
it applies to.  A reader that still holds the base (a warm
:class:`~repro.index.cache.PostingCache` entry, a frontend's current rank
vector) fetches the patch instead of the full artifact and patches in
place; everyone else — cold readers, readers that missed a generation —
falls back to the full fetch, which is always published and stays
authoritative.

The fingerprint key is what makes patching safe without coordination: a
patch names exactly one base (``base_fp``) and the patched result is
re-fingerprinted against the new revision's manifest entry before it is
served, so a wrong base or a corrupted patch degrades to a full fetch,
never to wrong bytes.  See ``docs/DELTAS.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.errors import ReproError
from repro.storage.ipfs import DecentralizedStorage


@dataclass(frozen=True)
class PatchInfo:
    """Pointer to one published patch, carried inside the artifact manifest.

    ``base_fp`` is the content fingerprint of the *previous* revision the
    patch applies to; ``cid`` addresses the patch payload in decentralized
    storage; ``size`` is the payload's wire cost (what the bytes accounting
    credits the delta channel with).
    """

    base_fp: str
    cid: str
    size: int

    def to_dict(self) -> Dict[str, object]:
        return {"bfp": self.base_fp, "cid": self.cid, "sz": self.size}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "PatchInfo":
        return cls(
            base_fp=str(data.get("bfp", "")),
            cid=str(data.get("cid", "")),
            size=int(data.get("sz", 0)),
        )


@dataclass
class PatchChannelStats:
    """Wire accounting for one patch channel."""

    published: int = 0
    bytes_published: int = 0
    fetched: int = 0
    bytes_fetched: int = 0
    fetch_failures: int = 0

    def reset(self) -> None:
        self.published = 0
        self.bytes_published = 0
        self.fetched = 0
        self.bytes_fetched = 0
        self.fetch_failures = 0


@dataclass
class PatchChannel:
    """Publish/fetch helper shared by the index and rank delta paths.

    Thin by design: the channel stores opaque text payloads and hands back
    :class:`PatchInfo` pointers; *what* a patch contains and *how* it is
    verified after application belongs to the artifact's own publisher and
    reader.  ``fetch`` never raises — a missing or unreachable patch is an
    expected rung on the fallback ladder (patch -> full fetch ->
    authoritative DHT), so it returns ``None`` and counts the failure.
    """

    storage: DecentralizedStorage
    metrics: Optional[object] = None
    stats: PatchChannelStats = field(default_factory=PatchChannelStats)

    def publish(
        self,
        payload: str,
        base_fp: str,
        publisher: Optional[str] = None,
        providers: Optional[Sequence[str]] = None,
    ) -> PatchInfo:
        """Store one patch payload; returns the manifest-embeddable pointer."""
        receipt = self.storage.add_text(payload, publisher=publisher, providers=providers)
        size = len(payload.encode("utf-8"))
        self.stats.published += 1
        self.stats.bytes_published += size
        if self.metrics is not None:
            self.metrics.increment("publish.delta_bytes", size)
        return PatchInfo(base_fp=base_fp, cid=receipt.cid, size=size)

    def fetch(
        self,
        info: PatchInfo,
        requester: Optional[str] = None,
        preferred: Optional[Sequence[str]] = None,
    ) -> Optional[str]:
        """The patch payload behind ``info``, or ``None`` when unreachable."""
        try:
            payload = self.storage.get_text(info.cid, requester=requester, preferred=preferred)
        except ReproError:
            self.stats.fetch_failures += 1
            return None
        self.stats.fetched += 1
        self.stats.bytes_fetched += len(payload.encode("utf-8"))
        return payload
