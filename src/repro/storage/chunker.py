"""Splitting content into fixed-size chunks before building the Merkle DAG."""

from __future__ import annotations

from typing import Iterator, List

DEFAULT_CHUNK_SIZE = 4096


def chunk_bytes(data: bytes, chunk_size: int = DEFAULT_CHUNK_SIZE) -> List[bytes]:
    """Split ``data`` into chunks of at most ``chunk_size`` bytes.

    Empty input yields a single empty chunk so every piece of content —
    including an empty page — has a well-defined root block.
    """
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size!r}")
    if not data:
        return [b""]
    return [data[offset:offset + chunk_size] for offset in range(0, len(data), chunk_size)]


def iter_chunks(data: bytes, chunk_size: int = DEFAULT_CHUNK_SIZE) -> Iterator[bytes]:
    """Generator form of :func:`chunk_bytes` for large payloads."""
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size!r}")
    if not data:
        yield b""
        return
    for offset in range(0, len(data), chunk_size):
        yield data[offset:offset + chunk_size]
