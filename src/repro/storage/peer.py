"""A storage peer: serves blocks it holds to other peers over the network."""

from __future__ import annotations

import base64
from typing import Optional

from repro.net.message import Message, Response
from repro.net.network import SimulatedNetwork
from repro.storage.backend import StorageBackend
from repro.storage.block import Block
from repro.storage.blockstore import BlockStore

GET_BLOCK = "storage.get_block"
HAS_BLOCK = "storage.has_block"
PUT_BLOCK = "storage.put_block"


def encode_block(block: Block) -> dict:
    """Serialize a block for transfer over the simulated network."""
    return {
        "cid": block.cid,
        "data": base64.b64encode(block.data).decode("ascii"),
        "links": list(block.links),
    }


def decode_block(payload: dict) -> Block:
    """Reconstruct a block received over the network."""
    return Block(
        cid=payload["cid"],
        data=base64.b64decode(payload["data"]),
        links=tuple(payload["links"]),
    )


class StoragePeer:
    """A peer participating in the decentralized storage layer.

    Each peer owns a :class:`BlockStore` and answers three RPCs: ``has_block``
    (bitswap's want-have), ``get_block`` (want-block) and ``put_block``
    (replication push from a publisher).
    """

    def __init__(
        self,
        address: str,
        network: SimulatedNetwork,
        capacity_bytes: Optional[int] = None,
        backend: Optional[StorageBackend] = None,
    ) -> None:
        self.address = address
        self.network = network
        self.store = BlockStore(capacity_bytes=capacity_bytes, backend=backend)
        self.blocks_served = 0
        self.blocks_received = 0
        network.register(address, self.handle_message)

    def handle_message(self, message: Message) -> Response:
        """Serve storage RPCs from other peers."""
        if message.msg_type == HAS_BLOCK:
            cid = message.payload["cid"]
            return Response(self.address, HAS_BLOCK, {"has": self.store.has(cid)})
        if message.msg_type == GET_BLOCK:
            cid = message.payload["cid"]
            if not self.store.has(cid):
                return Response.failure(self.address, GET_BLOCK, f"block {cid[:16]}… not held")
            self.blocks_served += 1
            return Response(self.address, GET_BLOCK, {"block": encode_block(self.store.get(cid))})
        if message.msg_type == PUT_BLOCK:
            block = decode_block(message.payload["block"])
            if not block.verify():
                return Response.failure(self.address, PUT_BLOCK, "block failed CID verification")
            self.store.put(block, pin=bool(message.payload.get("pin", False)))
            self.blocks_received += 1
            return Response(self.address, PUT_BLOCK, {"stored": True})
        return Response.failure(self.address, message.msg_type, "unknown storage message type")

    # -- client-side helpers --------------------------------------------------

    def fetch_block_from(self, provider: str, cid: str) -> Optional[Block]:
        """Request one block from ``provider``; returns ``None`` on any failure.

        Goes through the network's resilient request path, so a configured
        :class:`~repro.net.network.RetryPolicy` applies; under the default
        policy this is a plain ``rpc``.
        """
        try:
            response = self.network.request_with_retry(
                self.address, provider, GET_BLOCK, {"cid": cid}
            )
        except Exception:
            return None
        if not response.ok:
            return None
        block = decode_block(response.payload["block"])
        if not block.verify() or block.cid != cid:
            # A provider returned tampered content; reject it.
            return None
        self.store.put(block)
        return block

    def push_block_to(self, target: str, block: Block, pin: bool = False) -> bool:
        """Replicate ``block`` to ``target``; returns ``True`` on success.

        Also routed through the resilient request path: a lossy link no
        longer sinks a replication push when retries are configured.
        """
        try:
            response = self.network.request_with_retry(
                self.address, target, PUT_BLOCK, {"block": encode_block(block), "pin": pin}
            )
        except Exception:
            return False
        return response.ok
