"""The decentralized-storage facade: add/get content by CID with provider
records on the DHT and replication across peers.

This is the component the paper calls "a decentralized storage (e.g. IPFS)":
QueenBee stores page contents, index shards, and page-rank vectors here.
"""

from __future__ import annotations

import os
import re
import tempfile
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import BlockNotFoundError
from repro.dht.dht import DHTNetwork
from repro.net.detector import FailureDetector
from repro.net.network import SimulatedNetwork
from repro.sim.simulator import Simulator
from repro.storage.backend import StorageBackend, create_backend
from repro.storage.block import Block
from repro.storage.chunker import DEFAULT_CHUNK_SIZE
from repro.storage.dag import MerkleDAG
from repro.storage.peer import GET_BLOCK, StoragePeer, decode_block


def provider_key(cid: str) -> str:
    """DHT key under which the providers of ``cid`` are recorded."""
    return f"providers:{cid}"


@dataclass(frozen=True)
class StorageOptions:
    """Storage-layer policy in one bag (mirrors ``FrontendOptions``).

    Replaces the kwarg sprawl the :class:`DecentralizedStorage` constructor
    accumulated (``replication=``, ``chunk_size=``, ``hedged_fetches=`` —
    still accepted, deprecated; see the constructor docstring).
    """

    #: Block-store medium per peer: ``"memory"`` or ``"sqlite"``.
    backend: str = "memory"
    #: Directory for on-disk backend files ("" = per-run temp directory).
    path: str = ""
    #: Peers (incl. the publisher) each add is pushed to (E3's knob).
    replication: int = 3
    #: Merkle-DAG leaf size in bytes.
    chunk_size: int = DEFAULT_CHUNK_SIZE
    #: Per-peer cache budget in bytes (``None`` = unbounded).
    capacity_bytes: Optional[int] = None
    #: Race the first two providers on block fetches (PR 8's tail cut).
    hedged_fetches: bool = False

    @classmethod
    def from_config(cls, config, **overrides) -> "StorageOptions":
        """Build from a :class:`~repro.core.config.QueenBeeConfig`."""
        options = cls(
            backend=config.storage_backend,
            path=config.storage_path,
            replication=config.storage_replication,
            chunk_size=config.chunk_size,
            hedged_fetches=config.hedged_fetches,
        )
        return replace(options, **overrides) if overrides else options


@dataclass(frozen=True)
class StoreReceipt:
    """Structured result of an ``add``: what was stored, where it landed.

    ``providers`` is what actually got announced on the DHT — with pinned
    placement, chosen peers that could not be reached at push time are
    already dropped, so callers recording placements use this, not the
    request.
    """

    cid: str
    providers: Tuple[str, ...]
    size: int
    #: Whether an explicit provider set was requested (placement path).
    placed: bool = False


@dataclass(frozen=True)
class FetchResult:
    """Structured result of a ``get``: the bytes plus how they were reached."""

    cid: str
    data: bytes
    #: Size of the DHT provider record at fetch time.
    providers_known: int
    #: Blocks pulled over the network (0 = served entirely from local store).
    blocks_fetched: int
    #: Provider fetch attempts, including ones that failed (a hedged
    #: two-provider race counts as one logical attempt).
    attempts: int
    #: Whether any block was fetched via a hedged two-provider race.
    hedged: bool

    @property
    def retried(self) -> bool:
        """Whether any block needed more than one provider attempt."""
        return self.attempts > self.blocks_fetched

    @property
    def from_local(self) -> bool:
        return self.blocks_fetched == 0

    @property
    def size(self) -> int:
        return len(self.data)

    @property
    def text(self) -> str:
        return self.data.decode("utf-8")


@dataclass
class _FetchTrace:
    """Mutable per-get accounting threaded through the block-fetch helpers."""

    attempts: int = 0
    blocks_fetched: int = 0
    hedged: bool = False


@dataclass
class StorageStats:
    """Counters reported by the scalability and resilience experiments."""

    adds: int = 0
    gets: int = 0
    failed_gets: int = 0
    blocks_transferred: int = 0
    bytes_added: int = 0
    placed_adds: int = 0
    replications: int = 0
    hedged_gets: int = 0
    per_get_providers: List[int] = field(default_factory=list)

    def reset(self) -> None:
        self.adds = 0
        self.gets = 0
        self.failed_gets = 0
        self.blocks_transferred = 0
        self.bytes_added = 0
        self.placed_adds = 0
        self.replications = 0
        self.hedged_gets = 0
        self.per_get_providers.clear()


class DecentralizedStorage:
    """Content-addressed storage spread over a set of peers.

    Parameters
    ----------
    simulator / network / dht:
        Shared simulation substrate.  The DHT holds provider records.
    options:
        A :class:`StorageOptions` bag (backend medium, replication factor,
        chunk size, hedging) — the preferred way to configure the layer.
    replication / chunk_size / hedged_fetches:
        Deprecated per-field equivalents, kept for back-compat: when given
        they override the corresponding ``options`` field.  New callers
        should pass ``options`` (``StorageOptions.from_config(config)``).
    liveness:
        Wiring, not policy: the engine's :class:`FailureDetector`.
    """

    def __init__(
        self,
        simulator: Simulator,
        network: SimulatedNetwork,
        dht: DHTNetwork,
        options: Optional[StorageOptions] = None,
        replication: Optional[int] = None,
        chunk_size: Optional[int] = None,
        liveness: Optional[FailureDetector] = None,
        hedged_fetches: Optional[bool] = None,
    ) -> None:
        if options is None:
            options = StorageOptions()
        legacy = {}
        if replication is not None:
            legacy["replication"] = replication
        if chunk_size is not None:
            legacy["chunk_size"] = chunk_size
        if hedged_fetches is not None:
            legacy["hedged_fetches"] = hedged_fetches
        if legacy:
            options = replace(options, **legacy)
        if options.replication < 1:
            raise ValueError(
                f"replication must be at least 1, got {options.replication!r}"
            )
        self.simulator = simulator
        self.network = network
        self.dht = dht
        self.options = options
        self.replication = options.replication
        self.liveness = liveness
        self.hedged_fetches = options.hedged_fetches
        self.dag = MerkleDAG(chunk_size=options.chunk_size)
        self.peers: Dict[str, StoragePeer] = {}
        self.stats = StorageStats()
        self._rng = simulator.fork_rng("storage")
        self._backend_dir: Optional[str] = None

    # -- membership -----------------------------------------------------------

    def add_peer(
        self,
        address: Optional[str] = None,
        capacity_bytes: Optional[int] = None,
        backend: Optional[StorageBackend] = None,
    ) -> StoragePeer:
        """Create a storage peer and register it on the network.

        The peer's block-store medium follows ``options.backend`` unless an
        explicit ``backend`` instance is supplied (tests use this to mix
        media inside one overlay).
        """
        if address is None:
            address = f"store-{len(self.peers)}"
        if backend is None:
            backend = self._make_backend(address)
        if capacity_bytes is None:
            capacity_bytes = self.options.capacity_bytes
        peer = StoragePeer(
            address, self.network, capacity_bytes=capacity_bytes, backend=backend
        )
        self.peers[address] = peer
        return peer

    def _make_backend(self, address: str) -> StorageBackend:
        if self.options.backend == "memory":
            return create_backend("memory")
        safe = re.sub(r"[^A-Za-z0-9_.-]", "_", address)
        return create_backend(
            self.options.backend, os.path.join(self._backend_directory(), f"{safe}.db")
        )

    def _backend_directory(self) -> str:
        if self._backend_dir is None:
            if self.options.path:
                os.makedirs(self.options.path, exist_ok=True)
                self._backend_dir = self.options.path
            else:
                self._backend_dir = tempfile.mkdtemp(prefix="queenbee-blocks-")
        return self._backend_dir

    def close(self) -> None:
        """Release every peer's backend resources (on-disk file handles)."""
        for address in sorted(self.peers):
            self.peers[address].store.close()

    def build(self, count: int) -> List[StoragePeer]:
        return [self.add_peer() for _ in range(count)]

    def peer_addresses(self) -> List[str]:
        return sorted(self.peers)

    def random_peer(self) -> StoragePeer:
        online = [p for a, p in self.peers.items() if self.network.is_online(a)]
        if not online:
            raise BlockNotFoundError("no online storage peers available")
        return self._rng.choice(online)

    # -- add / get ------------------------------------------------------------

    def add_bytes(
        self,
        data: bytes,
        publisher: Optional[str] = None,
        providers: Optional[Sequence[str]] = None,
    ) -> StoreReceipt:
        """Publish ``data``; returns a :class:`StoreReceipt`.

        Without ``providers`` (the default path), the publisher pins every
        block and replicates to ``replication - 1`` random online peers; the
        publisher plus the replicas become the provider set.

        With ``providers`` (pinned replica placement — the index placement
        layer uses this), the content is pushed and pinned onto *exactly*
        those peers and only they are announced: the publisher does not
        become an implicit provider, which is what lets a placement policy
        bound any single peer's serving load.  Chosen peers that cannot be
        reached at push time are dropped from the announcement; if every one
        fails, the publisher pins and announces itself so the content is
        never lost.  ``receipt.providers`` is what actually got announced —
        callers recording placements must use it, not the request.

        A peer's own pins go through the store's transactional writer, so a
        crash mid-publish leaves that peer at its previous committed state
        (old-or-new, composing with the manifest-put commit point).
        """
        origin = self.peers[publisher] if publisher is not None else self.random_peer()
        result = self.dag.build(data)
        if providers:
            holders: List[str] = []
            for target in providers:
                if target == origin.address:
                    self._pin_locally(origin, result.blocks)
                    holders.append(target)
                    continue
                delivered = 0
                for block in result.blocks:
                    if not origin.push_block_to(target, block, pin=True):
                        break
                    delivered += 1
                self.stats.blocks_transferred += delivered
                if delivered == len(result.blocks):
                    holders.append(target)
            if not holders:
                self._pin_locally(origin, result.blocks)
                holders = [origin.address]
            self.stats.placed_adds += 1
        else:
            self._pin_locally(origin, result.blocks)
            replicas = self._choose_replicas(origin.address, self.replication - 1)
            for replica_address in replicas:
                for block in result.blocks:
                    if origin.push_block_to(replica_address, block, pin=True):
                        self.stats.blocks_transferred += 1
            holders = [origin.address] + replicas
        for holder in holders:
            self.dht.add_to_set(provider_key(result.root_cid), holder)
        self.stats.adds += 1
        self.stats.bytes_added += len(data)
        return StoreReceipt(
            cid=result.root_cid,
            providers=tuple(holders),
            size=len(data),
            placed=bool(providers),
        )

    @staticmethod
    def _pin_locally(origin: StoragePeer, blocks: Sequence[Block]) -> None:
        """Pin a whole DAG on ``origin`` atomically (old-or-new, never torn)."""
        with origin.store.writer() as txn:
            for block in blocks:
                txn.put(block, pin=True)

    def add_bytes_placed(
        self,
        data: bytes,
        publisher: Optional[str] = None,
        providers: Optional[Sequence[str]] = None,
    ) -> Tuple[str, List[str]]:
        """Deprecated: ``add_bytes`` now takes ``providers`` and returns a
        :class:`StoreReceipt`; this shim unpacks it to the old tuple."""
        receipt = self.add_bytes(data, publisher=publisher, providers=providers)
        return receipt.cid, list(receipt.providers)

    def add_text(
        self,
        text: str,
        publisher: Optional[str] = None,
        providers: Optional[Sequence[str]] = None,
    ) -> StoreReceipt:
        """Convenience wrapper for publishing UTF-8 text (web pages)."""
        return self.add_bytes(
            text.encode("utf-8"), publisher=publisher, providers=providers
        )

    def add_text_placed(
        self,
        text: str,
        publisher: Optional[str] = None,
        providers: Optional[Sequence[str]] = None,
    ) -> Tuple[str, List[str]]:
        """Deprecated: use ``add_text(...)`` and read the receipt's fields."""
        receipt = self.add_text(text, publisher=publisher, providers=providers)
        return receipt.cid, list(receipt.providers)

    def get_bytes(
        self,
        cid: str,
        requester: Optional[str] = None,
        preferred: Optional[Sequence[str]] = None,
    ) -> FetchResult:
        """Fetch and reassemble the content behind ``cid``.

        Returns a :class:`FetchResult` — the reassembled bytes plus how they
        were reached (providers known, blocks pulled remotely, attempts,
        hedging).  Callers that only want the payload read ``.data``/``.text``.

        ``preferred`` is an ordered provider routing hint (the index passes
        the manifest's provider set ranked least-loaded-first): live
        preferred peers are tried before the DHT provider record's order, and
        a preferred peer that fails simply falls through to the rest — the
        hint can redirect load but never lose reachable content.

        Raises :class:`BlockNotFoundError` when no reachable provider holds
        the content (the failure mode counted by the resilience experiment).
        """
        peer = self.peers[requester] if requester is not None else self.random_peer()
        self.stats.gets += 1
        providers = [p for p in self.dht.get_set(provider_key(cid)) if isinstance(p, str)]
        self.stats.per_get_providers.append(len(providers))
        reachable = self._route_candidates(providers, preferred, exclude=peer.address)
        trace = _FetchTrace()
        if peer.store.has(cid):
            root = peer.store.get(cid)
        else:
            root = self._fetch_from_any(peer, reachable, cid, trace)
            if root is None:
                self.stats.failed_gets += 1
                raise BlockNotFoundError(f"no reachable provider holds root block {cid[:16]}…")
        blocks_by_cid: Dict[str, Block] = {}
        for link in root.links:
            if peer.store.has(link):
                blocks_by_cid[link] = peer.store.get(link)
                continue
            block = self._fetch_from_any(peer, reachable, link, trace)
            if block is None:
                self.stats.failed_gets += 1
                raise BlockNotFoundError(f"no reachable provider holds chunk {link[:16]}…")
            blocks_by_cid[link] = block
        return FetchResult(
            cid=cid,
            data=self.dag.assemble(root, blocks_by_cid),
            providers_known=len(providers),
            blocks_fetched=trace.blocks_fetched,
            attempts=trace.attempts,
            hedged=trace.hedged,
        )

    def get_text(
        self,
        cid: str,
        requester: Optional[str] = None,
        preferred: Optional[Sequence[str]] = None,
    ) -> str:
        """Fetch content and decode it as UTF-8 text."""
        return self.get_bytes(cid, requester=requester, preferred=preferred).text

    def providers_of(self, cid: str) -> List[str]:
        """The peers currently announced as providers of ``cid``."""
        return sorted(p for p in self.dht.get_set(provider_key(cid)) if isinstance(p, str))

    def replicate_to(self, cid: str, targets: Sequence[str]) -> List[str]:
        """Re-replicate already-published content onto ``targets`` (repair).

        A live announced provider that still holds the full DAG pushes every
        block (pinned) to each target; successfully supplied targets are
        announced as new providers.  Returns the targets that now hold the
        content — empty when no reachable source held the complete DAG (the
        caller records the deficit and retries after the next join).
        """
        providers = [p for p in self.dht.get_set(provider_key(cid)) if isinstance(p, str)]
        sources = [
            p
            for p in providers
            if self.network.is_online(p) and p in self.peers and self.peers[p].store.has(cid)
        ]
        supplied: List[str] = []
        remaining = list(dict.fromkeys(targets))
        # Every complete source gets a chance at the targets still missing
        # the content, so one lossy push does not sink the whole repair.
        for source_address in sources:
            if not remaining:
                break
            source = self.peers[source_address]
            root = source.store.get(cid)
            if not all(source.store.has(link) for link in root.links):
                continue
            blocks = [root] + [source.store.get(link) for link in root.links]
            for target in list(remaining):
                if target == source_address:
                    # Already a live holder: nothing to transfer, just make
                    # sure it is announced and report it as supplied.
                    supplied.append(target)
                    remaining.remove(target)
                    self.dht.add_to_set(provider_key(cid), target)
                    continue
                delivered = 0
                for block in blocks:
                    if not source.push_block_to(target, block, pin=True):
                        break
                    delivered += 1
                self.stats.blocks_transferred += delivered
                if delivered == len(blocks):
                    supplied.append(target)
                    remaining.remove(target)
                    self.dht.add_to_set(provider_key(cid), target)
        if supplied:
            self.stats.replications += 1
        return supplied

    # -- liveness -------------------------------------------------------------

    def presumed_alive(self, address: str) -> bool:
        """The fetch path's liveness estimate for routing decisions.

        With a :class:`FailureDetector` attached this is the *local*
        verdict built from observed RPC outcomes; without one it falls
        back to the network's global oracle (the ablation baseline).
        """
        if self.liveness is not None:
            return self.liveness.is_alive(address)
        return self.network.is_online(address)

    def _route_candidates(
        self,
        providers: Sequence[str],
        preferred: Optional[Sequence[str]],
        exclude: str,
    ) -> List[str]:
        """Provider fetch order: preferred hint first, suspected peers last.

        Unlike the old oracle filter, a suspected peer is demoted to the
        *end* of the order rather than removed: the detector can be wrong,
        and a fetch must never fail without having tried every announced
        provider.  (Trying a truly-dead peer is free — the network raises
        immediately with no clock charge.)
        """
        ordered: List[str] = []
        seen = set()
        for address in list(preferred or []) + list(providers):
            if address == exclude or address in seen:
                continue
            seen.add(address)
            ordered.append(address)
        alive = [a for a in ordered if self.presumed_alive(a)]
        suspect = [a for a in ordered if not self.presumed_alive(a)]
        return alive + suspect

    # -- internals ------------------------------------------------------------

    def _choose_replicas(self, publisher: str, count: int) -> List[str]:
        candidates = [a for a in self.peer_addresses() if a != publisher and self.network.is_online(a)]
        if count <= 0 or not candidates:
            return []
        return self._rng.sample(candidates, min(count, len(candidates)))

    def _fetch_from_any(
        self,
        peer: StoragePeer,
        providers: List[str],
        cid: str,
        trace: Optional[_FetchTrace] = None,
    ) -> Optional[Block]:
        providers = list(providers)
        if trace is None:
            trace = _FetchTrace()
        if self.hedged_fetches and len(providers) > 1:
            # Hedge the first two candidates: the clock pays only the
            # winner's round trip, cutting the tail a straggler provider
            # would otherwise set.  On a double miss, fall through to the
            # rest sequentially.
            self.stats.hedged_gets += 1
            trace.hedged = True
            # One logical attempt, fanned out to two peers by the race.
            trace.attempts += 1
            _, response = self.network.rpc_hedged(
                peer.address,
                [(p, GET_BLOCK, {"cid": cid}) for p in providers[:2]],
            )
            block = self._accept_block(peer, response, cid)
            if block is not None:
                self.stats.blocks_transferred += 1
                trace.blocks_fetched += 1
                return block
            providers = providers[2:]
        for provider in providers:
            trace.attempts += 1
            block = peer.fetch_block_from(provider, cid)
            if block is not None:
                self.stats.blocks_transferred += 1
                trace.blocks_fetched += 1
                return block
        return None

    def _accept_block(
        self, peer: StoragePeer, response: Optional[object], cid: str
    ) -> Optional[Block]:
        """Validate a hedged GET_BLOCK response exactly like a direct fetch."""
        if response is None or not response.ok:
            return None
        block = decode_block(response.payload["block"])
        if not block.verify() or block.cid != cid:
            return None
        peer.store.put(block)
        return block
