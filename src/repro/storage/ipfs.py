"""The decentralized-storage facade: add/get content by CID with provider
records on the DHT and replication across peers.

This is the component the paper calls "a decentralized storage (e.g. IPFS)":
QueenBee stores page contents, index shards, and page-rank vectors here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.errors import BlockNotFoundError
from repro.dht.dht import DHTNetwork
from repro.net.network import SimulatedNetwork
from repro.sim.simulator import Simulator
from repro.storage.block import Block
from repro.storage.chunker import DEFAULT_CHUNK_SIZE
from repro.storage.dag import MerkleDAG
from repro.storage.peer import StoragePeer


def provider_key(cid: str) -> str:
    """DHT key under which the providers of ``cid`` are recorded."""
    return f"providers:{cid}"


@dataclass
class StorageStats:
    """Counters reported by the scalability and resilience experiments."""

    adds: int = 0
    gets: int = 0
    failed_gets: int = 0
    blocks_transferred: int = 0
    bytes_added: int = 0
    per_get_providers: List[int] = field(default_factory=list)

    def reset(self) -> None:
        self.adds = 0
        self.gets = 0
        self.failed_gets = 0
        self.blocks_transferred = 0
        self.bytes_added = 0
        self.per_get_providers.clear()


class DecentralizedStorage:
    """Content-addressed storage spread over a set of peers.

    Parameters
    ----------
    simulator / network / dht:
        Shared simulation substrate.  The DHT holds provider records.
    replication:
        Number of peers (including the publisher) each piece of content is
        pushed to at ``add`` time.  Higher replication survives more churn
        (experiment E3's knob).
    chunk_size:
        Merkle-DAG leaf size in bytes.
    """

    def __init__(
        self,
        simulator: Simulator,
        network: SimulatedNetwork,
        dht: DHTNetwork,
        replication: int = 3,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> None:
        if replication < 1:
            raise ValueError(f"replication must be at least 1, got {replication!r}")
        self.simulator = simulator
        self.network = network
        self.dht = dht
        self.replication = replication
        self.dag = MerkleDAG(chunk_size=chunk_size)
        self.peers: Dict[str, StoragePeer] = {}
        self.stats = StorageStats()
        self._rng = simulator.fork_rng("storage")

    # -- membership -----------------------------------------------------------

    def add_peer(self, address: Optional[str] = None, capacity_bytes: Optional[int] = None) -> StoragePeer:
        """Create a storage peer and register it on the network."""
        if address is None:
            address = f"store-{len(self.peers)}"
        peer = StoragePeer(address, self.network, capacity_bytes=capacity_bytes)
        self.peers[address] = peer
        return peer

    def build(self, count: int) -> List[StoragePeer]:
        return [self.add_peer() for _ in range(count)]

    def peer_addresses(self) -> List[str]:
        return sorted(self.peers)

    def random_peer(self) -> StoragePeer:
        online = [p for a, p in self.peers.items() if self.network.is_online(a)]
        if not online:
            raise BlockNotFoundError("no online storage peers available")
        return self._rng.choice(online)

    # -- add / get ------------------------------------------------------------

    def add_bytes(self, data: bytes, publisher: Optional[str] = None) -> str:
        """Publish ``data``: build its DAG, pin it on the publisher, replicate,
        and announce provider records in the DHT.  Returns the root CID."""
        origin = self.peers[publisher] if publisher is not None else self.random_peer()
        result = self.dag.build(data)
        for block in result.blocks:
            origin.store.put(block, pin=True)
        replicas = self._choose_replicas(origin.address, self.replication - 1)
        for replica_address in replicas:
            for block in result.blocks:
                if origin.push_block_to(replica_address, block, pin=True):
                    self.stats.blocks_transferred += 1
        for holder in [origin.address] + replicas:
            self.dht.add_to_set(provider_key(result.root_cid), holder)
        self.stats.adds += 1
        self.stats.bytes_added += len(data)
        return result.root_cid

    def add_text(self, text: str, publisher: Optional[str] = None) -> str:
        """Convenience wrapper for publishing UTF-8 text (web pages)."""
        return self.add_bytes(text.encode("utf-8"), publisher=publisher)

    def get_bytes(self, cid: str, requester: Optional[str] = None) -> bytes:
        """Fetch and reassemble the content behind ``cid``.

        Raises :class:`BlockNotFoundError` when no reachable provider holds
        the content (the failure mode counted by the resilience experiment).
        """
        peer = self.peers[requester] if requester is not None else self.random_peer()
        self.stats.gets += 1
        providers = [p for p in self.dht.get_set(provider_key(cid)) if isinstance(p, str)]
        self.stats.per_get_providers.append(len(providers))
        reachable = [p for p in providers if self.network.is_online(p) and p != peer.address]
        if peer.store.has(cid):
            root = peer.store.get(cid)
        else:
            root = self._fetch_from_any(peer, reachable, cid)
            if root is None:
                self.stats.failed_gets += 1
                raise BlockNotFoundError(f"no reachable provider holds root block {cid[:16]}…")
        blocks_by_cid: Dict[str, Block] = {}
        for link in root.links:
            if peer.store.has(link):
                blocks_by_cid[link] = peer.store.get(link)
                continue
            block = self._fetch_from_any(peer, reachable, link)
            if block is None:
                self.stats.failed_gets += 1
                raise BlockNotFoundError(f"no reachable provider holds chunk {link[:16]}…")
            blocks_by_cid[link] = block
        return self.dag.assemble(root, blocks_by_cid)

    def get_text(self, cid: str, requester: Optional[str] = None) -> str:
        """Fetch content and decode it as UTF-8 text."""
        return self.get_bytes(cid, requester=requester).decode("utf-8")

    def providers_of(self, cid: str) -> List[str]:
        """The peers currently announced as providers of ``cid``."""
        return sorted(p for p in self.dht.get_set(provider_key(cid)) if isinstance(p, str))

    # -- internals ------------------------------------------------------------

    def _choose_replicas(self, publisher: str, count: int) -> List[str]:
        candidates = [a for a in self.peer_addresses() if a != publisher and self.network.is_online(a)]
        if count <= 0 or not candidates:
            return []
        return self._rng.sample(candidates, min(count, len(candidates)))

    def _fetch_from_any(self, peer: StoragePeer, providers: List[str], cid: str) -> Optional[Block]:
        for provider in providers:
            block = peer.fetch_block_from(provider, cid)
            if block is not None:
                self.stats.blocks_transferred += 1
                return block
        return None
