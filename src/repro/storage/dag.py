"""Merkle DAG construction: turning a page's bytes into linked blocks."""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import BlockNotFoundError, InvalidCIDError
from repro.storage.block import Block
from repro.storage.chunker import DEFAULT_CHUNK_SIZE, chunk_bytes


@dataclass
class DAGBuildResult:
    """The blocks produced for one piece of content plus its root CID."""

    root_cid: str
    blocks: List[Block]

    @property
    def total_bytes(self) -> int:
        return sum(block.size for block in self.blocks)


class MerkleDAG:
    """Builds and reassembles content as a two-level Merkle DAG.

    Leaves hold raw chunks; the root holds a small JSON manifest and links to
    every leaf.  Content of a single chunk still gets a root so that every
    published page is addressed by exactly one CID.
    """

    def __init__(self, chunk_size: int = DEFAULT_CHUNK_SIZE) -> None:
        if chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size!r}")
        self.chunk_size = chunk_size

    def build(self, data: bytes) -> DAGBuildResult:
        """Chunk ``data`` and return all blocks (leaves first, root last)."""
        chunks = chunk_bytes(data, self.chunk_size)
        leaves = [Block.create(chunk) for chunk in chunks]
        manifest = json.dumps(
            {"type": "file", "size": len(data), "chunks": len(leaves)},
            sort_keys=True,
        ).encode("utf-8")
        root = Block.create(manifest, links=tuple(leaf.cid for leaf in leaves))
        return DAGBuildResult(root_cid=root.cid, blocks=leaves + [root])

    def assemble(self, root: Block, blocks_by_cid: Dict[str, Block]) -> bytes:
        """Reassemble the original bytes from the root and a block mapping.

        Every block is verified against its CID; a corrupted block raises
        :class:`InvalidCIDError`, a missing one :class:`BlockNotFoundError`.
        """
        root.ensure_valid()
        try:
            manifest = json.loads(root.data.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise InvalidCIDError(f"root block {root.cid[:16]}… has a malformed manifest") from exc
        pieces: List[bytes] = []
        for cid in root.links:
            block = blocks_by_cid.get(cid)
            if block is None:
                raise BlockNotFoundError(f"missing chunk {cid[:16]}… while assembling {root.cid[:16]}…")
            block.ensure_valid()
            pieces.append(block.data)
        data = b"".join(pieces)
        expected_size = manifest.get("size")
        if expected_size is not None and expected_size != len(data):
            raise InvalidCIDError(
                f"assembled size {len(data)} does not match manifest size {expected_size}"
            )
        return data
