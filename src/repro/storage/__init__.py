"""Decentralized, content-addressed storage (the paper's IPFS substitute).

Contents in DWeb are "uniquely identified by a cryptographic hash" and served
by peers that cache them.  This package reproduces the pieces of that model
QueenBee depends on:

* :mod:`repro.storage.cid` — content identifiers (SHA-256 based).
* :mod:`repro.storage.block` / :mod:`repro.storage.chunker` /
  :mod:`repro.storage.dag` — blocks, chunking, and Merkle-DAG files.
* :mod:`repro.storage.blockstore` — per-peer local block storage.
* :mod:`repro.storage.peer` — a storage peer serving blocks over the network.
* :mod:`repro.storage.ipfs` — :class:`DecentralizedStorage`, the add/get
  facade with provider records on the DHT and replication.
"""

from repro.storage.cid import compute_cid, verify_cid
from repro.storage.block import Block
from repro.storage.chunker import chunk_bytes
from repro.storage.dag import MerkleDAG
from repro.storage.backend import (
    MemoryBackend,
    SqliteBackend,
    StorageBackend,
    create_backend,
)
from repro.storage.blockstore import BlockStore
from repro.storage.peer import StoragePeer
from repro.storage.ipfs import (
    DecentralizedStorage,
    FetchResult,
    StorageOptions,
    StoreReceipt,
)

__all__ = [
    "compute_cid",
    "verify_cid",
    "Block",
    "chunk_bytes",
    "MerkleDAG",
    "StorageBackend",
    "MemoryBackend",
    "SqliteBackend",
    "create_backend",
    "BlockStore",
    "StoragePeer",
    "DecentralizedStorage",
    "StorageOptions",
    "StoreReceipt",
    "FetchResult",
]
