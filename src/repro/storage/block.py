"""The unit of storage and transfer: an immutable, content-addressed block."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.errors import InvalidCIDError
from repro.storage.cid import compute_cid


@dataclass(frozen=True)
class Block:
    """An immutable block: raw data plus links to child blocks (Merkle DAG edges).

    The CID commits to both the data and the links, so changing either is
    detectable — the tamper-proof property the paper highlights.
    """

    cid: str
    data: bytes
    links: Tuple[str, ...] = field(default_factory=tuple)

    @classmethod
    def create(cls, data: bytes, links: Tuple[str, ...] = ()) -> "Block":
        """Build a block, deriving its CID from data and links."""
        cid = compute_cid(cls._canonical_bytes(data, links))
        return cls(cid=cid, data=data, links=tuple(links))

    @staticmethod
    def _canonical_bytes(data: bytes, links: Tuple[str, ...]) -> bytes:
        link_part = "\n".join(links).encode("utf-8")
        return len(link_part).to_bytes(4, "big") + link_part + data

    def verify(self) -> bool:
        """Whether the stored CID matches the block's contents."""
        return self.cid == compute_cid(self._canonical_bytes(self.data, self.links))

    @property
    def size(self) -> int:
        """Payload size in bytes (links excluded)."""
        return len(self.data)

    def ensure_valid(self) -> None:
        """Raise :class:`InvalidCIDError` if the block has been tampered with."""
        if not self.verify():
            raise InvalidCIDError(f"block {self.cid[:16]}… failed content verification")
