"""Pluggable per-peer block-storage backends behind :class:`BlockStore`.

The storage layer is redesigned around an explicit :class:`StorageBackend`
protocol so new media can plug in without touching any caller: the engine,
peers and tests all keep talking to :class:`~repro.storage.blockstore.BlockStore`,
which delegates the mechanics (recency order, pinning, byte accounting,
eviction victims, transactions) to a backend.

Two implementations ship:

* :class:`MemoryBackend` — the original python-dict store, kept as the
  bit-identical ablation.  Its recency/accounting semantics are the
  reference contract every other backend must reproduce exactly, because
  eviction order is visible to the simulation (a divergent victim changes
  which fetches hit the network).
* :class:`SqliteBackend` — a single-file on-disk store (the caterpillar
  ``storage/sqlite.py`` idiom): one writer connection with explicit
  transactions, reads over committed revisions only.  It lets the E4
  scalability sweep run corpora that no longer fit comfortably in python
  dicts, with sim-visible behaviour bit-identical to the memory backend.

Both backends expose a transactional :meth:`StorageBackend.writer` context:
puts staged inside it become visible atomically at exit, and an exception
(the simulated crash model — a publish aborted mid-flight) discards the
stage entirely.  A reader therefore always observes old-or-new, never a torn
prefix; composed with the manifest-DHT-put commit point this is what keeps
crash-interrupted publishes invisible (see docs/RESILIENCE.md).
"""

from __future__ import annotations

import abc
import os
import sqlite3
from collections import OrderedDict
from contextlib import contextmanager
from typing import Iterator, List, Optional, Tuple

from repro.errors import BlockNotFoundError
from repro.storage.block import Block


class StorageWriter:
    """Staged puts for one transaction; handed out by ``backend.writer()``."""

    def __init__(self) -> None:
        self._staged: List[Tuple[Block, bool]] = []

    def put(self, block: Block, pin: bool = False) -> None:
        """Stage ``block`` for the commit; invisible to readers until then."""
        self._staged.append((block, pin))


class StorageBackend(abc.ABC):
    """The protocol every block-storage medium implements.

    Semantics (shared contract, pinned by the conformance suite):

    * ``get``/``put`` refresh a block's recency; ``pin`` does not.
    * ``evict_one`` removes and returns the least-recently-used *unpinned*
      block's CID (``None`` when everything is pinned or the store is empty).
    * ``cached_bytes`` counts only unpinned payload bytes — the quantity the
      capacity policy in :class:`~repro.storage.blockstore.BlockStore`
      compares against.
    * ``writer()`` yields a :class:`StorageWriter`; staged puts apply
      atomically on clean exit and are discarded wholesale on exception.
    """

    @abc.abstractmethod
    def get(self, cid: str) -> Block:
        """Return the block, refreshing recency; raise ``BlockNotFoundError``."""

    @abc.abstractmethod
    def put(self, block: Block, pin: bool = False) -> None:
        """Store (or refresh) a block, optionally pinning it."""

    @abc.abstractmethod
    def has(self, cid: str) -> bool: ...

    @abc.abstractmethod
    def delete(self, cid: str) -> bool:
        """Drop a block; returns whether it was present."""

    @abc.abstractmethod
    def pin(self, cid: str) -> None:
        """Pin an already-stored block; raise ``BlockNotFoundError`` if absent."""

    @abc.abstractmethod
    def is_pinned(self, cid: str) -> bool: ...

    @abc.abstractmethod
    def evict_one(self) -> Optional[str]:
        """Evict and return the LRU unpinned block's CID (``None`` if none)."""

    @abc.abstractmethod
    def iter_cids(self) -> Iterator[str]:
        """All stored CIDs in recency order (LRU first)."""

    @abc.abstractmethod
    def cached_bytes(self) -> int: ...

    @abc.abstractmethod
    def total_bytes(self) -> int: ...

    @abc.abstractmethod
    def __len__(self) -> int: ...

    @contextmanager
    def writer(self) -> Iterator[StorageWriter]:
        """Transactional put context: all-or-nothing visibility at exit."""
        staged = StorageWriter()
        yield staged
        # Only reached when the body did not raise: apply the stage.
        self._commit(staged._staged)

    @abc.abstractmethod
    def _commit(self, staged: List[Tuple[Block, bool]]) -> None:
        """Apply a writer's staged puts atomically."""

    def close(self) -> None:
        """Release any resources (no-op for in-memory media)."""


class MemoryBackend(StorageBackend):
    """The original dict-backed store; the bit-identical reference backend.

    One deliberate quirk is preserved from the pre-backend ``BlockStore``:
    putting a *new* block with ``pin=True`` decrements ``cached_bytes``
    (clamped at zero) even though the block was never counted as cached.
    Changing it would change eviction timing, which is sim-visible — so the
    sqlite backend replicates it too.
    """

    def __init__(self) -> None:
        self._blocks: "OrderedDict[str, Block]" = OrderedDict()
        self._pinned: set = set()
        self._cached_bytes = 0

    def get(self, cid: str) -> Block:
        block = self._blocks.get(cid)
        if block is None:
            raise BlockNotFoundError(f"block {cid[:16]}… is not stored locally")
        self._blocks.move_to_end(cid)
        return block

    def put(self, block: Block, pin: bool = False) -> None:
        if block.cid in self._blocks:
            self._blocks.move_to_end(block.cid)
        else:
            self._blocks[block.cid] = block
            if not pin:
                self._cached_bytes += block.size
        if pin and block.cid not in self._pinned:
            self._pinned.add(block.cid)
            # A pinned block no longer counts against the cache.
            self._cached_bytes = max(0, self._cached_bytes - block.size)

    def has(self, cid: str) -> bool:
        return cid in self._blocks

    def delete(self, cid: str) -> bool:
        block = self._blocks.pop(cid, None)
        if block is None:
            return False
        if cid in self._pinned:
            self._pinned.discard(cid)
        else:
            self._cached_bytes = max(0, self._cached_bytes - block.size)
        return True

    def pin(self, cid: str) -> None:
        if cid not in self._blocks:
            raise BlockNotFoundError(f"cannot pin missing block {cid[:16]}…")
        if cid not in self._pinned:
            self._pinned.add(cid)
            self._cached_bytes = max(0, self._cached_bytes - self._blocks[cid].size)

    def is_pinned(self, cid: str) -> bool:
        return cid in self._pinned

    def evict_one(self) -> Optional[str]:
        victim_cid = next(
            (cid for cid in self._blocks if cid not in self._pinned), None
        )
        if victim_cid is None:
            return None
        victim = self._blocks.pop(victim_cid)
        self._cached_bytes = max(0, self._cached_bytes - victim.size)
        return victim_cid

    def iter_cids(self) -> Iterator[str]:
        return iter(list(self._blocks))

    def cached_bytes(self) -> int:
        return self._cached_bytes

    def total_bytes(self) -> int:
        return sum(block.size for block in self._blocks.values())

    def __len__(self) -> int:
        return len(self._blocks)

    def _commit(self, staged: List[Tuple[Block, bool]]) -> None:
        for block, pin in staged:
            self.put(block, pin=pin)


_SCHEMA = """
CREATE TABLE IF NOT EXISTS blocks (
    cid    TEXT PRIMARY KEY,
    data   BLOB NOT NULL,
    links  TEXT NOT NULL,
    size   INTEGER NOT NULL,
    pinned INTEGER NOT NULL,
    seq    INTEGER NOT NULL
);
CREATE INDEX IF NOT EXISTS blocks_seq ON blocks (seq);
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value INTEGER NOT NULL
);
"""


class SqliteBackend(StorageBackend):
    """Single-file on-disk block store with committed-revision reads.

    Layout: one ``blocks`` table (payload, links, pin flag, recency ``seq``)
    plus a ``meta`` table carrying the monotonic recency counter, the
    unpinned-byte account and a ``revision`` bumped per committed writer
    transaction.  Recency and accounting transitions mirror
    :class:`MemoryBackend` operation for operation, so a simulation run is
    bit-identical across backends (asserted by the conformance suite and the
    E4 smoke job).

    Transactions: the connection runs in autocommit; ``writer()`` stages
    puts in python and applies them inside one explicit ``BEGIN``/``COMMIT``,
    so concurrent reads (and a reopened file after an aborted stage) observe
    only committed revisions.  ``synchronous=OFF`` skips fsyncs — the crash
    model here is a raised exception (the simulator's crash windows), not a
    kernel panic, and the E4 sweep pays the write path thousands of times.
    """

    def __init__(self, path: str) -> None:
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self.path = path
        self._db = sqlite3.connect(path, isolation_level=None)
        self._db.execute("PRAGMA synchronous=OFF")
        self._db.execute("PRAGMA journal_mode=MEMORY")
        self._db.executescript(_SCHEMA)
        self._next_seq = self._meta("next_seq", 0)
        self._cached = self._meta("cached_bytes", None)
        if self._cached is None:
            row = self._db.execute(
                "SELECT COALESCE(SUM(size), 0) FROM blocks WHERE pinned = 0"
            ).fetchone()
            self._cached = int(row[0])

    # -- meta helpers ---------------------------------------------------------

    def _meta(self, key: str, default):
        row = self._db.execute("SELECT value FROM meta WHERE key = ?", (key,)).fetchone()
        return int(row[0]) if row is not None else default

    def _set_meta(self, key: str, value: int) -> None:
        self._db.execute(
            "INSERT INTO meta (key, value) VALUES (?, ?) "
            "ON CONFLICT(key) DO UPDATE SET value = excluded.value",
            (key, value),
        )

    def _bump_seq(self) -> int:
        seq = self._next_seq
        self._next_seq += 1
        self._set_meta("next_seq", self._next_seq)
        return seq

    def _set_cached(self, value: int) -> None:
        self._cached = value
        self._set_meta("cached_bytes", value)

    @property
    def revision(self) -> int:
        """Count of committed writer transactions (persisted across reopens)."""
        return self._meta("revision", 0)

    # -- protocol -------------------------------------------------------------

    def get(self, cid: str) -> Block:
        row = self._db.execute(
            "SELECT data, links FROM blocks WHERE cid = ?", (cid,)
        ).fetchone()
        if row is None:
            raise BlockNotFoundError(f"block {cid[:16]}… is not stored locally")
        self._db.execute(
            "UPDATE blocks SET seq = ? WHERE cid = ?", (self._bump_seq(), cid)
        )
        links = tuple(row[1].split("\n")) if row[1] else ()
        return Block(cid=cid, data=row[0], links=links)

    def put(self, block: Block, pin: bool = False) -> None:
        self._put_row(block, pin)

    def _put_row(self, block: Block, pin: bool) -> None:
        row = self._db.execute(
            "SELECT pinned FROM blocks WHERE cid = ?", (block.cid,)
        ).fetchone()
        if row is not None:
            self._db.execute(
                "UPDATE blocks SET seq = ? WHERE cid = ?",
                (self._bump_seq(), block.cid),
            )
            already_pinned = bool(row[0])
        else:
            self._db.execute(
                "INSERT INTO blocks (cid, data, links, size, pinned, seq) "
                "VALUES (?, ?, ?, ?, ?, ?)",
                (
                    block.cid,
                    block.data,
                    "\n".join(block.links),
                    block.size,
                    1 if pin else 0,
                    self._bump_seq(),
                ),
            )
            already_pinned = pin
            if not pin:
                self._set_cached(self._cached + block.size)
            else:
                # Mirror MemoryBackend's new-pinned-put accounting quirk.
                self._set_cached(max(0, self._cached - block.size))
        if pin and row is not None and not already_pinned:
            self._db.execute(
                "UPDATE blocks SET pinned = 1 WHERE cid = ?", (block.cid,)
            )
            self._set_cached(max(0, self._cached - block.size))

    def has(self, cid: str) -> bool:
        return (
            self._db.execute("SELECT 1 FROM blocks WHERE cid = ?", (cid,)).fetchone()
            is not None
        )

    def delete(self, cid: str) -> bool:
        row = self._db.execute(
            "SELECT pinned, size FROM blocks WHERE cid = ?", (cid,)
        ).fetchone()
        if row is None:
            return False
        self._db.execute("DELETE FROM blocks WHERE cid = ?", (cid,))
        if not row[0]:
            self._set_cached(max(0, self._cached - int(row[1])))
        return True

    def pin(self, cid: str) -> None:
        row = self._db.execute(
            "SELECT pinned, size FROM blocks WHERE cid = ?", (cid,)
        ).fetchone()
        if row is None:
            raise BlockNotFoundError(f"cannot pin missing block {cid[:16]}…")
        if not row[0]:
            self._db.execute("UPDATE blocks SET pinned = 1 WHERE cid = ?", (cid,))
            self._set_cached(max(0, self._cached - int(row[1])))

    def is_pinned(self, cid: str) -> bool:
        row = self._db.execute(
            "SELECT pinned FROM blocks WHERE cid = ?", (cid,)
        ).fetchone()
        return bool(row[0]) if row is not None else False

    def evict_one(self) -> Optional[str]:
        row = self._db.execute(
            "SELECT cid, size FROM blocks WHERE pinned = 0 ORDER BY seq ASC LIMIT 1"
        ).fetchone()
        if row is None:
            return None
        self._db.execute("DELETE FROM blocks WHERE cid = ?", (row[0],))
        self._set_cached(max(0, self._cached - int(row[1])))
        return row[0]

    def iter_cids(self) -> Iterator[str]:
        rows = self._db.execute("SELECT cid FROM blocks ORDER BY seq ASC").fetchall()
        return iter([row[0] for row in rows])

    def cached_bytes(self) -> int:
        return self._cached

    def total_bytes(self) -> int:
        row = self._db.execute("SELECT COALESCE(SUM(size), 0) FROM blocks").fetchone()
        return int(row[0])

    def __len__(self) -> int:
        return int(self._db.execute("SELECT COUNT(*) FROM blocks").fetchone()[0])

    def _commit(self, staged: List[Tuple[Block, bool]]) -> None:
        self._db.execute("BEGIN")
        try:
            for block, pin in staged:
                self._put_row(block, pin)
            self._set_meta("revision", self._meta("revision", 0) + 1)
        except BaseException:
            self._db.execute("ROLLBACK")
            raise
        self._db.execute("COMMIT")

    def close(self) -> None:
        self._db.close()


def create_backend(name: str, path: str = "") -> StorageBackend:
    """Instantiate a backend by config name (``storage_backend`` knob)."""
    if name == "memory":
        return MemoryBackend()
    if name == "sqlite":
        if not path:
            raise ValueError("sqlite backend needs a database file path")
        return SqliteBackend(path)
    raise ValueError(f"unknown storage backend {name!r} (expected 'memory' or 'sqlite')")
