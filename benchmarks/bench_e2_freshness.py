"""E2 — Freshness: publish-driven indexing vs periodic crawling.

Paper claim: "QueenBee advocates no-crawling, because crawling inevitably
reduces the freshness of the search results.  Instead, QueenBee incentivizes
content creators to publish (create or update) their contents via QueenBee's
smart contract."

This bench replays the same publish/update stream against (a) QueenBee, where
every publish immediately triggers a worker-bee indexing task, and (b) a
crawler-fed centralized index at several crawl intervals.  It reports the
publish -> searchable lag distribution and the fraction of versions still
stale at the end of the stream.
"""

from __future__ import annotations

from typing import Dict, List

from repro.baselines.centralized import CentralizedSearchEngine
from repro.baselines.crawler import Crawler
from repro.core.freshness import FreshnessTracker
from repro.net.latency import LogNormalLatency
from repro.net.network import SimulatedNetwork
from repro.sim.simulator import Simulator
from repro.workloads.updates import PublishWorkloadGenerator

from benchmarks.common import build_corpus, build_engine, print_table

DOC_COUNT = 240
PUBLISH_EVENTS = 80
MEAN_INTERARRIVAL = 400.0  # ms between publish events
# Real crawlers revisit most sites on the order of minutes to days; the small
# end of this sweep is deliberately generous to the crawler so the crossover
# with QueenBee's constant publish-driven lag is visible in the table.
CRAWL_INTERVALS = (2_000.0, 20_000.0, 100_000.0)


def _workload(corpus, seed=7):
    generator = PublishWorkloadGenerator(
        corpus, initial_fraction=0.5, mean_interarrival=MEAN_INTERARRIVAL,
        update_probability=0.4, seed=seed,
    )
    return generator, generator.generate(PUBLISH_EVENTS)


def _queenbee_row(corpus) -> Dict[str, object]:
    generator, workload = _workload(corpus)
    engine = build_engine(peer_count=24, worker_count=6, seed=401)
    engine.bootstrap_corpus(generator.initial_documents())
    for event in workload:
        # Let simulated time reach the event's publish instant, then publish.
        if event.time > engine.simulator.now:
            engine.simulator.clock.advance_to(event.time)
        engine.publish_document(event.document)
    summary = engine.freshness.summary()
    return {
        "system": "QueenBee (publish-driven)",
        "mean lag (ms)": summary.mean,
        "p50 lag (ms)": summary.p50,
        "p99 lag (ms)": summary.p99,
        "stale at end (%)": 100.0 * engine.freshness.stale_fraction(engine.simulator.now),
    }


def _crawler_row(corpus, crawl_interval: float) -> Dict[str, object]:
    generator, workload = _workload(corpus)
    simulator = Simulator(seed=402)
    network = SimulatedNetwork(simulator, latency=LogNormalLatency(median=25.0, sigma=0.45))
    engine = CentralizedSearchEngine(simulator, network)
    tracker = FreshnessTracker()
    crawler = Crawler(simulator, engine, workload, crawl_interval=crawl_interval, freshness=tracker)
    crawler.register_initial(generator.initial_documents())
    crawler.start()
    # Run until one interval past the end of the stream, then measure staleness
    # at the instant of the last publish (before the final catch-up crawl).
    last_publish = workload.horizon
    simulator.run(until=last_publish)
    stale_at_end = tracker.stale_fraction(last_publish)
    simulator.run(until=last_publish + 2 * crawl_interval)
    crawler.stop()
    summary = tracker.summary()
    return {
        "system": f"Crawler (interval {crawl_interval:.0f} ms)",
        "mean lag (ms)": summary.mean,
        "p50 lag (ms)": summary.p50,
        "p99 lag (ms)": summary.p99,
        "stale at end (%)": 100.0 * stale_at_end,
    }


def run_experiment() -> List[Dict[str, object]]:
    corpus = build_corpus(DOC_COUNT, seed=77)
    rows = [_queenbee_row(corpus)]
    for interval in CRAWL_INTERVALS:
        rows.append(_crawler_row(corpus, interval))
    print_table(
        "E2: freshness — publish -> searchable lag",
        rows,
        note=f"{PUBLISH_EVENTS} publish/update events, mean interarrival {MEAN_INTERARRIVAL:.0f} ms",
    )
    return rows


def test_e2_freshness(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    queenbee = rows[0]
    crawlers = rows[1:]
    # Crawler lag grows with the crawl interval (roughly interval/2)...
    crawl_means = [row["mean lag (ms)"] for row in crawlers]
    assert crawl_means == sorted(crawl_means)
    # ...while QueenBee's lag is a small constant set by the indexing pipeline,
    # independent of any crawl schedule.  It therefore beats every crawler whose
    # revisit interval exceeds a few seconds — i.e. any realistic crawler.
    realistic = [row for row in crawlers if "2000" not in row["system"]]
    assert realistic and all(queenbee["mean lag (ms)"] < row["mean lag (ms)"] for row in realistic)
    assert queenbee["stale at end (%)"] == 0.0


if __name__ == "__main__":
    run_experiment()
