"""E2 — Freshness: publish-driven indexing vs periodic crawling.

Paper claim: "QueenBee advocates no-crawling, because crawling inevitably
reduces the freshness of the search results.  Instead, QueenBee incentivizes
content creators to publish (create or update) their contents via QueenBee's
smart contract."

This bench replays the same publish/update stream against (a) QueenBee, where
every publish immediately triggers a worker-bee indexing task, and (b) a
crawler-fed centralized index at several crawl intervals.  It reports the
publish -> searchable lag distribution and the fraction of versions still
stale at the end of the stream.

A second section drives an update/delete-heavy stream with the posting cache
enabled and interleaves queries through two frontends — one cached, one
bypassing the cache — to measure the index-epoch invalidation protocol: the
cached path must return top-k pages identical to the uncached path after
every update and delete (stale-hit rate 0), while the ablation with
generation validation disabled shows the stale hits the protocol eliminates.

A third section measures what delta publication buys on the wire: the same
incremental text-only update stream is replayed with ``delta_publication``
on and off, and the bytes a warm remote frontend moves per update round to
stay current (posting-shard patches + banded rank refresh vs wholesale
refetch) are compared.  The two configurations must return bit-identical
top-k pages; the full run asserts at least a 2x byte reduction.

Results are written to ``BENCH_E2.json`` (``BENCH_E2.smoke.json`` under
``E2_SMOKE``) for the CI bench-compare gate.

Set the ``E2_SMOKE`` environment variable to run a tiny configuration (the
CI smoke job does this alongside E10).
"""

from __future__ import annotations

import os
import random
from collections import Counter
from typing import Dict, List, Optional, Tuple

from repro.baselines.centralized import CentralizedSearchEngine
from repro.core.engine import GossipRankClient
from repro.baselines.crawler import Crawler
from repro.core.freshness import FreshnessTracker
from repro.net.latency import LogNormalLatency
from repro.net.network import SimulatedNetwork
from repro.search.frontend import SearchFrontend
from repro.sim.simulator import Simulator
from repro.workloads.updates import PublishWorkloadGenerator

from benchmarks.common import build_corpus, build_engine, print_table, write_bench_json

SMOKE = bool(os.environ.get("E2_SMOKE"))
DOC_COUNT = 100 if SMOKE else 240
PUBLISH_EVENTS = 30 if SMOKE else 80
MEAN_INTERARRIVAL = 400.0  # ms between publish events
# Real crawlers revisit most sites on the order of minutes to days; the small
# end of this sweep is deliberately generous to the crawler so the crossover
# with QueenBee's constant publish-driven lag is visible in the table.
CRAWL_INTERVALS = (2_000.0, 20_000.0, 100_000.0)
# The invalidation section: an update/delete-heavy stream with the posting
# cache on, queried after every event.
INVALIDATION_EVENTS = 24 if SMOKE else 60
QUERY_TERMS_PER_EVENT = 2
# The delta-publication section: text-only update rounds against a warm
# gossip frontend, delta channels on vs off.
DELTA_ROUNDS = 4 if SMOKE else 10
DELTA_QUERY_TERMS = 4


def _workload(corpus, seed=7):
    generator = PublishWorkloadGenerator(
        corpus, initial_fraction=0.5, mean_interarrival=MEAN_INTERARRIVAL,
        update_probability=0.4, seed=seed,
    )
    return generator, generator.generate(PUBLISH_EVENTS)


def _queenbee_row(corpus) -> Dict[str, object]:
    generator, workload = _workload(corpus)
    engine = build_engine(peer_count=24, worker_count=6, seed=401)
    engine.bootstrap_corpus(generator.initial_documents())
    for event in workload:
        # Let simulated time reach the event's publish instant, then publish.
        if event.time > engine.simulator.now:
            engine.simulator.clock.advance_to(event.time)
        engine.publish_document(event.document)
    summary = engine.freshness.summary()
    return {
        "system": "QueenBee (publish-driven)",
        "mean lag (ms)": summary.mean,
        "p50 lag (ms)": summary.p50,
        "p99 lag (ms)": summary.p99,
        "stale at end (%)": 100.0 * engine.freshness.stale_fraction(engine.simulator.now),
    }


def _crawler_row(corpus, crawl_interval: float) -> Dict[str, object]:
    generator, workload = _workload(corpus)
    simulator = Simulator(seed=402)
    network = SimulatedNetwork(simulator, latency=LogNormalLatency(median=25.0, sigma=0.45))
    engine = CentralizedSearchEngine(simulator, network)
    tracker = FreshnessTracker()
    crawler = Crawler(simulator, engine, workload, crawl_interval=crawl_interval, freshness=tracker)
    crawler.register_initial(generator.initial_documents())
    crawler.start()
    # Run until one interval past the end of the stream, then measure staleness
    # at the instant of the last publish (before the final catch-up crawl).
    last_publish = workload.horizon
    simulator.run(until=last_publish)
    stale_at_end = tracker.stale_fraction(last_publish)
    simulator.run(until=last_publish + 2 * crawl_interval)
    crawler.stop()
    summary = tracker.summary()
    return {
        "system": f"Crawler (interval {crawl_interval:.0f} ms)",
        "mean lag (ms)": summary.mean,
        "p50 lag (ms)": summary.p50,
        "p99 lag (ms)": summary.p99,
        "stale at end (%)": 100.0 * stale_at_end,
    }


class _CacheBypassIndex:
    """Read-only view of a DistributedIndex that skips the posting cache.

    The reference path the cached frontend is compared against: every fetch
    resolves the authoritative shard from the DHT + storage.
    """

    def __init__(self, index) -> None:
        self._index = index

    def fetch_term(self, term: str, requester: Optional[str] = None):
        return self._index.fetch_term(term, requester=requester, use_cache=False)

    def fetch_statistics(self, requester: Optional[str] = None):
        return self._index.fetch_statistics(requester=requester)


def _invalidation_row(corpus, validate: bool) -> Dict[str, object]:
    generator = PublishWorkloadGenerator(
        corpus, initial_fraction=0.6, mean_interarrival=MEAN_INTERARRIVAL,
        update_probability=0.7, delete_probability=0.2, seed=13,
    )
    workload = generator.generate(INVALIDATION_EVENTS)
    engine = build_engine(
        peer_count=16, worker_count=4, seed=405,
        posting_cache_capacity=512, cache_validation=validate,
    )
    engine.bootstrap_corpus(generator.initial_documents())
    cached = engine.create_frontend(requester="peer-001:store")
    reference = SearchFrontend(
        simulator=engine.simulator,
        index=_CacheBypassIndex(engine.index),
        rank_provider=engine.page_ranks,
        rank_version_provider=engine.rank_version,
        metadata_resolver=engine.directory.resolve,
        analyzer=engine.analyzer,
        statistics=engine.statistics,
        top_k=engine.config.top_k,
        planning_strategy=engine.config.planning_strategy,
        execution_mode=engine.config.execution_mode,
        requester="peer-002:store",
    )

    def query_terms(event) -> List[str]:
        words = event.document.text.split()
        step = max(1, len(words) // QUERY_TERMS_PER_EVENT)
        return [words[i] for i in range(0, len(words), step)][:QUERY_TERMS_PER_EVENT]

    # Pre-warm the cache with the terms the stream is about to touch, so
    # updates/deletes supersede live cache entries rather than cold ones.
    for event in workload:
        for term in query_terms(event):
            cached.search(term)

    mismatches = 0
    queries = 0
    updates = deletes = 0
    for event in workload:
        if event.time > engine.simulator.now:
            engine.simulator.clock.advance_to(event.time)
        if event.is_delete:
            engine.delete_document(event.document.doc_id)
            deletes += 1
        else:
            engine.publish_document(event.document)
            updates += int(event.is_update)
        for term in query_terms(event):
            cached_page = cached.search(term)
            reference_page = reference.search(term)
            queries += 1
            cached_top = [(r.doc_id, round(r.score, 9)) for r in cached_page.results]
            reference_top = [(r.doc_id, round(r.score, 9)) for r in reference_page.results]
            if cached_top != reference_top:
                mismatches += 1

    stats = engine.posting_cache.stats
    return {
        "cache validation": "on (epoch protocol)" if validate else "off (ablation)",
        "events (upd/del)": f"{updates}/{deletes}",
        "queries": queries,
        "cache hit rate": stats.hit_rate,
        "invalidations": stats.invalidations,
        "patched in place": stats.patched_in_place,
        "stale-hit rate (%)": 100.0 * stats.stale_hit_rate,
        "top-k mismatches": mismatches,
    }


def run_invalidation_experiment(corpus=None) -> List[Dict[str, object]]:
    """The cache-invalidation section: cached vs uncached top-k under churn."""
    corpus = corpus or build_corpus(DOC_COUNT, seed=78)
    rows = [_invalidation_row(corpus, validate=True),
            _invalidation_row(corpus, validate=False)]
    print_table(
        "E2b: posting-cache freshness under an update/delete-heavy stream",
        rows,
        note=(
            f"{INVALIDATION_EVENTS} events, posting cache enabled, every query "
            f"answered by the cached and the cache-bypassing frontend "
            f"({'smoke' if SMOKE else 'full'} config)"
        ),
    )
    protocol = rows[0]
    assert protocol["stale-hit rate (%)"] == 0.0, "epoch protocol served a stale shard"
    assert protocol["top-k mismatches"] == 0, "cached top-k diverged from uncached"
    # A superseded cached shard is either invalidated (wholesale refetch) or
    # patched in place (delta channel); the stream must exercise the protocol
    # one way or the other.
    superseded = protocol["invalidations"] + protocol["patched in place"]
    assert superseded > 0, "stream never superseded a cached shard"
    ablation = rows[1]
    assert ablation["stale-hit rate (%)"] > 0.0, "ablation should expose stale hits"
    return rows


def _delta_terms(corpus, analyzer) -> List[str]:
    """High-document-frequency query words for the delta section.

    High-df terms have the largest shards, so a one-document patch is far
    smaller than the wholesale refetch it replaces — the regime delta
    publication exists for.  Returns raw words (the analyzer maps each to
    its indexed term at query time).
    """
    df: Counter = Counter()
    word_for_term: Dict[str, str] = {}
    for doc in corpus.documents:
        seen = set()
        for word in doc.full_text.split():
            word = word.lower().strip(".,;:!?")
            terms = analyzer.analyze(word)
            if len(terms) != 1:
                continue
            term = terms[0]
            word_for_term.setdefault(term, word)
            seen.add(term)
        df.update(seen)
    return [word_for_term[term] for term, _ in df.most_common(DELTA_QUERY_TERMS)]


def _delta_row(corpus, delta_on: bool) -> Dict[str, object]:
    """One update-round byte measurement: delta channels on or off.

    Drives ``DELTA_ROUNDS`` text-only updates (links untouched, so the rank
    graph is stable) against a warm gossip frontend and measures the payload
    bytes the frontend downloads to stay current: term manifests, posting
    shards or patches, and rank data (full vector vs moved bands).  DHT
    *routing* chatter is excluded — the lookup sequence is identical in both
    configurations, so it would only dilute the quantity the delta channel
    governs.  Returns the row plus the per-round top-k pages under
    ``"_topk"`` so the caller can assert bit-identity between the two
    configurations.
    """
    engine = build_engine(
        peer_count=16, worker_count=4, seed=409,
        metadata_plane="gossip", posting_cache_capacity=512,
        delta_publication=delta_on,
    )
    engine.bootstrap_corpus(corpus.documents)
    engine.compute_page_ranks()
    engine.converge_metadata()
    frontend = engine.create_gossip_frontend(requester="peer-001:store")
    # A second warm rank reader whose byte counter the measured phase reads
    # (the frontend's own client refreshes during the unmeasured queries).
    rank_client = GossipRankClient(
        engine.gossip.view("peer-001:store"), engine.storage,
        "peer-001:store", dht=engine.dht,
    )
    rank_client.version()
    terms = _delta_terms(corpus, engine.analyzer)
    for term in terms:  # warm the frontend's cache and rank view
        frontend.search(term)

    rng = random.Random(431)
    published = list(corpus.documents)
    reader_bytes = 0
    topk: List[Tuple[int, str, Tuple]] = []
    for step in range(DELTA_ROUNDS):
        victim_index = rng.randrange(len(published))
        victim = published[victim_index]
        # A text-only update: repeat one of the queried words so that word's
        # posting (tf) genuinely changes and its cached shard is superseded.
        marker = terms[step % len(terms)]
        updated = victim.updated(
            text=f"{victim.text} {marker}", published_at=engine.simulator.now
        )
        published[victim_index] = updated
        engine.publish_document(updated)
        engine.compute_page_ranks()
        engine.converge_metadata()
        # The measured phase: the payload bytes a warm reader downloads to
        # get current again — rank refresh plus manifest + posting refresh
        # for the queried terms (patch vs wholesale refetch).  The queries
        # that check top-k identity run *outside* the measurement: their
        # result/snippet traffic is identical in both configurations and
        # would drown the refresh bytes this section is about.
        idx_stats = frontend.index.stats
        before = (
            idx_stats.bytes_fetched
            + idx_stats.manifest_bytes_fetched
            + rank_client.bytes_fetched
        )
        rank_client.version()
        for word in terms:
            for term in engine.analyzer.analyze(word):
                frontend.index.fetch_term(term, requester="peer-001:store")
        reader_bytes += (
            idx_stats.bytes_fetched
            + idx_stats.manifest_bytes_fetched
            + rank_client.bytes_fetched
            - before
        )
        for word in terms:
            page = frontend.search(word)
            topk.append(
                (step, word, tuple((r.doc_id, round(r.score, 9)) for r in page.results))
            )

    metrics = engine.metrics
    return {
        "delta publication": "on" if delta_on else "off (wholesale)",
        "update rounds": DELTA_ROUNDS,
        "reader KiB/round": reader_bytes / DELTA_ROUNDS / 1024.0,
        "patch KiB stored": metrics.counter("publish.delta_bytes") / 1024.0,
        "full KiB stored": metrics.counter("publish.full_bytes") / 1024.0,
        "patched in place": int(metrics.counter("cache.patched_in_place")),
        "delta fallbacks": int(metrics.counter("cache.delta_fallbacks")),
        "_topk": topk,
    }


def run_delta_experiment(corpus=None) -> List[Dict[str, object]]:
    """The delta-publication section: bytes on the wire per update round."""
    corpus = corpus or build_corpus(DOC_COUNT, seed=77)
    delta_row = _delta_row(corpus, delta_on=True)
    wholesale_row = _delta_row(corpus, delta_on=False)
    delta_topk = delta_row.pop("_topk")
    wholesale_topk = wholesale_row.pop("_topk")
    mismatches = sum(1 for a, b in zip(delta_topk, wholesale_topk) if a != b)
    for row in (delta_row, wholesale_row):
        row["top-k mismatches"] = mismatches
    rows = [delta_row, wholesale_row]
    print_table(
        "E2c: delta publication — bytes on the wire per update round",
        rows,
        note=(
            f"{DELTA_ROUNDS} text-only update rounds against a warm gossip "
            f"frontend ({'smoke' if SMOKE else 'full'} config)"
        ),
    )
    # Bit-identity: patched state must be indistinguishable from wholesale.
    assert len(delta_topk) == len(wholesale_topk) > 0
    assert mismatches == 0, "delta publication changed a top-k page"
    assert delta_row["delta fallbacks"] == 0, "clean stream should never fall back"
    assert delta_row["patched in place"] > 0, "stream never exercised a patch"
    reduction = (
        wholesale_row["reader KiB/round"] / delta_row["reader KiB/round"]
        if delta_row["reader KiB/round"]
        else float("inf")
    )
    # The headline claim, gated hard on the full configuration: update rounds
    # ship at most half the wholesale bytes.  The smoke config is too small
    # for a stable ratio, so it only requires an improvement.
    if SMOKE:
        assert reduction > 1.0, f"delta rounds moved more bytes ({reduction:.2f}x)"
    else:
        assert reduction >= 2.0, f"byte reduction {reduction:.2f}x < 2x"
    return rows


def run_experiment() -> List[Dict[str, object]]:
    corpus = build_corpus(DOC_COUNT, seed=77)
    rows = [_queenbee_row(corpus)]
    for interval in CRAWL_INTERVALS:
        rows.append(_crawler_row(corpus, interval))
    print_table(
        "E2: freshness — publish -> searchable lag",
        rows,
        note=f"{PUBLISH_EVENTS} publish/update events, mean interarrival {MEAN_INTERARRIVAL:.0f} ms",
    )
    invalidation_rows = run_invalidation_experiment()
    delta_rows = run_delta_experiment(corpus)
    delta_on, delta_off = delta_rows[0], delta_rows[1]
    payload = {
        "experiment": "E2",
        "config": {
            "smoke": SMOKE,
            "documents": DOC_COUNT,
            "publish_events": PUBLISH_EVENTS,
            "invalidation_events": INVALIDATION_EVENTS,
            "delta_rounds": DELTA_ROUNDS,
            "delta_query_terms": DELTA_QUERY_TERMS,
        },
        "rows": rows,
        "invalidation_rows": invalidation_rows,
        "delta_rows": delta_rows,
        "derived": {
            "reader_bytes_reduction": (
                delta_off["reader KiB/round"] / delta_on["reader KiB/round"]
                if delta_on["reader KiB/round"]
                else float("inf")
            ),
            "delta_topk_mismatches": delta_on["top-k mismatches"],
            "delta_fallbacks": delta_on["delta fallbacks"],
        },
    }
    # Smoke runs must not overwrite the committed full-run baseline the
    # bench-compare job diffs against.
    write_bench_json("BENCH_E2.smoke.json" if SMOKE else "BENCH_E2.json", payload)
    return rows


def test_e2_freshness(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    queenbee = rows[0]
    crawlers = rows[1:]
    # Crawler lag grows with the crawl interval (roughly interval/2)...
    crawl_means = [row["mean lag (ms)"] for row in crawlers]
    assert crawl_means == sorted(crawl_means)
    # ...while QueenBee's lag is a small constant set by the indexing pipeline,
    # independent of any crawl schedule.  It therefore beats every crawler whose
    # revisit interval exceeds a few seconds — i.e. any realistic crawler.
    realistic = [row for row in crawlers if "2000" not in row["system"]]
    assert realistic and all(queenbee["mean lag (ms)"] < row["mean lag (ms)"] for row in realistic)
    assert queenbee["stale at end (%)"] == 0.0


if __name__ == "__main__":
    run_experiment()
