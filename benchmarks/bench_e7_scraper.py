"""E7 — Scraper-site attack vs the content-hash dedup defense.

Paper research challenge (II): "as popular webpages will gain QueenBee's
honey, scrapper site attack may exist that tries to mirror popular websites
for QueenBee's honey."

This bench has a scraper mirror the most popular pages under four
configurations — verbatim vs perturbed copies, with the registry's dedup
defense on vs off — and reports how many mirrors were accepted and how much
honey the scraper captured relative to the victims it copied.
"""

from __future__ import annotations

from typing import Dict, List

from repro.attacks.scraper import ScraperAttack

from benchmarks.common import build_corpus, build_engine, print_table

DOC_COUNT = 160
MIRROR_COUNT = 10


def _scenario(corpus, dedup: bool, perturb: bool, seed: int) -> Dict[str, object]:
    engine = build_engine(peer_count=20, worker_count=5, seed=seed, dedup_enabled=dedup)
    engine.bootstrap_corpus(corpus.documents)
    engine.compute_page_ranks()
    attack = ScraperAttack(engine, mirror_count=MIRROR_COUNT, perturb=perturb)
    outcome = attack.run(recompute_ranks=True)
    victim_honey = sum(outcome.victim_honey.values()) or 1
    return {
        "dedup defense": "on" if dedup else "off",
        "copies": "perturbed" if perturb else "verbatim",
        "mirrors accepted": outcome.pages_accepted,
        "scraper honey": outcome.total_honey_earned,
        "scraper vs victims (%)": 100.0 * outcome.total_honey_earned / victim_honey,
    }


def run_experiment() -> List[Dict[str, object]]:
    corpus = build_corpus(DOC_COUNT, seed=1200)
    rows = [
        _scenario(corpus, dedup=True, perturb=False, seed=1201),
        _scenario(corpus, dedup=False, perturb=False, seed=1202),
        _scenario(corpus, dedup=True, perturb=True, seed=1203),
    ]
    print_table(
        "E7: scraper-site attack — honey captured by mirroring popular pages",
        rows,
        note=f"Scraper mirrors the top {MIRROR_COUNT} pages by page rank",
    )
    return rows


def test_e7_scraper(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    defended = next(r for r in rows if r["dedup defense"] == "on" and r["copies"] == "verbatim")
    undefended = next(r for r in rows if r["dedup defense"] == "off")
    evading = next(r for r in rows if r["copies"] == "perturbed")
    # Content addressing + dedup blocks verbatim mirrors completely.
    assert defended["mirrors accepted"] == 0
    assert defended["scraper honey"] == 0
    # Without the defense the mirrors land and earn honey.
    assert undefended["mirrors accepted"] == MIRROR_COUNT
    assert undefended["scraper honey"] > 0
    # Perturbation evades dedup but captures far less than the victims hold.
    assert evading["mirrors accepted"] == MIRROR_COUNT
    assert evading["scraper vs victims (%)"] < 100.0


if __name__ == "__main__":
    run_experiment()
