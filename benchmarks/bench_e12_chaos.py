"""E12 — Chaos: request resilience under a composed fault matrix.

The paper's resilience story (E3) models failure as peers going fully
offline.  Production failure is messier: lossy links, gray-failing peers
that answer garbage, stragglers that answer slowly, partitions, and
publishers that die mid-publish.  This bench drives the deterministic
fault plane (``repro.net.faults``) over a matrix of those conditions and
measures what the resilience machinery — RPC timeouts, bounded retries,
hedged fetches, and the local failure detector — buys in answered
fraction, recall, and tail latency, against the same faults with every
mechanism disabled.

Four sections, all written to ``BENCH_E12.json``:

* **fault matrix** — loss / stragglers / gray failure / partition /
  churn / all-composed, each with resilience off vs on;
* **crash sweep** — a publisher killed after k sends mid-republish;
  readers must see the old or the new generation, never a torn mix;
* **determinism** — the composed scenario re-run at the same seed must
  reproduce the identical fault schedule (SHA-256 digest) and numbers;
* **identity** — with the fault plane merely instantiated but empty, the
  engine must behave bit-identically to one that never touched it.

``E12_SMOKE=1`` shrinks the workload for CI.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence

from repro.net.faults import (
    CrashWindow,
    FaultRule,
    FlakyPeer,
    LinkLoss,
    PartitionWindow,
    Straggler,
)

from benchmarks.common import (
    build_corpus,
    build_engine,
    build_queries,
    print_table,
    write_bench_json,
)

SMOKE = os.environ.get("E12_SMOKE", "") not in ("", "0")

DOC_COUNT = 60 if SMOKE else 180
QUERY_COUNT = 12 if SMOKE else 30
PEER_COUNT = 12 if SMOKE else 24
WORKER_COUNT = 4 if SMOKE else 8
CRASH_POINTS = (0, 5, 40) if SMOKE else (0, 2, 5, 10, 25, 60, 120)

# The resilience configuration under test (the "on" half of every row).
RESILIENCE_ON = dict(
    rpc_timeout=150.0,
    rpc_retries=3,
    retry_backoff=40.0,
    retry_jitter=0.2,
    hedged_fetches=True,
    failure_detector=True,
)
# The seed behaviour: no timeout accounting, no retries, no hedging, and
# liveness from the global oracle instead of the local detector.
RESILIENCE_OFF = dict(
    rpc_timeout=0.0,
    rpc_retries=1,
    retry_backoff=0.0,
    retry_jitter=0.0,
    hedged_fetches=False,
    failure_detector=False,
)


def _scenarios() -> List[Dict[str, object]]:
    """The fault matrix.  Rules are built per run (CrashWindow-style rules
    carry state), so each entry is a factory."""

    def loss() -> List[FaultRule]:
        # Severe enough that a single-attempt fetch plan (try each provider
        # once) loses blocks outright; bounded retries recover them.
        return [LinkLoss(probability=0.4)]

    def stragglers() -> List[FaultRule]:
        return [
            Straggler(peer="peer-001", factor=12.0),
            Straggler(peer="peer-004", factor=12.0),
            Straggler(peer="peer-007", factor=8.0),
        ]

    def flaky() -> List[FaultRule]:
        return [
            FlakyPeer(peer="peer-002", probability=0.85),
            FlakyPeer(peer="peer-005", probability=0.85),
            FlakyPeer(peer="peer-008", probability=0.6),
        ]

    def partition() -> List[FaultRule]:
        return [
            PartitionWindow(groups=[["peer-003", "peer-006", "peer-009"]])
        ]

    return [
        {"scenario": "loss", "rules": loss, "churn": 0.0},
        {"scenario": "stragglers", "rules": stragglers, "churn": 0.0},
        {"scenario": "gray failure", "rules": flaky, "churn": 0.0},
        {"scenario": "partition", "rules": partition, "churn": 0.0},
        {"scenario": "churn + loss", "rules": loss, "churn": 0.25},
        {
            "scenario": "composed",
            "rules": lambda: loss() + stragglers() + flaky() + partition(),
            "churn": 0.25,
        },
    ]


def _chaos_engine(resilience: Dict[str, object], seed: int):
    # No posting/result caches: the baseline pass would warm them and
    # post-fault queries would be served locally, masking the faults.
    return build_engine(
        peer_count=PEER_COUNT, worker_count=WORKER_COUNT, seed=seed,
        storage_replication=3, dht_replicate=4,
        posting_cache_capacity=0, index_shard_size=32,
        **resilience,
    )


def _run_scenario(
    corpus,
    queries: Sequence[str],
    rules,
    churn: float,
    resilience: Dict[str, object],
    seed: int,
) -> Dict[str, object]:
    engine = _chaos_engine(resilience, seed)
    engine.bootstrap_corpus(corpus.documents)
    engine.compute_page_ranks()
    frontend = engine.create_frontend(requester="peer-000:store")
    healthy = {q: engine.search(q, frontend=frontend).doc_ids for q in queries}

    engine.network.faults.extend(rules())
    if churn > 0:
        engine.fail_peers(churn)

    answered = 0
    recalls: List[float] = []
    latencies: List[float] = []
    # A cold requester: the healthy pass cached every block it fetched on
    # peer-000, which would mask unreachable shards entirely.
    cold = engine.create_frontend(requester="peer-010:store")
    for query in queries:
        start = engine.simulator.now
        page = engine.search(query, frontend=cold)
        latencies.append(engine.simulator.now - start)
        expected = healthy[query]
        if page.result_count > 0 or not expected:
            answered += 1
        if expected:
            recalls.append(page.recall_against(expected))
    latencies.sort()
    p99 = latencies[min(len(latencies) - 1, int(0.99 * len(latencies)))]
    return {
        "answered (%)": 100.0 * answered / len(queries),
        "recall vs healthy (%)": 100.0 * sum(recalls) / max(1, len(recalls)),
        "p50 latency": latencies[len(latencies) // 2],
        "p99 latency": p99,
        "faults injected": engine.network.faults.stats.injected,
        "retries": engine.network.stats.retries,
        "hedges": engine.network.stats.hedges,
        "suspected peers": (
            len(engine.detector.suspected()) if engine.detector is not None else 0
        ),
        "schedule digest": engine.network.faults.schedule_digest(),
    }


def _matrix_rows(corpus, queries) -> List[Dict[str, object]]:
    rows = []
    for spec in _scenarios():
        for label, resilience in (("off", RESILIENCE_OFF), ("on", RESILIENCE_ON)):
            measured = _run_scenario(
                corpus, queries, spec["rules"], spec["churn"], resilience, seed=1200
            )
            digest = measured.pop("schedule digest")
            rows.append({
                "scenario": spec["scenario"],
                "resilience": label,
                **measured,
                "schedule digest": digest[:12],
            })
    return rows


def _determinism_check(corpus, queries) -> Dict[str, object]:
    """Same seed, same composed scenario, twice: identical schedule + numbers."""
    composed = next(s for s in _scenarios() if s["scenario"] == "composed")
    runs = [
        _run_scenario(
            corpus, queries, composed["rules"], composed["churn"], RESILIENCE_ON,
            seed=1200,
        )
        for _ in range(2)
    ]
    assert runs[0] == runs[1], "same-seed chaos run failed to reproduce"
    return {
        "reproduced": runs[0] == runs[1],
        "schedule digest": runs[0]["schedule digest"],
        "faults injected": runs[0]["faults injected"],
    }


def _identity_check(corpus, queries) -> Dict[str, object]:
    """An instantiated-but-empty fault plane must be bit-inert."""
    pages = []
    for touch_plane in (False, True):
        engine = _chaos_engine(RESILIENCE_OFF, seed=1300)
        if touch_plane:
            assert not engine.network.faults.active
        engine.bootstrap_corpus(corpus.documents)
        engine.compute_page_ranks()
        frontend = engine.create_frontend(requester="peer-000:store")
        served = [
            [(r.doc_id, r.score) for r in engine.search(q, frontend=frontend).results]
            for q in queries
        ]
        pages.append((served, engine.simulator.now, engine.network.stats.bytes_sent))
    assert pages[0] == pages[1], "an empty fault plane perturbed the engine"
    return {"bit_identical": pages[0] == pages[1]}


def _crash_rows(corpus) -> List[Dict[str, object]]:
    """Kill a publisher after k sends mid-republish; classify what readers see."""
    from repro.index.document import Document

    term = "queenbee"
    rows = []
    torn_total = 0
    for after_sends in CRASH_POINTS:
        engine = build_engine(
            peer_count=12, worker_count=4, seed=1400, index_shard_size=16,
            posting_cache_capacity=0,
        )
        engine.bootstrap_corpus(corpus.documents[: min(30, len(corpus.documents))])
        engine.publish_document(Document(
            doc_id=90_001, url="https://chaos.test/a", title=term,
            text=(term + " ") * 12, owner="owner-a",
        ))
        old_generation = engine.index.generation(term)
        old_ids = [p.doc_id for p in engine.index.fetch_term(term, use_cache=False)]

        window = engine.network.faults.add(CrashWindow(after_sends=after_sends))
        died = False
        try:
            engine.publish_document(Document(
                doc_id=90_002, url="https://chaos.test/b", title=term,
                text=(term + " ") * 15, owner="owner-b",
            ))
        except Exception:
            died = True
        window.heal()
        engine.dht.refresh_routing()  # post-outage bucket refresh

        outcome = "torn"
        try:
            manifest = engine.index.fetch_term_manifest(term, use_cache=False)
            postings = engine.index.fetch_term(term, use_cache=False)
            doc_ids = [p.doc_id for p in postings]
            if manifest.generation == old_generation and doc_ids == old_ids:
                outcome = "old generation"
            elif (
                manifest.generation == old_generation + 1
                and 90_002 in doc_ids
                and manifest.posting_count == len(postings)
            ):
                outcome = "new generation"
        except Exception:
            outcome = "unavailable"
        torn = outcome == "torn"
        torn_total += int(torn)
        rows.append({
            "crash after sends": after_sends,
            "publish raised": died,
            "reader sees": outcome,
            "torn": torn,
        })
    assert torn_total == 0, f"{torn_total} torn manifest read(s) under crash sweep"
    return rows


def run_experiment() -> Dict[str, object]:
    corpus = build_corpus(DOC_COUNT, seed=120)
    queries = build_queries(corpus, QUERY_COUNT, seed=120)

    rows = _matrix_rows(corpus, queries)
    print_table(
        "E12: chaos matrix — resilience off vs on under injected faults",
        rows,
        note=(
            f"{DOC_COUNT} documents, {QUERY_COUNT} queries, {PEER_COUNT} peers; "
            "on = timeouts + retries + hedging + failure detector"
        ),
    )
    crash_rows = _crash_rows(corpus)
    print_table(
        "E12b: crash-during-publish sweep — readers must see old-or-new, never torn",
        crash_rows,
    )
    determinism = _determinism_check(corpus, queries)
    identity = _identity_check(corpus, queries)
    print_table(
        "E12c: reproducibility",
        [
            {
                "check": "same-seed fault schedule",
                "ok": determinism["reproduced"],
                "detail": f"digest {determinism['schedule digest'][:16]}…",
            },
            {
                "check": "empty plane bit-identity",
                "ok": identity["bit_identical"],
                "detail": "pages, clock, and bytes equal",
            },
        ],
    )

    payload = {
        "experiment": "E12",
        "config": {
            "documents": DOC_COUNT,
            "queries": QUERY_COUNT,
            "peers": PEER_COUNT,
            "smoke": SMOKE,
            "resilience_on": RESILIENCE_ON,
            "crash_points": list(CRASH_POINTS),
        },
        "rows": rows,
        "crash_rows": crash_rows,
        "determinism": determinism,
        "identity": identity,
    }
    write_bench_json("BENCH_E12.smoke.json" if SMOKE else "BENCH_E12.json", payload)

    # Acceptance gates.  Under the composed matrix the machinery must buy
    # strictly more answered queries and recall; no scenario may get worse.
    by_key = {(r["scenario"], r["resilience"]): r for r in rows}
    for spec in _scenarios():
        off = by_key[(spec["scenario"], "off")]
        on = by_key[(spec["scenario"], "on")]
        assert on["answered (%)"] >= off["answered (%)"], spec["scenario"]
        assert on["recall vs healthy (%)"] >= off["recall vs healthy (%)"], spec["scenario"]
    composed_on = by_key[("composed", "on")]
    composed_off = by_key[("composed", "off")]
    assert composed_on["answered (%)"] > composed_off["answered (%)"]
    assert composed_on["recall vs healthy (%)"] > composed_off["recall vs healthy (%)"]
    assert composed_on["retries"] > 0 and composed_on["hedges"] > 0
    return payload


def test_e12_chaos(benchmark):
    payload = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    assert payload["determinism"]["reproduced"]
    assert payload["identity"]["bit_identical"]
    assert all(not r["torn"] for r in payload["crash_rows"])


if __name__ == "__main__":
    run_experiment()
