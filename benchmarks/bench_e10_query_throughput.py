"""E10 — Query execution engine: naive vs MaxScore-pruned vs pruned+cached.

The paper's frontend composes results "by intersecting the matched inverted
lists"; this benchmark quantifies what the execution engine buys on top of
that naive path on a Zipfian repeated-query stream:

* ``naive``         — term-at-a-time intersection, no cache, one query at a
                      time (the seed repo's original path);
* ``maxscore``      — document-at-a-time evaluation with per-term max-impact
                      pruning, no cache;
* ``maxscore+cache``— pruning plus the LRU posting cache and the batched
                      query API that deduplicates DHT lookups.

All three must return *identical* top-k pages; the pruned/cached rows must do
measurably less work (documents scored, network fetches).  Set the
``E10_SMOKE`` environment variable to run a tiny configuration (the CI smoke
job does this to catch perf-path regressions quickly).
"""

from __future__ import annotations

import os
from typing import Dict, List, Tuple

from repro.workloads.queries import QueryWorkloadGenerator

from benchmarks.common import build_corpus, build_engine, print_table

SMOKE = bool(os.environ.get("E10_SMOKE"))
DOC_COUNT = 60 if SMOKE else 350
QUERY_COUNT = 40 if SMOKE else 240
DISTINCT_QUERIES = 15 if SMOKE else 80
PEER_COUNT = 12 if SMOKE else 32
CACHE_CAPACITY = 512
# The cached system receives the stream in batches, as a frontend would:
# dedup amortizes lookups within a batch, the LRU carries terms across them.
BATCH_SIZE = 10 if SMOKE else 30


def _run_system(
    corpus, queries: List[str], mode: str, cache_capacity: int, batched: bool
) -> Tuple[Dict[str, object], List[List[Tuple[int, float]]]]:
    engine = build_engine(
        peer_count=PEER_COUNT,
        worker_count=max(4, PEER_COUNT // 8),
        execution_mode=mode,
        posting_cache_capacity=cache_capacity,
        seed=77,
    )
    engine.bootstrap_corpus(corpus.documents)
    engine.compute_page_ranks()
    frontend = engine.create_frontend(requester="peer-001:store")
    engine.index.stats.reset()

    start = engine.simulator.now
    if batched:
        pages = []
        for offset in range(0, len(queries), BATCH_SIZE):
            pages.extend(
                engine.search_batch(queries[offset : offset + BATCH_SIZE], frontend=frontend)
            )
    else:
        pages = [engine.search(query, frontend=frontend) for query in queries]
    elapsed = engine.simulator.now - start

    top_k = [[(result.doc_id, result.score) for result in page.results] for page in pages]
    cache_stats = engine.posting_cache.stats if engine.posting_cache else None
    label = mode if not cache_capacity else f"{mode}+cache"
    row = {
        "execution": label + ("+batch" if batched else ""),
        "docs scored": engine.metrics.counter("query.docs_scored"),
        "docs pruned": engine.metrics.counter("query.docs_pruned"),
        "postings scanned": engine.metrics.counter("query.postings_scanned"),
        "network fetches": engine.index.stats.terms_fetched,
        "cache hit rate": cache_stats.hit_rate if cache_stats else 0.0,
        "throughput (q/s)": len(queries) / (elapsed / 1000.0) if elapsed else float("inf"),
    }
    return row, top_k


def run_experiment() -> List[Dict[str, object]]:
    corpus = build_corpus(DOC_COUNT)
    generator = QueryWorkloadGenerator(corpus.documents, seed=2019)
    queries = list(generator.generate_stream(QUERY_COUNT, DISTINCT_QUERIES))

    naive_row, naive_top = _run_system(corpus, queries, "taat", 0, batched=False)
    pruned_row, pruned_top = _run_system(corpus, queries, "maxscore", 0, batched=False)
    cached_row, cached_top = _run_system(
        corpus, queries, "maxscore", CACHE_CAPACITY, batched=True
    )

    assert pruned_top == naive_top, "MaxScore changed the top-k results"
    assert cached_top == naive_top, "caching/batching changed the top-k results"

    rows = [naive_row, pruned_row, cached_row]
    print_table(
        "E10: query execution engine (identical top-k, decreasing work)",
        rows,
        note=(
            f"{DOC_COUNT} documents, {QUERY_COUNT} queries drawn Zipf-weighted "
            f"from {DISTINCT_QUERIES} distinct ({'smoke' if SMOKE else 'full'} config)"
        ),
    )
    return rows


def test_e10_query_throughput(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    by_execution = {row["execution"]: row for row in rows}
    naive = by_execution["taat"]
    pruned = by_execution["maxscore"]
    cached = by_execution["maxscore+cache+batch"]
    # Pruning must skip a substantial share of scoring work.
    assert pruned["docs scored"] < naive["docs scored"]
    assert pruned["docs pruned"] > 0
    # The cache plus batch dedup must eliminate most repeat fetches.
    assert cached["cache hit rate"] > 0.0
    assert cached["network fetches"] < naive["network fetches"]


if __name__ == "__main__":
    run_experiment()
