"""E10 — Query execution engine: naive vs pruned vs sharded vs cached.

The paper's frontend composes results "by intersecting the matched inverted
lists"; this benchmark quantifies what the execution engine buys on top of
that naive path on a Zipfian repeated-query stream:

* ``taat``            — term-at-a-time intersection, no caches, one query at
                        a time (the seed repo's original path);
* ``maxscore``        — document-at-a-time evaluation with per-term
                        max-impact pruning, unsharded, no caches;
* ``maxscore+shards`` — doc-id-range shards behind per-term manifests with
                        quantized per-shard bounds: whole shards outside the
                        conjunctive window or below the top-k threshold are
                        skipped without being fetched or scanned;
* ``…+cache+batch``   — the full fast path: sharded execution plus the
                        per-shard posting cache, the frontend result cache,
                        and the batched query API with *overlapped*
                        manifest/shard prefetch;
* ``…+batch-overlap`` — the overlap ablation: identical configuration but
                        sequential prefetch, isolating what concurrency buys
                        in batch latency;
* ``…+batch (gossip)``— the metadata-plane ablation: the same full fast
                        path served by a *remote* frontend on the gossiped
                        metadata plane (own index instance, epoch feed and
                        load hints from its peer's gossip store, rank
                        vector fetched from the DWeb).  Gossip staleness
                        and the frontend's own cold caches cost extra
                        fetches; pages must stay bit-identical — the smoke
                        job's gossip-vs-shared assertion.

All rows must return *identical* top-k pages.  A second table replays a
disjunctive head-term workload (pairwise ORs of the heaviest terms), where
per-shard bounds prune documents that whole-list bounds cannot; its
``+rri`` / ``+ceilings`` rows ablate the two rank-pruning sources — the
frontend-built RankRangeIndex versus the quantized rank ceilings published
into term manifests at rank time (the path that needs no materialised rank
vector; it must prune at least as many shards).  A third table measures the
``vectorized_scoring`` knob on a larger corpus: numpy array decode/score
hot loops against the scalar reference, identical pages, wall-clock
docs-scored/sec (the simulated clock cannot price python CPU).  Results are
also written to ``BENCH_E10.json`` so the perf trajectory is tracked
PR-over-PR.  Set
the ``E10_SMOKE`` environment variable to run a tiny configuration (the CI
smoke job does this to catch perf-path regressions, including
sharded-vs-unsharded and gossip-vs-shared divergence, quickly).
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional, Tuple

from repro.index.analysis import Analyzer
from repro.index.inverted_index import LocalInvertedIndex
from repro.workloads.queries import QueryWorkloadGenerator

from benchmarks.common import build_corpus, build_engine, print_table, write_bench_json

SMOKE = bool(os.environ.get("E10_SMOKE"))
DOC_COUNT = 60 if SMOKE else 350
QUERY_COUNT = 40 if SMOKE else 240
DISTINCT_QUERIES = 15 if SMOKE else 80
PEER_COUNT = 12 if SMOKE else 32
CACHE_CAPACITY = 512
RESULT_CACHE_CAPACITY = 256
SHARD_SIZE = 8 if SMOKE else 24
HEAD_TERMS = 4 if SMOKE else 6
# The cached system receives the stream in batches, as a frontend would:
# dedup amortizes lookups within a batch, the LRU carries terms across them.
BATCH_SIZE = 10 if SMOKE else 30
# The vectorized-scoring section runs on its own, larger corpus: numpy's
# fixed per-query costs only pay off once candidate sets are big, which the
# main corpus (sized for eight full system builds) is too small to show.
VEC_DOC_COUNT = 60 if SMOKE else 2_000
VEC_PEER_COUNT = 12 if SMOKE else 16
VEC_SHARD_SIZE = 8 if SMOKE else 128
VEC_QUERY_COUNT = 20 if SMOKE else 60
VEC_DISTINCT_QUERIES = 10 if SMOKE else 40


def _run_system(
    corpus,
    queries: List[str],
    mode: str,
    shard_size: int = 0,
    cache_capacity: int = 0,
    result_cache_capacity: int = 0,
    batched: bool = False,
    overlapped: bool = True,
    metadata_plane: str = "shared",
    frontend_overrides: Optional[Dict[str, object]] = None,
    label: str = "",
) -> Tuple[Dict[str, object], List[List[Tuple[int, float]]]]:
    engine = build_engine(
        peer_count=PEER_COUNT,
        worker_count=max(4, PEER_COUNT // 8),
        execution_mode=mode,
        index_shard_size=shard_size,
        posting_cache_capacity=cache_capacity,
        result_cache_capacity=result_cache_capacity,
        overlapped_prefetch=overlapped,
        metadata_plane=metadata_plane,
        seed=77,
    )
    engine.bootstrap_corpus(corpus.documents)
    engine.compute_page_ranks()
    # On the gossip plane, wait for anti-entropy to deliver the publish/rank
    # metadata before the measured stream (a deployment's steady state);
    # scheduled rounds keep running during the stream.
    engine.converge_metadata()
    # Frontend policy goes through FrontendOptions: keyword overrides
    # replace fields on the config-derived defaults at construction time.
    frontend = engine.create_frontend(
        requester="peer-001:store", **(frontend_overrides or {})
    )
    frontend.index.stats.reset()

    start = engine.simulator.now
    batch_latencies: List[float] = []
    if batched:
        pages = []
        for offset in range(0, len(queries), BATCH_SIZE):
            batch = engine.search_batch(
                queries[offset : offset + BATCH_SIZE], frontend=frontend
            )
            batch_latencies.append(batch[0].diagnostics["batch_latency"])
            pages.extend(batch)
    else:
        pages = [engine.search(query, frontend=frontend) for query in queries]
    elapsed = engine.simulator.now - start

    top_k = [[(result.doc_id, result.score) for result in page.results] for page in pages]
    # The frontend's own index/cache objects: the engine's shared instances
    # on the shared plane, the remote frontend's private ones on gossip.
    cache_stats = frontend.index.cache.stats if frontend.index.cache else None
    result_cache = frontend.result_cache
    row = {
        "execution": label,
        "docs scored": engine.metrics.counter("query.docs_scored"),
        "docs pruned": engine.metrics.counter("query.docs_pruned"),
        "postings scanned": engine.metrics.counter("query.postings_scanned"),
        "shards skipped": engine.metrics.counter("query.shards_skipped"),
        "network fetches": frontend.index.stats.terms_fetched,
        "KiB fetched": frontend.index.stats.bytes_fetched / 1024.0,
        "posting cache hit": cache_stats.hit_rate if cache_stats else 0.0,
        "result cache hit": result_cache.stats.hit_rate if result_cache else 0.0,
        "mean batch latency": (
            sum(batch_latencies) / len(batch_latencies) if batch_latencies else 0.0
        ),
        "throughput (q/s)": len(queries) / (elapsed / 1000.0) if elapsed else float("inf"),
    }
    return row, top_k


def _head_term_queries(corpus) -> List[str]:
    """Disjunctive pairs of the heaviest raw tokens (the head-term workload)."""
    local = LocalInvertedIndex(Analyzer(stem=False, min_token_length=2))
    for document in corpus.documents:
        local.add_document(document)
    heads = local.heaviest_terms(HEAD_TERMS)
    queries = []
    for i in range(len(heads)):
        for j in range(i + 1, len(heads)):
            queries.append(f"{heads[i]} OR {heads[j]}")
    return queries


def run_head_term_experiment(corpus) -> List[Dict[str, object]]:
    """Sharded vs unsharded MaxScore on head-term OR queries.

    Disjunctive evaluation bounds unseen documents by the non-essential
    lists' max impact; per-shard quantized bounds replace the whole-list
    max with the shard-local max at each candidate, and remaining-bound
    demotion retires lists once their high-impact shards are consumed —
    so the sharded path *scores* (not just scans) measurably fewer
    documents while returning identical pages.
    """
    queries = _head_term_queries(corpus)
    unsharded_row, unsharded_top = _run_system(
        corpus, queries, "maxscore", shard_size=0, label="maxscore (head OR)"
    )
    sharded_row, sharded_top = _run_system(
        corpus, queries, "maxscore", shard_size=SHARD_SIZE,
        label="maxscore+shards (head OR)",
    )
    # Rank-pruning source ablation: the frontend-built RankRangeIndex (the
    # fallback that materialises the rank vector per rank round) versus the
    # quantized per-shard rank ceilings published into term manifests at
    # rank time (usable by any remote frontend with no vector at all).
    rri_row, rri_top = _run_system(
        corpus, queries, "maxscore", shard_size=SHARD_SIZE,
        frontend_overrides={"use_rank_ceilings": False},
        label="maxscore+shards+rri (head OR)",
    )
    ceilings_row, ceilings_top = _run_system(
        corpus, queries, "maxscore", shard_size=SHARD_SIZE,
        frontend_overrides={"use_rank_range_index": False},
        label="maxscore+shards+ceilings (head OR)",
    )
    naive_row, naive_top = _run_system(
        corpus, queries, "taat", shard_size=0, label="taat (head OR)"
    )
    assert sharded_top == naive_top, "sharding changed head-term top-k results"
    assert unsharded_top == naive_top, "MaxScore changed head-term top-k results"
    assert rri_top == naive_top, "RankRangeIndex pruning changed head-term top-k"
    assert ceilings_top == naive_top, "manifest rank ceilings changed head-term top-k"
    # The acceptance bar of the manifest path: at least as much shard
    # pruning as the RankRangeIndex it replaces, with no rank vector
    # materialised at the frontend.
    assert ceilings_row["shards skipped"] >= rri_row["shards skipped"], (
        "manifest rank ceilings prune fewer shards than the RankRangeIndex"
    )
    rows = [naive_row, unsharded_row, sharded_row, rri_row, ceilings_row]
    print_table(
        "E10b: head-term OR workload — per-shard bounds vs whole-list bounds",
        rows,
        note=f"{len(queries)} disjunctive queries over the {HEAD_TERMS} heaviest terms",
    )
    return rows


def run_vectorized_experiment() -> Tuple[List[Dict[str, object]], List[Dict[str, object]]]:
    """Scalar vs numpy-vectorized scoring: identical pages, wall-clock gain.

    One engine, one corpus, two frontends differing only in the
    ``vectorized_scoring`` option.  The simulated clock cannot see python
    CPU cost, so this section measures *wall* time (``time.perf_counter``,
    fine in benchmarks) around the query loop after a full warm-up pass per
    frontend (caches hot, readers memoized — what remains is scoring work).
    Returns ``(gate_rows, detail_rows)``: the gate row carries only the
    machine-portable numbers (the speedup *ratio* and the top-k mismatch
    count) for the bench-compare baseline; the detail rows carry the raw
    per-variant measurements.  Note the vectorized disjunctive path scores
    the whole candidate union instead of pruning, so its ``docs scored`` is
    higher by design — the docs-scored/sec comparison measures scoring
    throughput, while queries/sec is the end-to-end check.
    """
    corpus = build_corpus(VEC_DOC_COUNT, seed=904_000)
    generator = QueryWorkloadGenerator(corpus.documents, seed=904)
    queries = list(generator.generate_stream(VEC_QUERY_COUNT, VEC_DISTINCT_QUERIES))
    engine = build_engine(
        peer_count=VEC_PEER_COUNT,
        worker_count=max(4, VEC_PEER_COUNT // 4),
        execution_mode="maxscore",
        index_shard_size=VEC_SHARD_SIZE,
        posting_cache_capacity=CACHE_CAPACITY,
        seed=904,
    )
    engine.bootstrap_corpus(corpus.documents)
    engine.compute_page_ranks()

    detail_rows: List[Dict[str, object]] = []
    pages_by_variant: Dict[str, List[List[Tuple[int, float]]]] = {}
    rates: Dict[str, float] = {}
    for variant, vectorized in (("scalar", False), ("vectorized", True)):
        frontend = engine.create_frontend(
            requester="peer-001:store", vectorized_scoring=vectorized
        )
        # Warm-up pass: fills the posting cache and memoized readers, and
        # collects the pages the identity assertion compares.
        pages = [engine.search(query, frontend=frontend) for query in queries]
        pages_by_variant[variant] = [
            [(result.doc_id, result.score) for result in page.results] for page in pages
        ]
        scored_before = engine.metrics.counter("query.docs_scored")
        wall_start = time.perf_counter()
        for query in queries:
            engine.search(query, frontend=frontend)
        wall = time.perf_counter() - wall_start
        scored = engine.metrics.counter("query.docs_scored") - scored_before
        rate = scored / wall if wall else float("inf")
        rates[variant] = rate
        detail_rows.append(
            {
                "execution": f"maxscore+shards ({variant})",
                "docs scored": scored,
                "wall s": wall,
                "docs scored/s (wall)": rate,
                "queries/s (wall)": len(queries) / wall if wall else float("inf"),
            }
        )
    engine.storage.close()

    mismatches = sum(
        1
        for scalar_page, vector_page in zip(
            pages_by_variant["scalar"], pages_by_variant["vectorized"]
        )
        if scalar_page != vector_page
    )
    assert mismatches == 0, "vectorized scoring changed top-k pages"
    gate_rows = [
        {
            "execution": "vectorized-vs-scalar",
            # Ratio, not absolute rates: wall-clock numbers do not transfer
            # between the machine that committed the baseline and the CI
            # runner, but python-vs-numpy relative speed does.
            "docs scored/s speedup": rates["vectorized"] / rates["scalar"]
            if rates["scalar"]
            else float("inf"),
            "top-k mismatches": mismatches,
        }
    ]
    print_table(
        "E10c: vectorized scoring (identical pages, wall-clock throughput)",
        detail_rows + gate_rows,
        note=(
            f"{VEC_DOC_COUNT} documents, {VEC_QUERY_COUNT} queries, shard size "
            f"{VEC_SHARD_SIZE}; measured after a warm-up pass per frontend"
        ),
    )
    if not SMOKE:
        # The perf half of the acceptance bar: array scoring must beat the
        # scalar loops on scoring throughput at this corpus scale.  (Not
        # asserted in smoke: at 60 documents numpy's fixed costs dominate.)
        assert gate_rows[0]["docs scored/s speedup"] > 1.0, (
            "vectorized scoring is not faster than the scalar reference"
        )
    return gate_rows, detail_rows


def run_experiment() -> Dict[str, object]:
    corpus = build_corpus(DOC_COUNT)
    generator = QueryWorkloadGenerator(corpus.documents, seed=2019)
    queries = list(generator.generate_stream(QUERY_COUNT, DISTINCT_QUERIES))

    naive_row, naive_top = _run_system(corpus, queries, "taat", label="taat")
    pruned_row, pruned_top = _run_system(corpus, queries, "maxscore", label="maxscore")
    sharded_row, sharded_top = _run_system(
        corpus, queries, "maxscore", shard_size=SHARD_SIZE, label="maxscore+shards"
    )
    cached_row, cached_top = _run_system(
        corpus, queries, "maxscore", shard_size=SHARD_SIZE,
        cache_capacity=CACHE_CAPACITY, result_cache_capacity=RESULT_CACHE_CAPACITY,
        batched=True, overlapped=True, label="maxscore+shards+cache+batch",
    )
    sequential_row, sequential_top = _run_system(
        corpus, queries, "maxscore", shard_size=SHARD_SIZE,
        cache_capacity=CACHE_CAPACITY, result_cache_capacity=RESULT_CACHE_CAPACITY,
        batched=True, overlapped=False, label="maxscore+shards+cache+batch-overlap",
    )
    gossip_row, gossip_top = _run_system(
        corpus, queries, "maxscore", shard_size=SHARD_SIZE,
        cache_capacity=CACHE_CAPACITY, result_cache_capacity=RESULT_CACHE_CAPACITY,
        batched=True, overlapped=True, metadata_plane="gossip",
        label="maxscore+shards+cache+batch (gossip)",
    )

    assert pruned_top == naive_top, "MaxScore changed the top-k results"
    assert sharded_top == naive_top, "sharding changed the top-k results"
    assert cached_top == naive_top, "caching/batching/overlap changed the top-k results"
    assert sequential_top == naive_top, "sequential prefetch changed the top-k results"
    # The metadata-plane acceptance gate (also the CI smoke assertion): a
    # frontend that learns everything through the network — gossiped epoch
    # feed, manifest rank ceilings, DWeb-fetched rank vector and statistics
    # — serves pages bit-identical to the shared-plane frontend.
    assert gossip_top == cached_top, "gossip-plane top-k diverged from shared-plane"

    rows = [naive_row, pruned_row, sharded_row, cached_row, sequential_row, gossip_row]
    print_table(
        "E10: query execution engine (identical top-k, decreasing work)",
        rows,
        note=(
            f"{DOC_COUNT} documents, {QUERY_COUNT} queries drawn Zipf-weighted "
            f"from {DISTINCT_QUERIES} distinct, shard size {SHARD_SIZE} "
            f"({'smoke' if SMOKE else 'full'} config)"
        ),
    )
    head_rows = run_head_term_experiment(corpus)
    vectorized_rows, vectorized_detail_rows = run_vectorized_experiment()

    head_naive, head_unsharded, head_sharded, head_rri, head_ceilings = head_rows
    derived = {
        # Gossip staleness + the remote frontend's own cold caches cost
        # extra network fetches; pages are asserted identical above.
        "gossip_extra_network_fetches": (
            gossip_row["network fetches"] - cached_row["network fetches"]
        ),
        "head_shards_skipped_ceilings_vs_rri": (
            head_ceilings["shards skipped"] - head_rri["shards skipped"]
        ),
        "head_docs_scored_ratio_naive_vs_sharded": (
            head_naive["docs scored"] / head_sharded["docs scored"]
            if head_sharded["docs scored"]
            else float("inf")
        ),
        "head_docs_scored_ratio_unsharded_vs_sharded": (
            head_unsharded["docs scored"] / head_sharded["docs scored"]
            if head_sharded["docs scored"]
            else float("inf")
        ),
        "head_bytes_fetched_ratio_unsharded_vs_sharded": (
            head_unsharded["KiB fetched"] / head_sharded["KiB fetched"]
            if head_sharded["KiB fetched"]
            else float("inf")
        ),
        "batch_prefetch_overlap_speedup": (
            sequential_row["mean batch latency"] / cached_row["mean batch latency"]
            if cached_row["mean batch latency"]
            else float("inf")
        ),
        "vectorized_docs_scored_speedup": vectorized_rows[0]["docs scored/s speedup"],
        "vectorized_topk_mismatches": vectorized_rows[0]["top-k mismatches"],
    }
    payload = {
        "experiment": "E10",
        "config": {
            "smoke": SMOKE,
            "documents": DOC_COUNT,
            "queries": QUERY_COUNT,
            "distinct_queries": DISTINCT_QUERIES,
            "peers": PEER_COUNT,
            "shard_size": SHARD_SIZE,
            "batch_size": BATCH_SIZE,
            "posting_cache_capacity": CACHE_CAPACITY,
            "result_cache_capacity": RESULT_CACHE_CAPACITY,
            "vectorized_documents": VEC_DOC_COUNT,
            "vectorized_queries": VEC_QUERY_COUNT,
            "vectorized_shard_size": VEC_SHARD_SIZE,
        },
        "rows": rows,
        "head_term_rows": head_rows,
        "vectorized_rows": vectorized_rows,
        "vectorized_detail_rows": vectorized_detail_rows,
        "derived": derived,
    }
    # Smoke runs must not overwrite the committed full-run baseline the
    # bench-compare job diffs against.
    write_bench_json("BENCH_E10.smoke.json" if SMOKE else "BENCH_E10.json", payload)

    # The acceptance gates of the sharded fast path, enforced in the CI
    # smoke job as well as the full run:
    assert derived["head_docs_scored_ratio_naive_vs_sharded"] >= 2.0, (
        "per-shard bound skipping no longer halves head-term scoring work"
    )
    assert head_sharded["docs scored"] <= head_unsharded["docs scored"]
    assert sharded_row["shards skipped"] > 0, "shard skipping never fired"
    assert derived["batch_prefetch_overlap_speedup"] > 1.0, (
        "overlapped prefetch no longer beats sequential prefetch"
    )
    if not SMOKE:
        # Lazy shard cursors must fetch substantially fewer bytes than the
        # whole-list path on disjunctive head queries.  (Not asserted in the
        # smoke config: with ~8-posting shards the per-shard envelope
        # dominates the payload, which is a small-corpus artifact.)
        assert derived["head_bytes_fetched_ratio_unsharded_vs_sharded"] >= 2.0
    return payload


def test_e10_query_throughput(benchmark):
    payload = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    by_execution = {row["execution"]: row for row in payload["rows"]}
    naive = by_execution["taat"]
    pruned = by_execution["maxscore"]
    sharded = by_execution["maxscore+shards"]
    cached = by_execution["maxscore+shards+cache+batch"]
    # Pruning must skip a substantial share of scoring work.
    assert pruned["docs scored"] < naive["docs scored"]
    assert pruned["docs pruned"] > 0
    # Sharding must additionally skip whole shards without scanning them.
    assert sharded["shards skipped"] > 0
    assert sharded["postings scanned"] <= pruned["postings scanned"]
    # The caches plus batch dedup must eliminate most repeat work.
    assert cached["posting cache hit"] > 0.0
    assert cached["result cache hit"] > 0.0
    assert cached["network fetches"] < naive["network fetches"]
    # Overlap must beat sequential prefetch on batch latency.
    assert payload["derived"]["batch_prefetch_overlap_speedup"] > 1.0
    # The gossip-plane row exists and priced its staleness in fetches, not
    # correctness (identity is asserted inside run_experiment).
    assert "maxscore+shards+cache+batch (gossip)" in by_execution
    assert payload["derived"]["head_shards_skipped_ceilings_vs_rri"] >= 0
    # Vectorized scoring never changes pages; the speedup bar itself is
    # asserted inside run_vectorized_experiment (full runs only).
    assert payload["derived"]["vectorized_topk_mismatches"] == 0


if __name__ == "__main__":
    run_experiment()
