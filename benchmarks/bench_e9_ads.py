"""E9 — Ad economics and tamper evidence.

Paper claims: "advertisers directly make advertisements through our smart
contract and the ad revenue is shared among the content creators and worker
bees" (pay-per-click billing, challenge (I) asks for a fair charging scheme),
and "DWeb provides tamper-proof contents because each content piece is
uniquely identified by a cryptographic hash".

This bench (a) drives a click stream through the ad contract and checks where
every unit of revenue ends up — conservation and the configured split — and
(b) measures the tamper-detection rate of content addressing when a provider
serves corrupted blocks.
"""

from __future__ import annotations

from typing import Dict, List

from repro.incentives.simulation import EconomySimulation
from repro.storage.block import Block
from repro.storage.cid import compute_cid, verify_cid

from benchmarks.common import build_corpus, build_engine, print_table

DOC_COUNT = 180
EPOCHS = 3
TAMPER_TRIALS = 200


def _ad_economy_rows() -> List[Dict[str, object]]:
    corpus = build_corpus(DOC_COUNT, seed=1300, owner_count=25)
    engine = build_engine(peer_count=20, worker_count=5, seed=1300,
                          creator_share=0.6, worker_share=0.3, treasury_share=0.1)
    simulation = EconomySimulation(
        engine,
        documents=corpus.documents,
        queries_per_epoch=12,
        publishes_per_epoch=6,
        click_probability=0.8,
        ad_keywords=["decentralized", "search", "crypto", "network"],
        ad_budget=100_000,
        ad_bid=100,
        seed=1300,
    )
    simulation.run(epochs=EPOCHS, initial_documents=120)
    clicks = sum(epoch.ad_clicks for epoch in simulation.epochs)
    revenue = engine.chain.query("ads", "revenue_summary")
    total = revenue["creators"] + revenue["workers"] + revenue["treasury"]
    rows = [{
        "metric": "clicks billed",
        "value": clicks,
        "detail": f"{EPOCHS} epochs, bid 100/click",
    }, {
        "metric": "revenue conserved",
        "value": total == clicks * 100,
        "detail": f"distributed {total} of {clicks * 100} escrowed",
    }, {
        "metric": "creator share (%)",
        "value": 100.0 * revenue["creators"] / total if total else 0.0,
        "detail": "configured 60%",
    }, {
        "metric": "worker share (%)",
        "value": 100.0 * revenue["workers"] / total if total else 0.0,
        "detail": "configured 30%",
    }, {
        "metric": "treasury share (%)",
        "value": 100.0 * revenue["treasury"] / total if total else 0.0,
        "detail": "configured 10%",
    }]
    return rows


def _tamper_rows() -> List[Dict[str, object]]:
    detected = 0
    for trial in range(TAMPER_TRIALS):
        original = f"page body {trial} about decentralized search"
        cid = compute_cid(original)
        tampered = original.replace("decentralized", "centralized")
        if not verify_cid(cid, tampered):
            detected += 1
    block_detected = 0
    for trial in range(TAMPER_TRIALS):
        block = Block.create(f"block payload {trial}".encode("utf-8"))
        forged = Block(cid=block.cid, data=block.data + b"!", links=block.links)
        if not forged.verify():
            block_detected += 1
    return [{
        "metric": "tampered pages detected (%)",
        "value": 100.0 * detected / TAMPER_TRIALS,
        "detail": f"{TAMPER_TRIALS} single-word substitutions",
    }, {
        "metric": "tampered blocks detected (%)",
        "value": 100.0 * block_detected / TAMPER_TRIALS,
        "detail": f"{TAMPER_TRIALS} one-byte appends",
    }]


def run_experiment() -> List[Dict[str, object]]:
    rows = _ad_economy_rows() + _tamper_rows()
    print_table(
        "E9: pay-per-click ad economics and tamper evidence",
        rows,
        note="Revenue split among creators, worker bees, and the treasury via the ad contract",
    )
    return rows


def test_e9_ads(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    by_metric = {row["metric"]: row for row in rows}
    assert by_metric["clicks billed"]["value"] > 0
    assert by_metric["revenue conserved"]["value"] is True
    # The configured 60/30/10 split holds to within integer-rounding slack.
    assert abs(by_metric["creator share (%)"]["value"] - 60.0) < 2.0
    assert abs(by_metric["worker share (%)"]["value"] - 30.0) < 2.0
    # Content addressing catches every tampered page and block.
    assert by_metric["tampered pages detected (%)"]["value"] == 100.0
    assert by_metric["tampered blocks detected (%)"]["value"] == 100.0


if __name__ == "__main__":
    run_experiment()
