"""E11 — The serving front door under open-loop load.

Every earlier benchmark drives the engine *closed-loop*: the driver waits
for each page before issuing the next query, so offered load can never
exceed service capacity and queueing never appears.  E11 replays
**open-loop** arrival processes (see :mod:`repro.workloads.arrivals`)
against the :class:`repro.serve.QueryService` front door and measures what
admission control actually buys:

* **Unloaded identity** — with unlimited concurrency and queue the service
  must be a transparent wrapper: pages bit-identical to a direct
  ``frontend.search`` on a twin deployment (the ``E11_SMOKE`` CI gate).
* **Flash crowd** — a burst at many times the sustainable rate.  The
  admission rows bound the queue, shed or degrade the excess, and keep the
  p99 of *admitted* requests bounded; the ``no admission`` ablation row
  admits everything and shows the alternative — every request in the
  backlog (including post-burst ones) inherits the queue's delay.
* **Diurnal** — a sinusoidal day curve at moderate load: nearly everything
  admitted, queueing only near the peaks.

Outcomes are read from each response's ``ServingDiagnostics`` tag, not
from scattered counters.  Goodput counts *admitted, completed* requests
(full or fresh-cache answers) per kilotick from the first arrival to the
last resolution — degraded replays keep users answered but do not count
as goodput.  Results go to ``BENCH_E11.json`` (``BENCH_E11.smoke.json``
under ``E11_SMOKE``), gated by ``compare_bench.py`` like E3/E4/E10.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

from repro.metrics.summary import percentile
from repro.search.results import SERVED_FULL, SERVED_RESULT_CACHE
from repro.serve import ServiceOptions
from repro.workloads import (
    DiurnalArrivals,
    FlashCrowdArrivals,
    PoissonArrivals,
    QueryWorkloadGenerator,
)

from benchmarks.common import build_corpus, build_engine, print_table, write_bench_json

SMOKE = bool(os.environ.get("E11_SMOKE"))
DOC_COUNT = 60 if SMOKE else 250
PEER_COUNT = 12 if SMOKE else 24
POOL_SIZE = 20 if SMOKE else 60
# A flat-ish repeat distribution: head queries repeat enough to seed the
# result cache (the degraded-mode source) while the tail keeps the full
# path busy enough to overload.
REPEAT_EXPONENT = 0.7
POSTING_CACHE = 512
RESULT_CACHE = 128

IDENTITY_HORIZON = 20_000.0 if SMOKE else 60_000.0
IDENTITY_RATE = 1 / 2_000.0

BASE_RATE = 1 / 2_500.0
BURST_START = 2_000.0
BURST_DURATION = 10_000.0 if SMOKE else 30_000.0
BURST_FACTOR = 40.0
FLASH_HORIZON = BURST_START + BURST_DURATION + (20_000.0 if SMOKE else 60_000.0)

DIURNAL_HORIZON = 30_000.0 if SMOKE else 90_000.0
DIURNAL_RATE = 1 / 1_500.0
DIURNAL_PERIOD = DIURNAL_HORIZON / 2.0

GOODPUT_STATES = (SERVED_FULL, SERVED_RESULT_CACHE)


def _build_serving_engine():
    engine = build_engine(
        peer_count=PEER_COUNT,
        worker_count=max(4, PEER_COUNT // 4),
        posting_cache_capacity=POSTING_CACHE,
        result_cache_capacity=RESULT_CACHE,
        index_shard_size=16,
        seed=2019,
    )
    corpus = build_corpus(DOC_COUNT)
    engine.bootstrap_corpus(corpus.documents)
    engine.compute_page_ranks()
    return engine, corpus


def _query_pool(corpus) -> List[str]:
    generator = QueryWorkloadGenerator(corpus.documents, seed=2019)
    return list(generator.generate(POOL_SIZE))


def _serve_workload(
    service_options: Optional[ServiceOptions], workload_name: str, label: str
) -> Tuple[Dict[str, object], List]:
    """Run one (service policy, workload) cell on a fresh deployment."""
    engine, corpus = _build_serving_engine()
    pool = _query_pool(corpus)
    rng = engine.simulator.fork_rng(f"e11-{workload_name}")
    if workload_name == "flash":
        workload = FlashCrowdArrivals(
            pool, base_rate=BASE_RATE, burst_start=BURST_START,
            burst_duration=BURST_DURATION, burst_factor=BURST_FACTOR,
            rng=rng, repeat_exponent=REPEAT_EXPONENT,
        ).generate(FLASH_HORIZON)
    elif workload_name == "diurnal":
        workload = DiurnalArrivals(
            pool, base_rate=DIURNAL_RATE, period=DIURNAL_PERIOD,
            rng=rng, repeat_exponent=REPEAT_EXPONENT,
        ).generate(DIURNAL_HORIZON)
    else:
        workload = PoissonArrivals(
            pool, rate=IDENTITY_RATE, rng=rng, repeat_exponent=REPEAT_EXPONENT,
        ).generate(IDENTITY_HORIZON)

    service = engine.create_service(service_options, requesters=None)
    start = engine.simulator.now
    responses = service.run_workload(workload)
    span = engine.simulator.now - start

    admitted_latencies = [
        r.latency for r in responses if r.served_from in GOODPUT_STATES
    ]
    queue_delays = [
        r.page.serving.queue_delay
        for r in responses
        if r.served_from in GOODPUT_STATES
    ]
    stats = service.stats
    row = {
        "system": label,
        "workload": workload_name,
        "arrivals": len(responses),
        "admitted": stats.admitted,
        "degraded": stats.degraded,
        "shed": stats.shed,
        "goodput (q/ktick)": (
            len(admitted_latencies) / (span / 1000.0) if span else 0.0
        ),
        "p50 latency": percentile(admitted_latencies, 0.50),
        "p95 latency": percentile(admitted_latencies, 0.95),
        "p99 latency": percentile(admitted_latencies, 0.99),
        "max queue delay": max(queue_delays) if queue_delays else 0.0,
        "answered (%)": (
            100.0 * sum(1 for r in responses if r.page.serving.answered) / len(responses)
            if responses
            else 0.0
        ),
    }
    return row, responses


def run_identity_check() -> Dict[str, object]:
    """Unloaded service ≡ direct frontend, page for page (the CI gate)."""
    engine, corpus = _build_serving_engine()
    pool = _query_pool(corpus)
    workload = PoissonArrivals(
        pool, rate=IDENTITY_RATE, rng=engine.simulator.fork_rng("e11-identity"),
        repeat_exponent=REPEAT_EXPONENT,
    ).generate(IDENTITY_HORIZON)

    service = engine.create_service(
        ServiceOptions(replicas=1, concurrency=None, queue_capacity=None),
    )
    responses = service.run_workload(workload)

    twin, _ = _build_serving_engine()
    frontend = twin.create_frontend()
    direct_pages = [frontend.search(query) for _, query in workload]

    assert len(responses) == len(direct_pages)
    mismatches = 0
    for response, direct in zip(responses, direct_pages):
        service_top = [(r.doc_id, r.score) for r in response.page.results]
        direct_top = [(r.doc_id, r.score) for r in direct.results]
        if service_top != direct_top or response.page.serving.queue_delay != 0.0:
            mismatches += 1
    assert mismatches == 0, (
        f"unloaded service diverged from direct frontend on {mismatches} pages"
    )
    return {
        "queries": len(responses),
        "mismatches": mismatches,
        "identical": mismatches == 0,
    }


def run_experiment() -> Dict[str, object]:
    identity = run_identity_check()

    admission = ServiceOptions(
        replicas=2, concurrency=2, queue_capacity=4, degraded=True,
    )
    shed_only = ServiceOptions(
        replicas=2, concurrency=2, queue_capacity=4, degraded=False,
    )
    no_admission = ServiceOptions(
        replicas=2, concurrency=2, queue_capacity=None, admission=False,
    )

    flash_rows = []
    flash_admission_row, flash_admission = _serve_workload(
        admission, "flash", "admission+degraded"
    )
    flash_rows.append(flash_admission_row)
    flash_shed_row, _ = _serve_workload(shed_only, "flash", "admission (shed only)")
    flash_rows.append(flash_shed_row)
    flash_ablation_row, _ = _serve_workload(no_admission, "flash", "no admission")
    flash_rows.append(flash_ablation_row)

    diurnal_row, _ = _serve_workload(admission, "diurnal", "admission+degraded")

    print_table(
        "E11a: flash crowd — admission control vs the unbounded queue",
        flash_rows,
        note=(
            f"burst x{BURST_FACTOR:.0f} for {BURST_DURATION:.0f} ticks over a "
            f"{1 / BASE_RATE:.0f}-tick baseline inter-arrival "
            f"({'smoke' if SMOKE else 'full'} config)"
        ),
    )
    print_table(
        "E11b: diurnal load — moderate service, occasional queueing",
        [diurnal_row],
        note=f"sinusoidal rate around {DIURNAL_RATE * 1000:.2f} q/ktick",
    )

    derived = {
        "flash_p99_ratio_no_admission_vs_admission": (
            flash_ablation_row["p99 latency"] / flash_admission_row["p99 latency"]
            if flash_admission_row["p99 latency"]
            else float("inf")
        ),
        "flash_admission_answered_pct": flash_admission_row["answered (%)"],
        "flash_admission_rejected": (
            flash_admission_row["shed"] + flash_admission_row["degraded"]
        ),
    }
    payload = {
        "experiment": "E11",
        "config": {
            "smoke": SMOKE,
            "documents": DOC_COUNT,
            "peers": PEER_COUNT,
            "query_pool": POOL_SIZE,
            "burst_factor": BURST_FACTOR,
            "burst_duration": BURST_DURATION,
            "posting_cache_capacity": POSTING_CACHE,
            "result_cache_capacity": RESULT_CACHE,
        },
        "identity": identity,
        "rows": flash_rows + [diurnal_row],
        "derived": derived,
    }
    write_bench_json("BENCH_E11.smoke.json" if SMOKE else "BENCH_E11.json", payload)

    # Acceptance gates (enforced in CI smoke as well as the full run):
    assert identity["identical"], "unloaded service is not identical to direct search"
    # Under the flash crowd the admitted service keeps answering...
    assert flash_admission_row["goodput (q/ktick)"] > 0.0, "goodput collapsed to zero"
    # ...sheds or degrades the excess instead of queueing it...
    assert derived["flash_admission_rejected"] > 0, "overload never triggered rejection"
    # ...and bounds the admitted tail, which the unbounded queue does not.
    assert (
        flash_admission_row["p99 latency"] < flash_ablation_row["p99 latency"]
    ), "admission control did not improve the admitted p99 under overload"
    return payload


def test_e11_serving(benchmark):
    payload = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = {(row["system"], row["workload"]): row for row in payload["rows"]}
    admission = rows[("admission+degraded", "flash")]
    ablation = rows[("no admission", "flash")]
    # The ablation row exists and admits everything.
    assert ablation["shed"] == 0 and ablation["degraded"] == 0
    assert ablation["admitted"] == ablation["arrivals"]
    # Admission keeps a large share of requests answered (shed is the
    # explicit trade; degraded answers still count as answered).
    assert admission["answered (%)"] > 50.0
    # The no-admission p99 demonstrates the backlog inheritance the front
    # door exists to prevent.
    assert payload["derived"]["flash_p99_ratio_no_admission_vs_admission"] > 1.0


if __name__ == "__main__":
    run_experiment()
