"""E1 — Query latency and throughput: QueenBee vs centralized vs YaCy-style.

Paper claim: DWeb (and by extension QueenBee) offers "better browsing
experiences in terms of shorter latency and higher throughput" than a
degraded/attacked centralized service, while the frontend composes results
"by intersecting the matched inverted lists".

This bench measures end-to-end simulated query latency (median / p90) and
simulated throughput for the three systems over the same corpus and query
workload, at two overlay sizes, plus the rarest-first planning ablation.
"""

from __future__ import annotations

from typing import Dict, List

from repro.baselines.centralized import CentralizedSearchEngine
from repro.baselines.yacy import YaCyStyleEngine
from repro.metrics.summary import summarize
from repro.net.latency import LogNormalLatency
from repro.net.network import SimulatedNetwork
from repro.sim.simulator import Simulator

from benchmarks.common import build_corpus, build_engine, build_queries, print_table

DOC_COUNT = 400
QUERY_COUNT = 60
PEER_COUNTS = (16, 48)


def _queenbee_rows(corpus, queries, peer_count: int, planning: str) -> Dict[str, object]:
    # E1 compares cold query paths across systems, so the posting cache is
    # disabled here; E10 measures what caching buys on a repeated stream.
    engine = build_engine(peer_count=peer_count, worker_count=max(4, peer_count // 8),
                          planning_strategy=planning, seed=100 + peer_count,
                          posting_cache_capacity=0)
    engine.bootstrap_corpus(corpus.documents)
    engine.compute_page_ranks()
    frontend = engine.create_frontend()
    start = engine.simulator.now
    latencies = []
    for query in queries:
        page = engine.search(query, frontend=frontend)
        latencies.append(page.latency)
    elapsed = engine.simulator.now - start
    summary = summarize(latencies)
    label = "QueenBee" if planning == "rarest_first" else "QueenBee (naive plan)"
    return {
        "system": label,
        "peers": peer_count,
        "p50 latency (ms)": summary.p50,
        "p90 latency (ms)": summary.p90,
        "throughput (q/s)": len(queries) / (elapsed / 1000.0) if elapsed else 0.0,
    }


def _centralized_row(corpus, queries, peer_count: int) -> Dict[str, object]:
    simulator = Simulator(seed=200 + peer_count)
    network = SimulatedNetwork(simulator, latency=LogNormalLatency(median=25.0, sigma=0.45))
    network.register("client", lambda message: None)
    engine = CentralizedSearchEngine(simulator, network)
    for document in corpus.documents:
        engine.index_document(document)
    engine.recompute_page_ranks()
    start = simulator.now
    latencies = [engine.search(query, client="client").latency for query in queries]
    elapsed = simulator.now - start
    summary = summarize(latencies)
    return {
        "system": "Centralized",
        "peers": peer_count,
        "p50 latency (ms)": summary.p50,
        "p90 latency (ms)": summary.p90,
        "throughput (q/s)": len(queries) / (elapsed / 1000.0) if elapsed else 0.0,
    }


def _yacy_row(corpus, queries, peer_count: int) -> Dict[str, object]:
    simulator = Simulator(seed=300 + peer_count)
    network = SimulatedNetwork(simulator, latency=LogNormalLatency(median=25.0, sigma=0.45))
    network.register("client", lambda message: None)
    engine = YaCyStyleEngine(simulator, network, peer_count=peer_count, participation_rate=0.6)
    for document in corpus.documents:
        engine.index_document(document)
    start = simulator.now
    latencies = [engine.search(query, client="client").latency for query in queries]
    elapsed = simulator.now - start
    summary = summarize(latencies)
    return {
        "system": "YaCy-style",
        "peers": peer_count,
        "p50 latency (ms)": summary.p50,
        "p90 latency (ms)": summary.p90,
        "throughput (q/s)": len(queries) / (elapsed / 1000.0) if elapsed else 0.0,
    }


def run_experiment() -> List[Dict[str, object]]:
    corpus = build_corpus(DOC_COUNT)
    queries = build_queries(corpus, QUERY_COUNT)
    rows: List[Dict[str, object]] = []
    for peer_count in PEER_COUNTS:
        rows.append(_centralized_row(corpus, queries, peer_count))
        rows.append(_yacy_row(corpus, queries, peer_count))
        rows.append(_queenbee_rows(corpus, queries, peer_count, "rarest_first"))
    # Planning ablation at the larger size only.
    rows.append(_queenbee_rows(corpus, queries, PEER_COUNTS[-1], "query_order"))
    print_table(
        "E1: query latency and throughput (simulated ms)",
        rows,
        note=f"{DOC_COUNT} documents, {QUERY_COUNT} Zipfian queries per system",
    )
    return rows


def test_e1_query_latency(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    assert rows
    by_system = {(row["system"], row["peers"]): row for row in rows}
    for peers in PEER_COUNTS:
        central = by_system[("Centralized", peers)]
        queenbee = by_system[("QueenBee", peers)]
        # A healthy centralized engine answers in one round trip, so it must be
        # faster; QueenBee should stay within an order of magnitude.
        assert central["p50 latency (ms)"] < queenbee["p50 latency (ms)"]
        assert queenbee["p50 latency (ms)"] < central["p50 latency (ms)"] * 100


if __name__ == "__main__":
    run_experiment()
