"""E3 — Resilience to node failures, DDoS, and network partitions.

Paper claim: DWeb's distribution and replication give "better resiliency
against network partitioning and distributed-denial-of-service attacks
(DDoS)", whereas centralized engines are "subject to DDoS attacks".

This bench fails a growing fraction of QueenBee's peers and measures query
success rate and recall against the healthy system's results; for the
centralized baseline, "failure fraction > 0" means its single server is the
target (one DDoS takes the whole service down).
"""

from __future__ import annotations

from typing import Dict, List

from repro.baselines.centralized import CentralizedSearchEngine
from repro.net.latency import LogNormalLatency
from repro.net.network import SimulatedNetwork
from repro.sim.simulator import Simulator

from benchmarks.common import build_corpus, build_engine, build_queries, print_table

DOC_COUNT = 250
QUERY_COUNT = 40
FAIL_FRACTIONS = (0.0, 0.1, 0.25, 0.5)


def _queenbee_rows(corpus, queries) -> List[Dict[str, object]]:
    rows = []
    for fraction in FAIL_FRACTIONS:
        # No posting cache: the baseline pass would warm it and post-failure
        # queries would be served locally, masking the peer loss under test.
        engine = build_engine(peer_count=32, worker_count=8, seed=500 + int(fraction * 100),
                              storage_replication=3, dht_replicate=4,
                              posting_cache_capacity=0)
        engine.bootstrap_corpus(corpus.documents)
        engine.compute_page_ranks()
        frontend = engine.create_frontend()
        baseline_results = {q: engine.search(q, frontend=frontend).doc_ids for q in queries}
        engine.fail_peers(fraction)
        rows.append(_measure("QueenBee", fraction, queries, baseline_results,
                             lambda q: engine.search(q, frontend=frontend)))
    return rows


def _centralized_rows(corpus, queries) -> List[Dict[str, object]]:
    rows = []
    for fraction in FAIL_FRACTIONS:
        simulator = Simulator(seed=600)
        network = SimulatedNetwork(simulator, latency=LogNormalLatency(median=25.0, sigma=0.45))
        network.register("client", lambda message: None)
        engine = CentralizedSearchEngine(simulator, network)
        for document in corpus.documents:
            engine.index_document(document)
        engine.recompute_page_ranks()
        baseline_results = {q: engine.search(q, client="client").doc_ids for q in queries}
        if fraction > 0:
            # Any successful DDoS on the single server takes the service down.
            network.set_offline(engine.address)
        rows.append(_measure("Centralized", fraction, queries, baseline_results,
                             lambda q: engine.search(q, client="client")))
    return rows


def _measure(system: str, fraction: float, queries, baseline_results, run_query) -> Dict[str, object]:
    """Answered fraction over all queries; recall only over queries that had results
    on the healthy system (so empty-result queries cannot mask an outage)."""
    answered = 0
    recalls = []
    for query in queries:
        page = run_query(query)
        expected = baseline_results[query]
        if page.result_count > 0 or not expected:
            answered += 1
        if expected:
            recalls.append(page.recall_against(expected))
    return {
        "system": system,
        "failed fraction": fraction,
        "answered (%)": 100.0 * answered / len(queries),
        "recall vs healthy (%)": 100.0 * sum(recalls) / max(1, len(recalls)),
    }


def run_experiment() -> List[Dict[str, object]]:
    corpus = build_corpus(DOC_COUNT, seed=88)
    queries = build_queries(corpus, QUERY_COUNT, seed=88)
    rows = _queenbee_rows(corpus, queries) + _centralized_rows(corpus, queries)
    print_table(
        "E3: resilience — query success and recall under failures",
        rows,
        note="For the centralized system any non-zero failure is a DDoS on its only server",
    )
    return rows


def test_e3_resilience(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    queenbee = [r for r in rows if r["system"] == "QueenBee"]
    central = [r for r in rows if r["system"] == "Centralized"]
    # The centralized service collapses under any successful DDoS.
    assert all(r["recall vs healthy (%)"] == 0.0 for r in central if r["failed fraction"] > 0)
    # QueenBee keeps answering most queries even with a quarter of peers gone.
    quarter = next(r for r in queenbee if r["failed fraction"] == 0.25)
    assert quarter["recall vs healthy (%)"] > 50.0
    # And degrades gracefully rather than falling off a cliff.
    recalls = [r["recall vs healthy (%)"] for r in queenbee]
    assert recalls[0] >= recalls[-1]


if __name__ == "__main__":
    run_experiment()
