"""E3 — Resilience to node failures, DDoS, and network partitions.

Paper claim: DWeb's distribution and replication give "better resiliency
against network partitioning and distributed-denial-of-service attacks
(DDoS)", whereas centralized engines are "subject to DDoS attacks".

This bench fails a growing fraction of QueenBee's peers and measures query
success rate and recall against the healthy system's results; for the
centralized baseline, "failure fraction > 0" means its single server is the
target (one DDoS takes the whole service down).

The **shard-repair-under-churn** section exercises the placement layer's
repair loop: storage peers churn through alternating online/offline sessions
while index shards are re-replicated whenever a departure drops them below
the replication floor.  With repair off, shards whose whole replica set
happens to be offline at query time are unreachable (recall loss); with the
churn model wired through ``QueenBeeEngine.create_churn_model`` the repair
loop keeps shards above the floor and recall near the healthy baseline.

The **gossip-under-churn** section measures the metadata plane's
convergence behaviour under the same session churn: scheduled anti-entropy
rounds keep running while peers flap, offline peers accumulate divergence,
and the tracked metric is how many synchronous rounds the plane needs to
re-converge once the churn horizon ends — plus a query-identity check from
a remote (gossip-plane) frontend.  Results are written to ``BENCH_E3.json``
for PR-over-PR tracking.
"""

from __future__ import annotations

from typing import Dict, List

from repro.baselines.centralized import CentralizedSearchEngine
from repro.net.churn import ChurnModel
from repro.net.latency import LogNormalLatency
from repro.net.network import SimulatedNetwork
from repro.sim.simulator import Simulator

from benchmarks.common import (
    build_corpus,
    build_engine,
    build_queries,
    print_table,
    write_bench_json,
)

DOC_COUNT = 250
QUERY_COUNT = 40
FAIL_FRACTIONS = (0.0, 0.1, 0.25, 0.5)

# Churn/repair section: alternating sessions sized so about half the
# overlay is offline at any instant, long enough for several transitions
# per peer within the horizon.
CHURN_MEAN_SESSION = 5_000.0
CHURN_MEAN_DOWNTIME = 5_000.0
CHURN_HORIZON = 40_000.0


def _queenbee_rows(corpus, queries) -> List[Dict[str, object]]:
    rows = []
    for fraction in FAIL_FRACTIONS:
        # No posting cache: the baseline pass would warm it and post-failure
        # queries would be served locally, masking the peer loss under test.
        engine = build_engine(peer_count=32, worker_count=8, seed=500 + int(fraction * 100),
                              storage_replication=3, dht_replicate=4,
                              posting_cache_capacity=0)
        engine.bootstrap_corpus(corpus.documents)
        engine.compute_page_ranks()
        frontend = engine.create_frontend()
        baseline_results = {q: engine.search(q, frontend=frontend).doc_ids for q in queries}
        engine.fail_peers(fraction)
        rows.append(_measure("QueenBee", fraction, queries, baseline_results,
                             lambda q: engine.search(q, frontend=frontend)))
    return rows


def _centralized_rows(corpus, queries) -> List[Dict[str, object]]:
    rows = []
    for fraction in FAIL_FRACTIONS:
        simulator = Simulator(seed=600)
        network = SimulatedNetwork(simulator, latency=LogNormalLatency(median=25.0, sigma=0.45))
        network.register("client", lambda message: None)
        engine = CentralizedSearchEngine(simulator, network)
        for document in corpus.documents:
            engine.index_document(document)
        engine.recompute_page_ranks()
        baseline_results = {q: engine.search(q, client="client").doc_ids for q in queries}
        if fraction > 0:
            # Any successful DDoS on the single server takes the service down.
            network.set_offline(engine.address)
        rows.append(_measure("Centralized", fraction, queries, baseline_results,
                             lambda q: engine.search(q, client="client")))
    return rows


def _measure(system: str, fraction: float, queries, baseline_results, run_query) -> Dict[str, object]:
    """Answered fraction over all queries; recall only over queries that had results
    on the healthy system (so empty-result queries cannot mask an outage)."""
    answered = 0
    recalls = []
    for query in queries:
        page = run_query(query)
        expected = baseline_results[query]
        if page.result_count > 0 or not expected:
            answered += 1
        if expected:
            recalls.append(page.recall_against(expected))
    return {
        "system": system,
        "failed fraction": fraction,
        "answered (%)": 100.0 * answered / len(queries),
        "recall vs healthy (%)": 100.0 * sum(recalls) / max(1, len(recalls)),
    }


def _repair_rows(corpus, queries) -> List[Dict[str, object]]:
    """Shard repair under session churn: placement repair off vs on."""
    rows = []
    for repair in (False, True):
        # No posting cache (same rationale as the failure rows) and no
        # result cache: every post-churn query must resolve shards from
        # whatever providers are actually alive.
        engine = build_engine(peer_count=32, worker_count=8, seed=700,
                              storage_replication=3, dht_replicate=4,
                              posting_cache_capacity=0, index_shard_size=32)
        engine.bootstrap_corpus(corpus.documents)
        engine.compute_page_ranks()
        frontend = engine.create_frontend(requester="peer-000:store")
        baseline_results = {q: engine.search(q, frontend=frontend).doc_ids for q in queries}

        # Repair off: a bare churn model drives the same connectivity
        # schedule without the placement listeners (the ablation).
        churn = (
            engine.create_churn_model()
            if repair
            else ChurnModel(engine.simulator, engine.network)
        )
        stores = [f"{peer_id}:store" for peer_id in engine.peer_ids]
        transitions = churn.schedule_session_churn(
            stores, CHURN_MEAN_SESSION, CHURN_MEAN_DOWNTIME, CHURN_HORIZON
        )
        engine.simulator.advance(CHURN_HORIZON)
        offline = sum(1 for address in stores if not engine.network.is_online(address))

        # Measure from a *cold* requester: the baseline frontend's peer
        # cached every block it fetched, which would mask unreachable
        # shards entirely (block-level caching is what keeps the failure
        # rows above at 100%).  The churn question is whether the *network*
        # still holds every shard, so the post-churn frontend runs on a
        # different peer with an empty block store.
        cold = engine.create_frontend(requester="peer-001:store")
        measured = _measure(
            "QueenBee", offline / len(stores), queries, baseline_results,
            lambda q: engine.search(q, frontend=cold),
        )
        placement_stats = engine.placement.stats
        rows.append({
            "repair": "on" if repair else "off",
            "churn transitions": transitions,
            "offline at horizon (%)": 100.0 * offline / len(stores),
            "answered (%)": measured["answered (%)"],
            "recall vs healthy (%)": measured["recall vs healthy (%)"],
            "shards repaired": placement_stats.shards_repaired,
            "repairs failed": placement_stats.repairs_failed,
            "manifest refreshes": placement_stats.manifest_refreshes,
        })
    return rows


def _gossip_rows(corpus, queries) -> List[Dict[str, object]]:
    """Gossip-plane convergence under session churn (the metadata plane's E3)."""
    engine = build_engine(peer_count=32, worker_count=8, seed=800,
                          storage_replication=3, dht_replicate=4,
                          posting_cache_capacity=0, index_shard_size=32,
                          metadata_plane="gossip")
    engine.bootstrap_corpus(corpus.documents)
    engine.compute_page_ranks()
    pre_rounds = engine.converge_metadata(max_rounds=128)
    # The healthy reference comes from a shared-plane frontend on the same
    # engine: the identity check below is gossip-vs-shared, not merely
    # gossip-vs-gossip.
    shared = engine.create_shared_frontend(requester="peer-001:store")
    baseline_results = {q: engine.search(q, frontend=shared).doc_ids for q in queries}

    churn = engine.create_churn_model()
    stores = [f"{peer_id}:store" for peer_id in engine.peer_ids]
    transitions = churn.schedule_session_churn(
        stores, CHURN_MEAN_SESSION, CHURN_MEAN_DOWNTIME, CHURN_HORIZON
    )
    rounds_before = engine.gossip.stats.rounds
    engine.simulator.advance(CHURN_HORIZON)
    scheduled_rounds = engine.gossip.stats.rounds - rounds_before
    offline = sum(1 for address in stores if not engine.network.is_online(address))

    # The tracked metric: synchronous rounds until every *online* peer's
    # view agrees again after the churn window (offline peers reconcile on
    # rejoin).  Then a remote frontend on a churn-survivor peer must answer
    # the healthy queries with full recall (placement repair keeps shards
    # reachable; the plane keeps its metadata fresh).
    post_rounds = engine.converge_metadata(max_rounds=128)
    survivor = next(a for a in stores if engine.network.is_online(a))
    remote = engine.create_gossip_frontend(requester=survivor)
    measured = _measure(
        "QueenBee (gossip)", offline / len(stores), queries, baseline_results,
        lambda q: engine.search(q, frontend=remote),
    )
    return [{
        "plane": "gossip",
        "churn transitions": transitions,
        "offline at horizon (%)": 100.0 * offline / len(stores),
        "scheduled rounds in horizon": scheduled_rounds,
        "pre-churn convergence rounds": pre_rounds,
        "post-churn convergence rounds": post_rounds,
        "answered (%)": measured["answered (%)"],
        "recall vs healthy (%)": measured["recall vs healthy (%)"],
    }]


def run_experiment() -> Dict[str, object]:
    corpus = build_corpus(DOC_COUNT, seed=88)
    queries = build_queries(corpus, QUERY_COUNT, seed=88)
    rows = _queenbee_rows(corpus, queries) + _centralized_rows(corpus, queries)
    print_table(
        "E3: resilience — query success and recall under failures",
        rows,
        note="For the centralized system any non-zero failure is a DDoS on its only server",
    )
    repair_rows = _repair_rows(corpus, queries)
    print_table(
        "E3b: shard repair under churn — placement repair off vs on",
        repair_rows,
        note=(
            f"{len(corpus.documents)} documents, session churn over all "
            f"storage peers to horizon {CHURN_HORIZON:.0f}; repair "
            "re-replicates shards that drop below the replication floor"
        ),
    )
    gossip_rows = _gossip_rows(corpus, queries)
    print_table(
        "E3c: gossip under churn — metadata-plane convergence",
        gossip_rows,
        note=(
            "anti-entropy rounds keep firing through the churn window; the "
            "tracked metric is rounds to re-converge once churn ends"
        ),
    )
    payload = {
        "experiment": "E3",
        "config": {
            "documents": DOC_COUNT,
            "queries": QUERY_COUNT,
            "fail_fractions": list(FAIL_FRACTIONS),
            "churn": {
                "mean_session": CHURN_MEAN_SESSION,
                "mean_downtime": CHURN_MEAN_DOWNTIME,
                "horizon": CHURN_HORIZON,
            },
        },
        "rows": rows,
        "repair_rows": repair_rows,
        "gossip_rows": gossip_rows,
    }
    write_bench_json("BENCH_E3.json", payload)

    # Acceptance gates for the repair loop (enforced in every run): repair
    # must actually fire under churn and must not lose recall versus the
    # unrepaired ablation.
    unrepaired = next(r for r in repair_rows if r["repair"] == "off")
    repaired = next(r for r in repair_rows if r["repair"] == "on")
    assert repaired["shards repaired"] > 0, "churn never exercised the repair loop"
    assert repaired["recall vs healthy (%)"] >= unrepaired["recall vs healthy (%)"]
    # Gates for the metadata plane: it must actually re-converge after the
    # churn window, and a remote frontend must keep full recall against the
    # healthy shared-plane baseline.
    gossip = gossip_rows[0]
    assert gossip["post-churn convergence rounds"] >= 0, "gossip never re-converged"
    assert gossip["recall vs healthy (%)"] >= repaired["recall vs healthy (%)"]
    return payload


def test_e3_resilience(benchmark):
    payload = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = payload["rows"]
    queenbee = [r for r in rows if r["system"] == "QueenBee"]
    central = [r for r in rows if r["system"] == "Centralized"]
    # The centralized service collapses under any successful DDoS.
    assert all(r["recall vs healthy (%)"] == 0.0 for r in central if r["failed fraction"] > 0)
    # QueenBee keeps answering most queries even with a quarter of peers gone.
    quarter = next(r for r in queenbee if r["failed fraction"] == 0.25)
    assert quarter["recall vs healthy (%)"] > 50.0
    # And degrades gracefully rather than falling off a cliff.
    recalls = [r["recall vs healthy (%)"] for r in queenbee]
    assert recalls[0] >= recalls[-1]
    # The repair loop keeps churn-time recall at or above the unrepaired
    # ablation while actually re-replicating shards.
    repair_rows = payload["repair_rows"]
    repaired = next(r for r in repair_rows if r["repair"] == "on")
    unrepaired = next(r for r in repair_rows if r["repair"] == "off")
    assert repaired["shards repaired"] > 0
    assert repaired["recall vs healthy (%)"] >= unrepaired["recall vs healthy (%)"]
    # The metadata plane re-converges after churn and the remote frontend
    # answers with full recall against the shared-plane baseline.
    gossip = payload["gossip_rows"][0]
    assert gossip["post-churn convergence rounds"] >= 0
    assert gossip["scheduled rounds in horizon"] > 0
    assert gossip["recall vs healthy (%)"] >= repaired["recall vs healthy (%)"]


if __name__ == "__main__":
    run_experiment()
