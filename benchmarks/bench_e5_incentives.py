"""E5 — Incentive fairness: who ends up with the honey?

Paper research challenge (I): "A fair incentive scheme for all stakeholders:
... A simple way is to give the providers for which the page ranks of their
websites exceed a certain threshold some QueenBee's honey. ... In general, a
sensible scheme is needed to maintain the ecosystem of QueenBee."

This bench runs the full economy loop (publish, search, click, reward) under
the paper's threshold policy and the proportional alternative, sweeping the
threshold, and reports the Gini coefficient of creator honey, the fraction of
creators rewarded at all, and how reward mass correlates with page-rank mass.
"""

from __future__ import annotations

from typing import Dict, List

from repro.incentives.fairness import coverage, gini_coefficient
from repro.incentives.simulation import EconomySimulation

from benchmarks.common import build_corpus, build_engine, print_table

DOC_COUNT = 220
EPOCHS = 3


def _run_policy(policy: str, rank_threshold: float, seed: int) -> Dict[str, object]:
    corpus = build_corpus(DOC_COUNT, seed=seed, owner_count=30)
    engine = build_engine(peer_count=20, worker_count=5, seed=seed,
                          popularity_policy=policy, rank_threshold=rank_threshold,
                          popularity_budget=20_000)
    simulation = EconomySimulation(
        engine,
        documents=corpus.documents,
        queries_per_epoch=10,
        publishes_per_epoch=8,
        click_probability=0.5,
        seed=seed,
    )
    simulation.run(epochs=EPOCHS, initial_documents=150)
    report = simulation.report()
    creators = sorted({document.owner for document in corpus.documents})
    owner_mass = engine.owner_rank_mass()
    # Correlation proxy: share of creator honey captured by the top-20% owners by rank.
    ranked_owners = sorted(owner_mass, key=lambda o: -owner_mass.get(o, 0.0))
    top_owners = set(ranked_owners[: max(1, len(ranked_owners) // 5)])
    creator_total = sum(report.creator_honey.values()) or 1
    top_share = sum(report.creator_honey.get(o, 0) for o in top_owners) / creator_total
    label = f"threshold={rank_threshold:g}" if policy == "threshold" else "proportional"
    return {
        "policy": label,
        "creator gini": gini_coefficient(list(report.creator_honey.values())),
        "creators rewarded (%)": 100.0 * coverage(report.creator_honey, creators),
        "top-20% owners' share (%)": 100.0 * top_share,
        "worker gini": gini_coefficient(list(report.worker_honey.values())),
        "honey supply": report.honey_supply,
    }


def run_experiment() -> List[Dict[str, object]]:
    rows = [
        _run_policy("threshold", 0.02, seed=1001),
        _run_policy("threshold", 0.005, seed=1002),
        _run_policy("threshold", 0.001, seed=1003),
        _run_policy("proportional", 0.0, seed=1004),
    ]
    print_table(
        "E5: incentive fairness across reward policies",
        rows,
        note=f"{DOC_COUNT}-page corpus, 30 creators, {EPOCHS} reward epochs; Gini 0 = even, 1 = one winner",
    )
    return rows


def test_e5_incentives(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    by_policy = {row["policy"]: row for row in rows}
    # Loosening the threshold rewards a larger fraction of creators.
    assert (by_policy["threshold=0.001"]["creators rewarded (%)"]
            >= by_policy["threshold=0.02"]["creators rewarded (%)"])
    # Every policy rewards somebody and mints a positive supply.
    assert all(row["honey supply"] > 0 for row in rows)
    assert all(0.0 <= row["creator gini"] <= 1.0 for row in rows)
    # The proportional policy concentrates honey on the popular head far more
    # than the loosest threshold policy does — the fairness trade-off the
    # paper's challenge (I) is about.
    proportional = by_policy["proportional"]
    loose = by_policy["threshold=0.001"]
    assert proportional["top-20% owners' share (%)"] > loose["top-20% owners' share (%)"]
    assert proportional["creator gini"] > loose["creator gini"]


if __name__ == "__main__":
    run_experiment()
