"""Shared helpers for the experiment benchmarks (E1–E9).

Each ``bench_eN_*.py`` file regenerates one experiment from EXPERIMENTS.md: it
builds the workload, runs the systems under comparison, prints the table the
experiment reports, and exposes a ``test_*`` entry point so
``pytest benchmarks/ --benchmark-only`` runs everything.

Sizes are chosen so the full suite finishes in a few minutes on a laptop; the
*shape* of every result (who wins, by roughly what factor, where crossovers
fall) is what matters, not absolute numbers — see EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import os
import sys
from typing import Dict, Iterable, List, Sequence

from repro.core.config import QueenBeeConfig
from repro.core.engine import QueenBeeEngine
from repro.workloads.corpus import CorpusGenerator, GeneratedCorpus
from repro.workloads.queries import QueryWorkloadGenerator

DEFAULT_SEED = 2019  # the paper's publication year, for flavour


def build_corpus(num_documents: int, seed: int = DEFAULT_SEED, owner_count: int = 40) -> GeneratedCorpus:
    """The standard synthetic corpus used across experiments."""
    generator = CorpusGenerator(
        vocabulary_size=1_200,
        term_exponent=1.0,
        mean_document_length=80,
        length_spread=25,
        owner_count=owner_count,
        owner_exponent=1.0,
        mean_out_degree=5.0,
        seed=seed,
    )
    return generator.generate(num_documents)


def build_engine(
    peer_count: int = 32,
    worker_count: int = 8,
    seed: int = DEFAULT_SEED,
    **overrides,
) -> QueenBeeEngine:
    """A QueenBee deployment with benchmark-friendly defaults."""
    config = QueenBeeConfig(
        peer_count=peer_count,
        worker_count=worker_count,
        dht_k=8,
        dht_alpha=3,
        dht_replicate=4,
        storage_replication=3,
        latency_median=25.0,
        latency_sigma=0.45,
        rank_max_iterations=25,
        seed=seed,
    )
    for key, value in overrides.items():
        setattr(config, key, value)
    config.validate()
    return QueenBeeEngine(config)


def build_queries(corpus: GeneratedCorpus, count: int, seed: int = DEFAULT_SEED) -> List[str]:
    return list(QueryWorkloadGenerator(corpus.documents, seed=seed).generate(count))


def print_table(title: str, rows: Sequence[Dict[str, object]], note: str = "") -> None:
    """Print an experiment table in a fixed-width layout (stdout, flushed)."""
    out = sys.stdout
    out.write(f"\n=== {title} ===\n")
    if note:
        out.write(f"{note}\n")
    if not rows:
        out.write("(no rows)\n")
        out.flush()
        return
    columns = list(rows[0].keys())
    widths = {
        column: max(len(str(column)), *(len(_fmt(row.get(column))) for row in rows))
        for column in columns
    }
    header = " | ".join(str(column).ljust(widths[column]) for column in columns)
    out.write(header + "\n")
    out.write("-+-".join("-" * widths[column] for column in columns) + "\n")
    for row in rows:
        out.write(" | ".join(_fmt(row.get(column)).ljust(widths[column]) for column in columns) + "\n")
    out.flush()


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def write_bench_json(name: str, payload: Dict[str, object]) -> str:
    """Write a machine-readable benchmark record to the repository root.

    ``name`` is the output filename (e.g. ``BENCH_E10.json``).  The files
    are committed so the perf trajectory is tracked PR-over-PR: CI and
    reviewers diff the numbers instead of re-reading tables.  Floats are
    rounded so insignificant digits don't churn the diff.
    """

    def _round(value):
        if isinstance(value, float):
            return round(value, 6)
        if isinstance(value, dict):
            return {key: _round(item) for key, item in value.items()}
        if isinstance(value, (list, tuple)):
            return [_round(item) for item in value]
        return value

    path = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", name)
    body = {"schema": 1, **_round(payload)}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(body, handle, indent=2, sort_keys=True)
        handle.write("\n")
    sys.stdout.write(f"[bench] wrote {os.path.normpath(path)}\n")
    return os.path.normpath(path)
